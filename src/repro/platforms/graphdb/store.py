"""Record stores in the style of Neo4j's storage engine.

Neo4j stores graphs as fixed-size records: each *node record* points
at the head of that node's relationship chain, and each *relationship
record* holds both endpoints plus, per endpoint, the id of the next
relationship in that endpoint's chain (a doubly linked list threaded
through both nodes' chains). Traversing a node's neighbors therefore
chases one pointer per relationship — a cache-missing random access,
charged to the cost meter as such. This pointer-chasing storage is
why graph databases exhibit the paper's "poor access locality" choke
point, and its in-memory footprint is the "large graph memory
footprint" choke point: the store must fit in the single machine's
RAM.

Record sizes follow Neo4j's on-disk format of the era (node 14 B,
relationship 33 B) plus page/cache overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import CostMeter

__all__ = ["GraphStore", "NODE_RECORD_BYTES", "REL_RECORD_BYTES", "NO_RELATIONSHIP"]

#: In-memory bytes per node record (14 B record + page-cache overhead).
NODE_RECORD_BYTES = 32.0
#: In-memory bytes per relationship record (33 B record + overhead).
REL_RECORD_BYTES = 64.0
#: In-memory bytes per property record (41 B record + overhead);
#: charged per weighted relationship.
PROPERTY_RECORD_BYTES = 48.0
#: Chain terminator.
NO_RELATIONSHIP = -1


@dataclass
class NodeRecord:
    """A node: id plus the head of its relationship chain."""

    node_id: int
    first_rel: int = NO_RELATIONSHIP


@dataclass
class RelationshipRecord:
    """A relationship: endpoints plus per-endpoint chain pointers.

    ``weight`` holds the relationship's one property (the edge weight
    of weighted datasets); Neo4j stores properties in a separate
    property-record chain, modeled here as extra bytes per record.
    """

    rel_id: int
    node_a: int
    node_b: int
    a_next: int = NO_RELATIONSHIP
    b_next: int = NO_RELATIONSHIP
    weight: float | None = None

    def other(self, node: int) -> int:
        """The endpoint opposite to ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"node {node} is not an endpoint of rel {self.rel_id}")

    def next_for(self, node: int) -> int:
        """The next relationship id in ``node``'s chain."""
        if node == self.node_a:
            return self.a_next
        if node == self.node_b:
            return self.b_next
        raise ValueError(f"node {node} is not an endpoint of rel {self.rel_id}")


class GraphStore:
    """The single-machine store: node + relationship record arrays.

    All memory is allocated on worker 0 of the meter's cluster (the
    database is non-distributed); loading a graph that does not fit
    raises the meter's memory error, which the driver surfaces as a
    platform failure.
    """

    def __init__(self, meter: CostMeter):
        self.meter = meter
        self._nodes: dict[int, NodeRecord] = {}
        self._rels: list[RelationshipRecord] = []
        self._num_properties = 0

    # -- write path -----------------------------------------------------

    def create_node(self, node_id: int) -> None:
        """Allocate a node record."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already exists")
        self._nodes[node_id] = NodeRecord(node_id)
        self.meter.allocate_memory(0, NODE_RECORD_BYTES)

    def create_relationship(
        self, node_a: int, node_b: int, weight: float | None = None
    ) -> int:
        """Insert a relationship at the head of both endpoint chains.

        A non-``None`` ``weight`` adds a property record to the
        relationship (and its bytes to the store's footprint).
        """
        record_a = self._nodes[node_a]
        record_b = self._nodes[node_b]
        rel_id = len(self._rels)
        record = RelationshipRecord(
            rel_id,
            node_a,
            node_b,
            a_next=record_a.first_rel,
            b_next=record_b.first_rel if node_a != node_b else NO_RELATIONSHIP,
            weight=weight,
        )
        self._rels.append(record)
        record_a.first_rel = rel_id
        if node_a != node_b:
            record_b.first_rel = rel_id
        rel_bytes = REL_RECORD_BYTES
        if weight is not None:
            self._num_properties += 1
            rel_bytes += PROPERTY_RECORD_BYTES
        self.meter.allocate_memory(0, rel_bytes)
        return rel_id

    def release(self) -> None:
        """Free the whole store's memory (drop the database)."""
        total = (
            len(self._nodes) * NODE_RECORD_BYTES
            + len(self._rels) * REL_RECORD_BYTES
            + self._num_properties * PROPERTY_RECORD_BYTES
        )
        self.meter.release_memory(0, total)
        self._nodes.clear()
        self._rels.clear()
        self._num_properties = 0

    # -- read path -------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of node records."""
        return len(self._nodes)

    @property
    def num_relationships(self) -> int:
        """Number of relationship records."""
        return len(self._rels)

    def _charge_scan(self, count: float) -> None:
        """Charge sequential work if a metering round is open.

        The store is also usable stand-alone (tests, ad-hoc queries);
        charges only apply inside an algorithm's metered round.
        """
        if self.meter.in_round:
            self.meter.charge_compute(0, count)

    def _charge_chase(self, count: float) -> None:
        """Charge pointer-chasing accesses if a round is open."""
        if self.meter.in_round:
            self.meter.charge_random_access(0, count)

    def node_ids(self) -> list[int]:
        """All node ids, ascending (a sequential store scan)."""
        self._charge_scan(len(self._nodes))
        return sorted(self._nodes)

    def has_node(self, node_id: int) -> bool:
        """Whether a node record exists for this id."""
        return node_id in self._nodes

    def relationships_of(self, node_id: int) -> list[RelationshipRecord]:
        """Walk a node's relationship chain (one random access each)."""
        record = self._nodes[node_id]
        self._charge_chase(1)  # the node record itself
        rels: list[RelationshipRecord] = []
        rel_id = record.first_rel
        while rel_id != NO_RELATIONSHIP:
            rel = self._rels[rel_id]
            self._charge_chase(1)
            rels.append(rel)
            rel_id = rel.next_for(node_id)
        return rels

    def neighbors(self, node_id: int) -> list[int]:
        """Adjacent node ids, sorted ascending for determinism."""
        return sorted(
            rel.other(node_id) for rel in self.relationships_of(node_id)
        )

    def weighted_neighbors(self, node_id: int) -> list[tuple[int, float]]:
        """``(neighbor, weight)`` pairs, sorted by neighbor id.

        Reading each relationship's weight chases its property record
        (one extra random access per relationship).
        """
        rels = self.relationships_of(node_id)
        self._charge_chase(len(rels))
        return sorted((rel.other(node_id), rel.weight) for rel in rels)

    def degree(self, node_id: int) -> int:
        """Number of relationships on ``node_id``'s chain."""
        return len(self.relationships_of(node_id))
