"""Neo4j-style single-node graph database.

The paper: "Neo4j is an open-source non-distributed graph database.
We include it in Graphalytics to provide perspective on the
performance and scalability of the distributed platforms we benchmark.
Neo4j is not able to process graphs larger than the memory of a single
machine, but its performance is generally the best due to its
non-distributed nature."

The reproduction implements Neo4j's storage architecture — fixed-size
node and relationship records with per-node relationship chains
(:mod:`repro.platforms.graphdb.store`) — and a traversal framework on
top (:mod:`repro.platforms.graphdb.traversal`). Traversals chase
record pointers, charged as random memory accesses; the whole store
must fit in the single machine's memory, which is exactly the failure
mode the paper describes for large graphs.
"""

from repro.platforms.graphdb.store import GraphStore, NODE_RECORD_BYTES, REL_RECORD_BYTES
from repro.platforms.graphdb.traversal import TraversalDescription, Uniqueness
from repro.platforms.graphdb.driver import Neo4jPlatform

__all__ = [
    "GraphStore",
    "NODE_RECORD_BYTES",
    "REL_RECORD_BYTES",
    "TraversalDescription",
    "Uniqueness",
    "Neo4jPlatform",
]
