"""Neo4j platform driver."""

from __future__ import annotations

from repro.core import etl
from repro.core.cost import ClusterSpec, CostMeter, MemoryBudgetExceeded, RunProfile
from repro.core.errors import SimulatedOOM
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph
from repro.platforms.graphdb.algorithms import (
    db_bfs,
    db_cd,
    db_conn,
    db_evo,
    db_lcc,
    db_pagerank,
    db_sssp,
    db_stats,
)
from repro.platforms.graphdb.store import GraphStore

__all__ = ["Neo4jPlatform"]


class Neo4jPlatform(Platform):
    """Single-node graph database (Neo4j stand-in).

    Fastest platform on graphs that fit its machine — no network, no
    barriers, tiny startup — but ETL fails outright once the record
    store exceeds the machine's memory ("Neo4j is not able to process
    graphs larger than the memory of a single machine").
    """

    name = "neo4j"
    single_machine = True

    def __init__(self, cluster: ClusterSpec | None = None):
        super().__init__(cluster or ClusterSpec.paper_single_node())
        if self.cluster.num_workers != 1:
            raise ValueError("the graph database is non-distributed")
        self._stores: dict[str, tuple[GraphStore, CostMeter]] = {}

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        meter = CostMeter(self.cluster)
        store = GraphStore(meter)
        try:
            for vertex in undirected.vertices:
                store.create_node(int(vertex))
            # Inserts charge the meter inside the store (memory per
            # record); insert *time* is the explicit ETL model below.
            if undirected.weights is not None:
                for source, target, weight in undirected.iter_weighted_edges():  # quality: ignore[cost-accounting]
                    store.create_relationship(source, target, weight)
            else:
                for source, target in undirected.iter_edges():
                    store.create_relationship(source, target)
        except MemoryBudgetExceeded as exc:
            store.release()
            raise SimulatedOOM(self.name, str(exc)) from exc
        self._stores[name] = (store, meter)
        storage = meter.memory_in_use(0)
        # ETL: transactional inserts — every relationship updates two
        # chain heads (random accesses), then the store flushes to disk.
        etl_time = (
            etl.sequential_insert_seconds(
                undirected.num_vertices, 1.0, self.cluster
            )
            + etl.sequential_insert_seconds(
                undirected.num_edges, 3.0, self.cluster
            )
            + storage / self.cluster.disk_bandwidth
        )
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
            detail={"store": store},
        )

    def delete_graph(self, handle: GraphHandle) -> None:
        """Drop the graph's record store and release its memory."""
        entry = self._stores.pop(handle.name, None)
        if entry is not None:
            entry[0].release()

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        store: GraphStore = handle.detail["store"]
        # Each run gets a fresh meter but shares the loaded store's
        # memory accounting baseline.
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        meter.allocate_memory(0, handle.storage_bytes)
        original_meter = store.meter
        store.meter = meter
        meter.charge_startup()
        meter.begin_round(algorithm.value.lower())
        try:
            if algorithm is Algorithm.BFS:
                output = db_bfs(store, params.resolve_bfs_source(handle.graph))
            elif algorithm is Algorithm.CONN:
                output = db_conn(store)
            elif algorithm is Algorithm.CD:
                output = db_cd(
                    store,
                    params.cd_max_iterations,
                    params.cd_hop_attenuation,
                    params.cd_node_preference,
                )
            elif algorithm is Algorithm.STATS:
                output = db_stats(store)
            elif algorithm is Algorithm.PR:
                output = db_pagerank(
                    store, params.pagerank_damping, params.pagerank_iterations
                )
            elif algorithm is Algorithm.SSSP:
                output = db_sssp(store, params.resolve_sssp_source(handle.graph))
            elif algorithm is Algorithm.LCC:
                output = db_lcc(store)
            elif algorithm is Algorithm.EVO:
                output = db_evo(
                    store,
                    params.evo_new_vertices,
                    params.evo_p_forward,
                    params.evo_max_hops,
                    params.evo_seed,
                )
            else:
                raise ValueError(f"unsupported algorithm {algorithm}")
        finally:
            meter.end_round(active_vertices=store.num_nodes)
            store.meter = original_meter
        return output, meter.profile
