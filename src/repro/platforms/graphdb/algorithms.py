"""The Graphalytics algorithms as embedded graph-database procedures.

Each runs single-threaded against the record store, the way embedded
Neo4j algorithms do: no network, no barriers, but every neighbor
expansion chases relationship-chain pointers (charged as random
accesses by the store).
"""

from __future__ import annotations

import heapq

from repro.algorithms import evo as evo_ref
from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.lcc import lcc_value
from repro.algorithms.sssp import UNREACHABLE_DISTANCE
from repro.algorithms.stats import GraphStats
from repro.platforms.graphdb.store import GraphStore
from repro.platforms.graphdb.traversal import TraversalDescription

__all__ = [
    "db_bfs",
    "db_conn",
    "db_cd",
    "db_stats",
    "db_evo",
    "db_pagerank",
    "db_sssp",
    "db_lcc",
]


def db_bfs(store: GraphStore, source: int) -> dict[int, int]:
    """BFS distances via the traversal framework."""
    distances = {node: UNREACHABLE for node in store.node_ids()}
    traversal = TraversalDescription().breadth_first()
    for node, depth in traversal.traverse(store, source):
        distances[node] = depth
    return distances


def db_conn(store: GraphStore) -> dict[int, int]:
    """Connected components: one traversal per undiscovered component.

    Node ids are scanned in ascending order, so the first node of
    each component encountered is its minimum id — which is the
    component label the benchmark expects.
    """
    labels: dict[int, int] = {}
    traversal = TraversalDescription().breadth_first()
    for node in store.node_ids():
        if node in labels:
            continue
        for member, _depth in traversal.traverse(store, node):
            labels[member] = node
    return labels


def db_cd(
    store: GraphStore,
    max_iterations: int,
    hop_attenuation: float,
    node_preference: float,
) -> dict[int, int]:
    """CD: synchronous Leung et al. label propagation over the store."""
    nodes = store.node_ids()
    adjacency = {node: store.neighbors(node) for node in nodes}
    degrees = {node: len(neighbors) for node, neighbors in adjacency.items()}
    labels = {node: node for node in nodes}
    scores = {node: 1.0 for node in nodes}
    for _iteration in range(max_iterations):
        new_labels: dict[int, int] = {}
        new_scores: dict[int, float] = {}
        changes = 0
        for node in nodes:
            neighbors = adjacency[node]
            store._charge_scan(1 + len(neighbors))
            if not neighbors:
                new_labels[node] = labels[node]
                new_scores[node] = scores[node]
                continue
            weight_by_label: dict[int, float] = {}
            best_score_by_label: dict[int, float] = {}
            for neighbor in neighbors:
                label = labels[neighbor]
                vote = scores[neighbor] * degrees[neighbor] ** node_preference
                weight_by_label[label] = weight_by_label.get(label, 0.0) + vote
                best = best_score_by_label.get(label, float("-inf"))
                if scores[neighbor] > best:
                    best_score_by_label[label] = scores[neighbor]
            best_label = min(
                weight_by_label, key=lambda lbl: (-weight_by_label[lbl], lbl)
            )
            if best_label == labels[node]:
                new_labels[node] = labels[node]
                new_scores[node] = scores[node]
            else:
                new_labels[node] = best_label
                new_scores[node] = best_score_by_label[best_label] - hop_attenuation
                changes += 1
        labels, scores = new_labels, new_scores
        if changes == 0:
            break
    return labels


def db_stats(store: GraphStore) -> GraphStats:
    """STATS: store scan plus per-node neighborhood intersection."""
    nodes = store.node_ids()
    neighbor_sets = {node: set(store.neighbors(node)) for node in nodes}
    clustering_sum = 0.0
    for node in nodes:
        neighbors = neighbor_sets[node]
        k = len(neighbors)
        if k < 2:
            continue
        links_twice = 0
        for u in neighbors:
            links_twice += sum(1 for w in neighbor_sets[u] if w in neighbors)
            store._charge_scan(len(neighbor_sets[u]))
        clustering_sum += links_twice / (k * (k - 1))
    num_nodes = store.num_nodes
    return GraphStats(
        num_vertices=num_nodes,
        num_edges=store.num_relationships,
        mean_local_clustering=clustering_sum / num_nodes if num_nodes else 0.0,
    )


def db_pagerank(
    store: GraphStore, damping: float, iterations: int
) -> dict[int, float]:
    """PageRank: fixed damped-update rounds over cached adjacency.

    The adjacency is materialized once (pointer-chased, charged by the
    store); each round then scans every node and folds its neighbors'
    shares — the per-round work an embedded procedure actually does.
    """
    nodes = store.node_ids()
    adjacency = {node: store.neighbors(node) for node in nodes}
    n = len(nodes)
    if n == 0:
        return {}
    base = (1.0 - damping) / n
    ranks = {node: 1.0 / n for node in nodes}
    for _iteration in range(iterations):
        shares = {
            node: ranks[node] / len(adjacency[node])
            for node in nodes
            if adjacency[node]
        }
        new_ranks: dict[int, float] = {}
        for node in nodes:
            store._charge_scan(1 + len(adjacency[node]))
            total = 0.0
            for neighbor in adjacency[node]:
                total += shares[neighbor]
            new_ranks[node] = base + damping * total
        ranks = new_ranks
    return ranks


def db_sssp(store: GraphStore, source: int) -> dict[int, float]:
    """Weighted SSSP: Dijkstra straight over the record store.

    Every expansion walks the node's relationship chain *and* each
    relationship's weight property — the pointer-chasing access
    pattern that makes graph databases random-access bound.
    """
    distances = {node: UNREACHABLE_DISTANCE for node in store.node_ids()}
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > distances[node]:
            continue  # stale queue entry
        for neighbor, weight in store.weighted_neighbors(node):
            candidate = dist + weight
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def db_lcc(store: GraphStore) -> dict[int, float]:
    """LCC: per-node neighborhood intersections over the store."""
    nodes = store.node_ids()
    neighbor_sets = {node: set(store.neighbors(node)) for node in nodes}
    out: dict[int, float] = {}
    for node in nodes:
        neighbors = neighbor_sets[node]
        degree = len(neighbors)
        if degree < 2:
            out[node] = 0.0
            continue
        links_twice = 0
        for u in neighbors:
            links_twice += sum(1 for w in neighbor_sets[u] if w in neighbors)
            store._charge_scan(len(neighbor_sets[u]))
        out[node] = lcc_value(links_twice // 2, degree)
    return out


def db_evo(
    store: GraphStore,
    num_new_vertices: int,
    p_forward: float,
    max_hops: int,
    seed: int,
) -> dict[int, list[int]]:
    """EVO: per-arrival forest fires via store traversals."""
    existing = store.node_ids()
    adjacency = {node: store.neighbors(node) for node in existing}
    next_id = existing[-1] + 1 if existing else 0
    links: dict[int, list[int]] = {}
    for arrival_index in range(num_new_vertices):
        arrival = next_id + arrival_index
        links[arrival] = evo_ref.single_fire(
            adjacency, existing, arrival, p_forward, max_hops, seed
        )
        store._charge_scan(sum(len(adjacency[b]) for b in links[arrival]))
    return links
