"""Traversal framework over the record store (Neo4j's Traversal API).

Provides the ``TraversalDescription`` builder pattern Neo4j exposes:
breadth-first or depth-first order, a depth bound, and global-node
uniqueness. Traversals yield ``(node, depth)`` pairs in deterministic
order; all store accesses are charged by the store itself.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Iterator

from repro.platforms.graphdb.store import GraphStore

__all__ = ["Order", "Uniqueness", "TraversalDescription"]


class Order(enum.Enum):
    BREADTH_FIRST = "breadth_first"
    DEPTH_FIRST = "depth_first"


class Uniqueness(enum.Enum):
    #: Visit every node at most once (the default, as in Neo4j).
    NODE_GLOBAL = "node_global"
    #: No uniqueness: nodes may be re-visited via different paths.
    NONE = "none"


class TraversalDescription:
    """Immutable builder for store traversals.

    Example
    -------
    >>> td = (TraversalDescription()
    ...       .breadth_first()
    ...       .max_depth(3))
    >>> nodes = [(n, d) for n, d in td.traverse(store, start)]
    """

    def __init__(
        self,
        order: Order = Order.BREADTH_FIRST,
        uniqueness: Uniqueness = Uniqueness.NODE_GLOBAL,
        depth_limit: int | None = None,
    ):
        self._order = order
        self._uniqueness = uniqueness
        self._depth_limit = depth_limit

    # -- builder -----------------------------------------------------------

    def breadth_first(self) -> "TraversalDescription":
        """Copy of this description with breadth-first order."""
        return TraversalDescription(
            Order.BREADTH_FIRST, self._uniqueness, self._depth_limit
        )

    def depth_first(self) -> "TraversalDescription":
        """Copy of this description with depth-first order."""
        return TraversalDescription(
            Order.DEPTH_FIRST, self._uniqueness, self._depth_limit
        )

    def uniqueness(self, uniqueness: Uniqueness) -> "TraversalDescription":
        """Copy of this description with the given uniqueness."""
        return TraversalDescription(self._order, uniqueness, self._depth_limit)

    def max_depth(self, depth: int) -> "TraversalDescription":
        """Copy of this description bounded to the given depth."""
        if depth < 0:
            raise ValueError("depth must be >= 0")
        return TraversalDescription(self._order, self._uniqueness, depth)

    # -- execution -----------------------------------------------------------

    def traverse(self, store: GraphStore, start: int) -> Iterator[tuple[int, int]]:
        """Yield ``(node, depth)`` from ``start``, including the start."""
        if not store.has_node(start):
            raise ValueError(f"start node {start} not in store")
        visited = {start}
        frontier: deque[tuple[int, int]] = deque([(start, 0)])
        # Work is charged transitively: store.neighbors() bills one
        # pointer-chase per relationship record visited.
        while frontier:  # quality: ignore[cost-accounting]
            if self._order is Order.BREADTH_FIRST:
                node, depth = frontier.popleft()
            else:
                node, depth = frontier.pop()
            yield node, depth
            if self._depth_limit is not None and depth >= self._depth_limit:
                continue
            for neighbor in store.neighbors(node):
                if self._uniqueness is Uniqueness.NODE_GLOBAL:
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                frontier.append((neighbor, depth + 1))
