"""Simulated graph-processing platforms.

One subpackage per platform the paper benchmarks:

* :mod:`repro.platforms.pregel` — Giraph-style vertex-centric BSP;
* :mod:`repro.platforms.mapreduce` — Hadoop MapReduce v2;
* :mod:`repro.platforms.rddgraph` — GraphX-style processing on an
  RDD substrate;
* :mod:`repro.platforms.graphdb` — Neo4j-style single-node graph
  database;
* :mod:`repro.platforms.columnar` — Virtuoso-style column store (the
  Section 3.4 DBMS experiment).

Each platform is a real executable implementation of its execution
model — outputs are computed, not faked — running against the
simulated-hardware cost model in :mod:`repro.core.cost`.
"""

from repro.platforms.registry import (
    available_platforms,
    create_platform,
    create_platform_fleet,
    is_single_machine,
)

__all__ = [
    "available_platforms",
    "create_platform",
    "create_platform_fleet",
    "is_single_machine",
]
