"""Graph partitioning strategies for the BSP engine.

The paper's network choke point ends with remedies: "graph workloads
call for methods that may reduce the network communication in
distributed algorithms. Examples of possible directions are
replication schemes, data compression, and advanced (e.g., min-cut)
graph partitioning methods." This module implements the partitioning
direction so it can be measured (see the choke-point ablation):

* :func:`hash_partition` — Giraph's default: uniform, structure-blind;
* :func:`range_partition` — contiguous id blocks; exploits id
  locality when vertex ids correlate with communities (Datagen ids
  do, SNAP-style renumberings often do);
* :func:`greedy_partition` — streaming linear deterministic greedy
  (LDG, Stanton & Kliot): place each vertex with the partition holding
  most of its already-placed neighbors, damped by a capacity penalty —
  a practical min-cut-style heuristic that runs in one pass.

All strategies return ``{vertex: worker}`` maps accepted by
:class:`~repro.platforms.pregel.engine.PregelEngine`.
"""

from __future__ import annotations

from collections import deque

from repro.graph.graph import Graph

__all__ = [
    "hash_partition",
    "range_partition",
    "greedy_partition",
    "edge_cut_fraction",
    "partition_balance",
]

_KNUTH = 2654435761


def hash_partition(graph: Graph, num_workers: int) -> dict[int, int]:
    """Giraph's default: multiplicative hash of the vertex id."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    return {
        int(v): ((int(v) * _KNUTH) & 0xFFFFFFFF) % num_workers
        for v in graph.to_undirected().vertices
    }


def range_partition(graph: Graph, num_workers: int) -> dict[int, int]:
    """Contiguous equal-size blocks of the sorted vertex ids."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    vertices = [int(v) for v in graph.to_undirected().vertices]
    block = max(1, -(-len(vertices) // num_workers))
    return {
        vertex: min(index // block, num_workers - 1)
        for index, vertex in enumerate(vertices)
    }


def _bfs_stream_order(adjacency: dict[int, list[int]]) -> list[int]:
    """Community-coherent streaming order: BFS from each unseen vertex.

    Streaming LDG profits when a vertex's neighbors are mostly already
    placed; BFS order visits each community contiguously, while raw id
    order interleaves them.
    """
    seen: set[int] = set()
    order: list[int] = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        queue = deque([start])
        seen.add(start)
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            for neighbor in adjacency[vertex]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    return order


def greedy_partition(
    graph: Graph, num_workers: int, slack: float = 1.05
) -> dict[int, int]:
    """Streaming LDG: a one-pass min-cut-style heuristic.

    Vertices stream in BFS order (see :func:`_bfs_stream_order`); each
    goes to the partition maximizing
    ``|neighbors already there| * (1 - size/capacity)``. ``slack``
    allows partitions to exceed the perfectly balanced size by a few
    percent, which is what buys the cut reduction. On graphs with
    pronounced community structure this cuts an order of magnitude
    fewer edges than hashing; on expander-like graphs the gain is
    necessarily modest (no good cut exists).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if slack < 1.0:
        raise ValueError("slack must be >= 1")
    undirected = graph.to_undirected()
    adjacency = {
        int(v): [int(u) for u in undirected.neighbors(int(v))]
        for v in undirected.vertices
    }
    capacity = slack * len(adjacency) / num_workers if adjacency else 1.0
    placement: dict[int, int] = {}
    sizes = [0] * num_workers
    for vertex in _bfs_stream_order(adjacency):
        placed_neighbors = [0] * num_workers
        for neighbor in adjacency[vertex]:
            worker = placement.get(neighbor)
            if worker is not None:
                placed_neighbors[worker] += 1
        best_worker = 0
        best_score = float("-inf")
        for worker in range(num_workers):
            if sizes[worker] >= capacity:
                continue
            score = placed_neighbors[worker] * (1.0 - sizes[worker] / capacity)
            if score > best_score:
                best_score = score
                best_worker = worker
        placement[vertex] = best_worker
        sizes[best_worker] += 1
    return placement


def edge_cut_fraction(graph: Graph, placement: dict[int, int]) -> float:
    """Fraction of edges whose endpoints live on different workers.

    This is the quantity partitioning tries to minimize; it is a
    direct proxy for the BSP engines' remote-message volume.
    """
    undirected = graph.to_undirected()
    if undirected.num_edges == 0:
        return 0.0
    cut = sum(
        1
        for source, target in undirected.iter_edges()
        if placement[source] != placement[target]
    )
    return cut / undirected.num_edges


def partition_balance(placement: dict[int, int], num_workers: int) -> float:
    """Max partition size over the perfectly balanced size (>= 1)."""
    if not placement:
        return 1.0
    sizes = [0] * num_workers
    for worker in placement.values():
        sizes[worker] += 1
    return max(sizes) / (len(placement) / num_workers)
