"""Vectorized (bulk) superstep execution for the Pregel engine.

The scalar engine runs one Python-level ``compute`` call per vertex
and one ``CostMeter`` charge per vertex/message. For data-parallel
programs whose per-vertex kernel is a pure function of the merged
inbox — BFS frontier expansion and HashMin label propagation — the
whole superstep can instead run as a handful of numpy operations over
the CSR arrays, with per-worker op/message tallies computed by
``np.bincount`` and charged through the batched
:meth:`~repro.core.cost.CostMeter.charge_compute_bulk` /
:meth:`~repro.core.cost.CostMeter.charge_messages_bulk` APIs.

The contract, verified by ``tests/test_bulk_equivalence.py``: a bulk
run produces *bit-identical* outputs and cost profiles to the scalar
path. The charge structure below therefore mirrors
``PregelEngine._run_supersteps`` exactly:

* one op per computed vertex plus one per merged message digested;
* per distinct ``(target, source worker)`` pair, one message charge
  (sender-side combining) and queued-buffer memory on the receiving
  worker; every further send into the pair is one combine op on the
  source worker;
* at the barrier, queued buffers are released and the merged inbox is
  re-accounted on the receiving workers;
* adaptive central supersteps run everything on worker 0 with no
  barrier, exactly like the scalar engine.

A program opts in by returning a :class:`BulkVertexKernel` from
:meth:`~repro.platforms.pregel.engine.VertexProgram.bulk_step`; the
kernel only applies to programs with a ``min`` combiner, fixed-size
messages, no aggregators, and vote-to-halt-every-superstep semantics
(the engine falls back to the scalar path for everything else).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.algorithms.bfs import UNREACHABLE

__all__ = [
    "BulkVertexKernel",
    "BFSBulkKernel",
    "ConnBulkKernel",
    "BulkSuperstepRunner",
    "PageRankBulkRunner",
]


class BulkVertexKernel(abc.ABC):
    """Vectorized counterpart of a :class:`VertexProgram`'s compute.

    Kernels operate on dense vertex indices (positions in
    ``graph.vertices``) and integer-valued numpy arrays. The runner
    owns all cost accounting; a kernel only transforms values and
    decides who sends what.
    """

    #: Receiver-side reduction over combined messages (min semantics).
    reduce = np.minimum

    @abc.abstractmethod
    def initial_values(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Dense initial value array (one entry per vertex id)."""

    @abc.abstractmethod
    def compute(
        self,
        superstep: int,
        values: np.ndarray,
        frontier: np.ndarray,
        merged: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One whole superstep over the compute set.

        ``frontier`` holds the dense indices of the vertices computing
        this superstep (all vertices at superstep 0, message targets
        afterwards) and ``merged`` the combined message per frontier
        vertex (``None`` at superstep 0). Mutates ``values`` in place
        and returns ``(senders, send_values)``: the dense indices that
        send to their out-neighbors and the value each one sends.
        """


class BFSBulkKernel(BulkVertexKernel):
    """Vectorized BFS frontier expansion (min combiner).

    Mirrors :class:`~repro.platforms.pregel.programs.BFSProgram`: the
    source seeds distance 0 at superstep 0; afterwards unreached
    message targets adopt the merged (minimum) distance and forward
    ``distance + 1``.
    """

    def __init__(self, source: int):
        self.source = source
        self._source_idx: int | None = None

    def initial_values(self, vertex_ids: np.ndarray) -> np.ndarray:
        """All vertices start unreached; remembers the source index."""
        position = int(np.searchsorted(vertex_ids, self.source))
        self._source_idx = (
            position
            if position < len(vertex_ids)
            and vertex_ids[position] == self.source
            else None
        )
        return np.full(len(vertex_ids), UNREACHABLE, dtype=np.int64)

    def compute(self, superstep, values, frontier, merged):
        """One BFS superstep (see :class:`BulkVertexKernel`)."""
        empty = np.empty(0, dtype=np.int64)
        if superstep == 0:
            if self._source_idx is None:
                return empty, empty
            values[self._source_idx] = 0
            return (
                np.array([self._source_idx], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )
        fresh = values[frontier] == UNREACHABLE
        newly = frontier[fresh]
        values[newly] = merged[fresh]
        return newly, merged[fresh] + 1


class ConnBulkKernel(BulkVertexKernel):
    """Vectorized HashMin label propagation (min combiner).

    Mirrors :class:`~repro.platforms.pregel.programs.ConnProgram`:
    every vertex broadcasts its own label at superstep 0; afterwards a
    vertex adopts and re-broadcasts any strictly smaller merged label.
    """

    def initial_values(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Every vertex starts labeled with its own id."""
        return vertex_ids.astype(np.int64, copy=True)

    def compute(self, superstep, values, frontier, merged):
        """One HashMin superstep (see :class:`BulkVertexKernel`)."""
        if superstep == 0:
            return frontier, values[frontier].copy()
        adopt = merged < values[frontier]
        newly = frontier[adopt]
        values[newly] = merged[adopt]
        return newly, merged[adopt]


class BulkSuperstepRunner:
    """Drives a :class:`BulkVertexKernel` with exact scalar-path costs.

    Instantiated by :meth:`PregelEngine.run` when the program offers a
    kernel and the engine's bulk path is enabled; shares the engine's
    meter, partition map, and queued-message bookkeeping so that
    memory accounting (including the final release) matches the
    scalar path bit for bit.
    """

    def __init__(self, engine, program, kernel: BulkVertexKernel):
        from repro.platforms.pregel.engine import MESSAGE_BYTES

        self.engine = engine
        self.program = program
        self.kernel = kernel
        graph = engine.graph
        self.ids = graph.vertices
        self.offsets, self.targets = graph.csr()
        self.n = graph.num_vertices
        self.num_workers = engine.spec.num_workers
        self.workers = engine.worker_array
        #: Queued bytes per message: payload plus buffer overhead.
        self.message_memory = float(program.message_bytes) + MESSAGE_BYTES
        self.payload = float(program.message_bytes)

    def run(self):
        """Execute to halting; returns a scalar-identical result."""
        from repro.platforms.pregel.engine import PregelResult

        engine, meter, program = self.engine, self.engine.meter, self.program
        values = self.kernel.initial_values(self.ids)

        meter.begin_round("init")
        self._charge_ops(np.bincount(self.workers, minlength=self.num_workers))
        meter.end_round(active_vertices=self.n)

        frontier = np.arange(self.n, dtype=np.int64)
        merged: np.ndarray | None = None
        superstep = 0
        while superstep < program.max_supersteps():
            if len(frontier) == 0:
                break
            central = (
                engine.adaptive_central_fraction is not None
                and len(frontier) < engine.adaptive_central_fraction * self.n
            )
            engine._central_mode = central
            meter.begin_round(
                f"superstep-{superstep}" + ("-central" if central else ""),
                barrier=not central,
            )
            computed = len(frontier)
            self._charge_compute(frontier, central, messages=min(superstep, 1))
            senders, send_values = self.kernel.compute(
                superstep, values, frontier, merged
            )
            frontier, merged = self._deliver(senders, send_values, central)
            meter.end_round(active_vertices=computed)
            superstep += 1
        else:
            raise RuntimeError(
                f"{type(program).__name__} exceeded "
                f"{program.max_supersteps()} supersteps"
            )

        self._release_queued()
        return PregelResult(
            values={
                int(vertex): int(value)
                for vertex, value in zip(self.ids, values)
            },
            supersteps=superstep,
            aggregated={},
        )

    # -- charging helpers ---------------------------------------------

    def _charge_ops(self, ops_per_worker: np.ndarray) -> None:
        """Charge precomputed per-worker op tallies in bulk."""
        meter = self.engine.meter
        for worker in np.nonzero(ops_per_worker)[0]:
            meter.charge_compute_bulk(int(worker), float(ops_per_worker[worker]))

    def _charge_compute(
        self, frontier: np.ndarray, central: bool, messages: int
    ) -> None:
        """One op per computed vertex plus one per digested message."""
        if central:
            ops = np.zeros(self.num_workers, dtype=np.int64)
            ops[0] = len(frontier) * (1 + messages)
        else:
            ops = np.bincount(
                self.workers[frontier], minlength=self.num_workers
            ) * (1 + messages)
        self._charge_ops(ops)

    def _deliver(
        self, senders: np.ndarray, send_values: np.ndarray, central: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Expand sends over the CSR, charge them, run the barrier.

        Returns the next superstep's ``(frontier, merged)``.
        """
        if len(senders):
            starts = self.offsets[senders]
            counts = self.offsets[senders + 1] - starts
            total = int(counts.sum())
        else:
            total = 0
        if total == 0:
            self._barrier_memory(np.empty(0, dtype=np.int64), central)
            return np.empty(0, dtype=np.int64), None

        bounds = np.cumsum(counts)
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - (bounds - counts), counts)
        flat_dst = self.targets[positions]
        flat_values = np.repeat(send_values, counts)
        if central:
            flat_src_w = np.zeros(total, dtype=np.int64)
        else:
            flat_src_w = np.repeat(self.workers[senders], counts)

        # Sender-side combining: one wire message per distinct
        # (target, source worker) pair, one combine op per duplicate.
        key = flat_dst * self.num_workers + flat_src_w
        unique_keys, group_sizes = np.unique(key, return_counts=True)
        pair_dst = unique_keys // self.num_workers
        pair_src_w = unique_keys % self.num_workers
        pair_dst_w = (
            np.zeros(len(pair_dst), dtype=np.int64)
            if central
            else self.workers[pair_dst]
        )
        self._charge_messages(pair_src_w, pair_dst_w)
        extra = np.bincount(
            pair_src_w,
            weights=(group_sizes - 1).astype(np.float64),
            minlength=self.num_workers,
        )
        self._charge_ops(extra)
        self._queue_memory(pair_dst_w)

        # Receiver-side merge: reduce all values aimed at each target.
        order = np.argsort(flat_dst, kind="stable")
        sorted_dst = flat_dst[order]
        new_frontier, first = np.unique(sorted_dst, return_index=True)
        merged = self.kernel.reduce.reduceat(flat_values[order], first)
        self._barrier_memory(new_frontier, central)
        return new_frontier, merged

    def _charge_messages(
        self, src_workers: np.ndarray, dst_workers: np.ndarray
    ) -> None:
        """Bulk-charge one message per (src, dst) worker-pair member."""
        meter = self.engine.meter
        pair = src_workers * self.num_workers + dst_workers
        pair_counts = np.bincount(pair, minlength=self.num_workers ** 2)
        for index in np.nonzero(pair_counts)[0]:
            meter.charge_messages_bulk(
                int(index) // self.num_workers,
                int(index) % self.num_workers,
                int(pair_counts[index]),
                self.payload,
            )

    def _queue_memory(self, dst_workers: np.ndarray) -> None:
        """Allocate queued-message buffers on the receiving workers."""
        engine, meter = self.engine, self.engine.meter
        per_worker = (
            np.bincount(dst_workers, minlength=self.num_workers)
            * self.message_memory
        )
        for worker in np.nonzero(per_worker)[0]:
            engine._message_bytes_queued[worker] += per_worker[worker]
            meter.allocate_memory(int(worker), float(per_worker[worker]))

    def _barrier_memory(self, new_frontier: np.ndarray, central: bool) -> None:
        """Release queued buffers, re-account the merged inbox."""
        self._release_queued()
        if len(new_frontier) == 0:
            return
        if central:
            receivers = np.zeros(len(new_frontier), dtype=np.int64)
        else:
            receivers = self.workers[new_frontier]
        self._queue_memory(receivers)

    def _release_queued(self) -> None:
        """Release all queued message memory (scalar barrier step)."""
        engine, meter = self.engine, self.engine.meter
        for worker in range(self.num_workers):
            meter.release_memory(worker, engine._message_bytes_queued[worker])
            engine._message_bytes_queued[worker] = 0.0


class PageRankBulkRunner(BulkSuperstepRunner):
    """Vectorized fixed-iteration PageRank with exact scalar costs.

    PageRank does not fit :class:`BulkSuperstepRunner`'s
    frontier/min-combiner shape: every vertex computes every
    superstep, there is no combiner (every arc is one wire message and
    one queued buffer), and the inbox reduction is a *float sum* whose
    result depends on operand order. The scalar engine appends outbox
    messages in ascending-sender order (the compute set iterates the
    sorted vertex states) and each vertex folds its inbox
    left-to-right from ``0.0`` — ``np.add.at`` over the natural CSR
    arc stream performs exactly those additions in exactly that order,
    so bulk ranks are bit-identical to the scalar path (unlike
    ``np.add.reduceat``, whose pairwise summation is not).
    """

    def __init__(self, engine, program):
        super().__init__(engine, program, kernel=None)

    def run(self):
        """Execute ``iterations`` update rounds; scalar-identical."""
        from repro.platforms.pregel.engine import PregelResult

        engine, meter, program = self.engine, self.engine.meter, self.program
        n, num_workers = self.n, self.num_workers
        damping, iterations = program.damping, program.iterations

        meter.begin_round("init")
        self._charge_ops(np.bincount(self.workers, minlength=num_workers))
        meter.end_round(active_vertices=n)
        if n == 0:
            return PregelResult(values={}, supersteps=0, aggregated={})

        engine._central_mode = False
        out_degrees = self.offsets[1:] - self.offsets[:-1]
        flat_src = np.repeat(np.arange(n, dtype=np.int64), out_degrees)
        flat_dst = self.targets
        src_workers = self.workers[flat_src]
        dst_workers = self.workers[flat_dst]
        degrees_float = out_degrees.astype(np.float64)
        in_counts = np.bincount(flat_dst, minlength=n).astype(np.float64)
        vertex_ops = np.bincount(self.workers, minlength=num_workers)
        message_ops = np.bincount(
            self.workers, weights=in_counts, minlength=num_workers
        )

        values = np.full(n, 1.0 / n, dtype=np.float64)
        base = (1.0 - damping) / n
        shares: np.ndarray | None = None  # per-arc messages in flight
        for superstep in range(iterations + 1):
            meter.begin_round(f"superstep-{superstep}", barrier=True)
            if superstep == 0:
                self._charge_ops(vertex_ops)
            else:
                # One op per vertex plus one per digested message
                # (each vertex receives exactly its in-degree shares).
                self._charge_ops(vertex_ops + message_ops)
                accumulated = np.zeros(n, dtype=np.float64)
                np.add.at(accumulated, flat_dst, shares)
                values = base + damping * accumulated
            if superstep < iterations:
                shares = values[flat_src] / degrees_float[flat_src]
                self._charge_messages(src_workers, dst_workers)
                self._queue_memory(dst_workers)  # outbox during compute
                self._release_queued()  # barrier: inbox + outbox
                self._queue_memory(dst_workers)  # re-account new inbox
            else:
                shares = None
                self._release_queued()
            meter.end_round(active_vertices=n)
        self._release_queued()
        return PregelResult(
            values={
                int(vertex): float(value)
                for vertex, value in zip(self.ids, values)
            },
            supersteps=iterations + 1,
            aggregated={},
        )
