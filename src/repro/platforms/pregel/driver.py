"""Giraph platform driver: the paper's reference BSP platform."""

from __future__ import annotations

from repro.algorithms.evo import ambassador_for
from repro.algorithms.stats import GraphStats
from repro.core import etl
from repro.core.cost import ClusterSpec, CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph
from repro.platforms.pregel.engine import EDGE_BYTES, VERTEX_BYTES, PregelEngine
from repro.platforms.pregel.programs import (
    BFSProgram,
    CDProgram,
    ConnProgram,
    EvoProgram,
    LCCProgram,
    PageRankProgram,
    SSSPProgram,
    StatsProgram,
)

__all__ = ["GiraphPlatform"]


class GiraphPlatform(Platform):
    """Vertex-centric BSP platform (Apache Giraph stand-in).

    Holds the whole graph in (simulated) worker memory, pays one
    barrier per superstep, and combines messages where the algorithm
    allows — the execution profile the paper attributes to Giraph:
    fast in-memory iteration, memory-bound on very large graphs.
    """

    name = "giraph"

    def __init__(self, cluster: ClusterSpec, bulk: bool = True):
        super().__init__(cluster)
        #: Vectorized superstep path for programs that support it;
        #: ``bulk=False`` forces the scalar per-vertex path (the cost
        #: profile is identical either way).
        self.bulk = bulk

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        storage = (
            undirected.num_vertices * VERTEX_BYTES
            + 2 * undirected.num_edges * EDGE_BYTES
        )
        # ETL: read the edge file from HDFS, parse, hash-partition.
        file_bytes = etl.edge_file_bytes(undirected.num_edges)
        etl_time = (
            self.cluster.startup_seconds
            + etl.distributed_read_seconds(file_bytes, self.cluster)
            + etl.parse_seconds(undirected.num_edges, 4.0, self.cluster)
            + etl.partition_shuffle_seconds(storage, self.cluster)
        )
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
        )

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        meter.charge_startup()
        engine = PregelEngine(handle.graph, self.cluster, meter, bulk=self.bulk)
        program = self._build_program(handle.graph, algorithm, params)
        result = engine.run(program)
        output = self._extract_output(handle.graph, algorithm, params, result)
        return output, meter.profile

    def _build_program(
        self, graph: Graph, algorithm: Algorithm, params: AlgorithmParams
    ):
        if algorithm is Algorithm.BFS:
            return BFSProgram(params.resolve_bfs_source(graph))
        if algorithm is Algorithm.CONN:
            return ConnProgram()
        if algorithm is Algorithm.CD:
            return CDProgram(
                max_iterations=params.cd_max_iterations,
                hop_attenuation=params.cd_hop_attenuation,
                node_preference=params.cd_node_preference,
            )
        if algorithm is Algorithm.STATS:
            return StatsProgram()
        if algorithm is Algorithm.PR:
            return PageRankProgram(
                damping=params.pagerank_damping,
                iterations=params.pagerank_iterations,
            )
        if algorithm is Algorithm.SSSP:
            return SSSPProgram(
                params.resolve_sssp_source(graph),
                num_vertices=graph.num_vertices,
            )
        if algorithm is Algorithm.LCC:
            return LCCProgram()
        if algorithm is Algorithm.EVO:
            existing = [int(v) for v in graph.to_undirected().vertices]
            next_id = existing[-1] + 1
            ambassadors = {
                next_id + arrival: ambassador_for(
                    params.evo_seed, next_id + arrival, existing
                )
                for arrival in range(params.evo_new_vertices)
            }
            return EvoProgram(
                ambassadors=ambassadors,
                p_forward=params.evo_p_forward,
                max_hops=params.evo_max_hops,
                seed=params.evo_seed,
            )
        raise ValueError(f"unsupported algorithm {algorithm}")

    def _extract_output(
        self,
        graph: Graph,
        algorithm: Algorithm,
        params: AlgorithmParams,
        result,
    ):
        if algorithm is Algorithm.STATS:
            num_vertices = result.aggregated.get("vertices", 0)
            # Each undirected edge was counted from both endpoints.
            num_edges = result.aggregated.get("edges", 0) // 2
            clustering_sum = result.aggregated.get("clustering_sum", 0.0)
            mean_cc = clustering_sum / num_vertices if num_vertices else 0.0
            return GraphStats(
                num_vertices=num_vertices,
                num_edges=num_edges,
                mean_local_clustering=mean_cc,
            )
        if algorithm is Algorithm.CD:
            return {v: value[0] for v, value in result.values.items()}
        if algorithm is Algorithm.EVO:
            # Transpose per-vertex burned-arrival sets into the
            # reference's {new_vertex: [targets]} mapping.
            links: dict[int, list[int]] = {}
            undirected = graph.to_undirected()
            existing = [int(v) for v in undirected.vertices]
            next_id = existing[-1] + 1
            for arrival in range(params.evo_new_vertices):
                links[next_id + arrival] = []
            for vertex, arrivals in result.values.items():
                for arrival in arrivals:
                    links[arrival].append(vertex)
            return {arrival: sorted(targets) for arrival, targets in links.items()}
        # BFS / CONN / PR / SSSP / LCC: plain {vertex: value} maps.
        return dict(result.values)
