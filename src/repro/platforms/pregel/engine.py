"""The Pregel BSP engine.

Executes a :class:`VertexProgram` over a partitioned graph in
supersteps, with real message passing, optional sender-side combiners,
global aggregators, and vote-to-halt semantics. Every superstep
charges the :class:`~repro.core.cost.CostMeter`:

* compute ops per worker — vertex invocations, messages processed,
  edges scanned (time per superstep is the *max* over workers, so the
  skewed-execution-intensity choke point is physically present);
* network bytes for messages whose target lives on another worker
  (hash partitioning, as in Giraph);
* one barrier per superstep (which dominates in the low-activity tail
  of converging algorithms — the paper's "many final iterations with
  little work" observation);
* message-buffer memory, on top of the resident partition memory, so
  message-heavy algorithms can exceed a worker's budget and fail.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.cost import ClusterSpec, CostMeter
from repro.graph.graph import Graph

__all__ = ["VertexProgram", "VertexContext", "PregelEngine", "partition_of"]

#: Giraph-like resident memory per vertex (object + value + index).
VERTEX_BYTES = 56.0
#: Giraph-like resident memory per directed edge (primitive adjacency).
EDGE_BYTES = 24.0
#: Queued message overhead on top of the payload.
MESSAGE_BYTES = 16.0

_KNUTH = 2654435761


def partition_of(vertex: int, num_workers: int) -> int:
    """Giraph-style hash partitioning of vertices onto workers."""
    return ((vertex * _KNUTH) & 0xFFFFFFFF) % num_workers


class VertexProgram(abc.ABC):
    """A Pregel computation: what every vertex runs each superstep."""

    #: Serialized payload size of one message, bytes.
    message_bytes: float = 8.0
    #: Resident value size per vertex, bytes (on top of VERTEX_BYTES).
    value_bytes: float = 8.0

    @abc.abstractmethod
    def initial_value(self, vertex: int, ctx: "VertexContext") -> Any:
        """Vertex value before superstep 0."""

    @abc.abstractmethod
    def compute(self, ctx: "VertexContext", messages: list) -> None:
        """The per-vertex kernel, as in Pregel/Giraph."""

    def combiner(self) -> Callable[[Any, Any], Any] | None:
        """Optional sender-side message combiner (e.g. min)."""
        return None

    def persistent_aggregators(self) -> set[str]:
        """Aggregators that accumulate across supersteps.

        Regular aggregators reset at every barrier (Giraph default);
        persistent ones keep summing — STATS uses them for its global
        counts.
        """
        return set()

    def message_size(self, message: Any) -> float:
        """Payload bytes of a concrete message (override if variable)."""
        return self.message_bytes

    def max_supersteps(self) -> int:
        """Safety bound; engines abort beyond it."""
        return 200

    def bulk_step(self):
        """Optional vectorized whole-superstep kernel.

        Programs whose compute is a pure function of the merged inbox
        (min combiner, fixed message size, no aggregators,
        vote-to-halt every superstep) may return a
        :class:`~repro.platforms.pregel.bulk.BulkVertexKernel`; the
        engine then executes supersteps as numpy frontier operations
        with bit-identical cost accounting. The default ``None`` keeps
        the scalar per-vertex path.
        """
        return None

    def bulk_runner(self, engine: "PregelEngine"):
        """The vectorized executor for this program, if any.

        The default wraps :meth:`bulk_step`'s kernel in the
        frontier-shaped
        :class:`~repro.platforms.pregel.bulk.BulkSuperstepRunner`.
        Programs whose vectorized execution does not fit that shape —
        PageRank's all-active, uncombined float summation — override
        this to return a dedicated runner instead. ``None`` keeps the
        scalar per-vertex path.
        """
        # Imported here: the bulk module depends on this one.
        from repro.platforms.pregel.bulk import BulkSuperstepRunner

        kernel = self.bulk_step()
        if kernel is None:
            return None
        return BulkSuperstepRunner(engine, self, kernel)


@dataclass
class _VertexState:
    value: Any = None
    active: bool = True


class VertexContext:
    """What a vertex program sees during ``compute``."""

    def __init__(self, engine: "PregelEngine"):
        self._engine = engine
        self.vertex: int = -1
        self.superstep: int = -1
        self._state: _VertexState | None = None

    # -- graph access --------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Total vertices in the graph."""
        return self._engine.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Total arcs in the (symmetrized) graph."""
        return self._engine.graph.num_edges

    def neighbors(self) -> list[int]:
        """The current vertex's out-neighbors."""
        return self._engine.adjacency[self.vertex]

    def weighted_neighbors(self) -> list[tuple[int, float]]:
        """The current vertex's out-edges as ``(neighbor, weight)``.

        Requires a weighted graph (the SSSP workload precondition,
        enforced at workload-resolution time).
        """
        return self._engine.weighted_adjacency[self.vertex]

    def degree(self) -> int:
        """The current vertex's out-degree."""
        return len(self._engine.adjacency[self.vertex])

    # -- value ----------------------------------------------------------

    @property
    def value(self) -> Any:
        """The vertex's current value."""
        return self._state.value

    @value.setter
    def value(self, new_value: Any) -> None:
        """The vertex's current value."""
        self._state.value = new_value

    # -- messaging / control ---------------------------------------------

    def send(self, target: int, message: Any) -> None:
        """Queue a message to an arbitrary vertex."""
        self._engine._send(self.vertex, target, message)

    def send_to_neighbors(self, message: Any) -> None:
        """Queue a message to every out-neighbor."""
        for neighbor in self._engine.adjacency[self.vertex]:
            self._engine._send(self.vertex, neighbor, message)

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message arrives."""
        self._state.active = False

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a global aggregator (summed at the barrier)."""
        self._engine._aggregate(name, value)

    def aggregated(self, name: str, default: Any = 0) -> Any:
        """Read an aggregator's value from the *previous* superstep."""
        return self._engine.aggregated.get(name, default)


@dataclass
class PregelResult:
    """Output of one Pregel run."""

    values: dict[int, Any]
    supersteps: int
    aggregated: dict[str, Any] = field(default_factory=dict)


class PregelEngine:
    """Runs vertex programs under BSP semantics with cost accounting."""

    def __init__(
        self,
        graph: Graph,
        spec: ClusterSpec,
        meter: CostMeter | None = None,
        partition: dict[int, int] | None = None,
        adaptive_central_fraction: float | None = None,
        bulk: bool = True,
    ):
        self.graph = graph.to_directed() if not graph.directed else graph
        self.spec = spec
        self.meter = meter or CostMeter(spec)
        # Per-vertex structures (the adjacency dict and the partition
        # dict) are built lazily: the bulk path never touches them and
        # skips their O(vertices) Python construction entirely.
        self._adjacency: dict[int, list[int]] | None = None
        self._weighted_adjacency: dict[int, list[tuple[int, float]]] | None = None
        vertex_ids = self.graph.vertices
        if partition is None:
            # Giraph's default hash partitioning; alternatives live in
            # :mod:`repro.platforms.pregel.partitioning`. Computed
            # vectorized: for non-negative ids, unsigned wraparound
            # preserves the low 32 bits of the product, so this equals
            # :func:`partition_of` element-wise.
            hashed = vertex_ids.astype(np.uint64) * np.uint64(_KNUTH)
            self._worker_array = (
                (hashed & np.uint64(0xFFFFFFFF)) % np.uint64(spec.num_workers)
            ).astype(np.int64)
            self._partition_dict: dict[int, int] | None = None
        else:
            missing = set(int(v) for v in vertex_ids) - set(partition)
            if missing:
                raise ValueError(f"partition map misses {len(missing)} vertices")
            out_of_range = {
                worker
                for worker in partition.values()
                if not 0 <= worker < spec.num_workers
            }
            if out_of_range:
                raise ValueError(
                    f"partition map assigns unknown workers: {out_of_range}"
                )
            self._partition_dict = dict(partition)
            self._worker_array = np.fromiter(
                (self._partition_dict[int(v)] for v in vertex_ids),
                dtype=np.int64,
                count=len(vertex_ids),
            )
        # The paper's remedy for low-activity tails: "adaptive
        # switching of distributed computation to central computation
        # to handle iterations with little work". When the active set
        # drops below this fraction of the vertices, the superstep
        # runs on one worker: no barrier, no network.
        if adaptive_central_fraction is not None and not (
            0.0 < adaptive_central_fraction <= 1.0
        ):
            raise ValueError("adaptive_central_fraction must be in (0, 1]")
        self.adaptive_central_fraction = adaptive_central_fraction
        #: Take the vectorized path for programs that offer a
        #: :meth:`VertexProgram.bulk_step` kernel; ``False`` forces the
        #: scalar per-vertex path (the escape hatch).
        self.bulk = bulk
        self._central_mode = False
        self.aggregated: dict[str, Any] = {}
        self._pending_aggregates: dict[str, Any] = {}
        self._persistent_totals: dict[str, Any] = {}
        self._outbox: dict[int, list] = {}
        self._combined_outbox: dict[int, dict[int, Any]] = {}
        self._resident_bytes: list[float] = [0.0] * spec.num_workers
        self._message_bytes_queued: list[float] = [0.0] * spec.num_workers
        self._program: VertexProgram | None = None

    # -- lazy per-vertex structures ----------------------------------------

    @property
    def adjacency(self) -> dict[int, list[int]]:
        """Out-adjacency as Python lists, built on first (scalar) use.

        Vertex programs see out-adjacency; Graphalytics loads
        undirected graphs as symmetric arc sets.
        """
        if self._adjacency is None:
            self._adjacency = {
                int(v): [int(u) for u in self.graph.neighbors(int(v))]
                for v in self.graph.vertices
            }
        return self._adjacency

    @property
    def weighted_adjacency(self) -> dict[int, list[tuple[int, float]]]:
        """Out-adjacency with edge weights, built on first use.

        Only SSSP touches this; it requires a weighted graph.
        """
        if self._weighted_adjacency is None:
            self._weighted_adjacency = self.graph.weighted_adjacency()
        return self._weighted_adjacency

    @property
    def partition(self) -> dict[int, int]:
        """Vertex id -> worker mapping (built lazily for the default)."""
        if self._partition_dict is None:
            self._partition_dict = {
                int(v): int(w)
                for v, w in zip(self.graph.vertices, self._worker_array)
            }
        return self._partition_dict

    @property
    def worker_array(self) -> np.ndarray:
        """Worker of each vertex, ordered by dense vertex index."""
        return self._worker_array

    # -- memory ------------------------------------------------------------

    def load_partitions(self, program: VertexProgram) -> None:
        """Charge the resident partition memory of the loaded graph."""
        workers = self._worker_array
        per_worker_vertices = np.bincount(
            workers, minlength=self.spec.num_workers
        )
        per_worker_edges = np.bincount(
            workers,
            weights=self.graph.out_degrees().astype(np.float64),
            minlength=self.spec.num_workers,
        )
        for worker in range(self.spec.num_workers):
            resident = (
                per_worker_vertices[worker] * (VERTEX_BYTES + program.value_bytes)
                + per_worker_edges[worker] * EDGE_BYTES
            )
            self._resident_bytes[worker] = resident
            self.meter.allocate_memory(worker, resident)

    def unload_partitions(self) -> None:
        """Release the loaded partitions' memory."""
        for worker in range(self.spec.num_workers):
            self.meter.release_memory(worker, self._resident_bytes[worker])
            self._resident_bytes[worker] = 0.0

    # -- messaging ----------------------------------------------------------

    def _send(self, source: int, target: int, message: Any) -> None:
        program = self._program
        if self._central_mode:
            # Central supersteps keep all traffic on one worker.
            src_worker = dst_worker = 0
        else:
            src_worker = self.partition[source]
            dst_worker = self.partition[target]
        payload = program.message_size(message)
        combine = program.combiner()
        if combine is not None:
            # Sender-side combining: Giraph merges messages for the
            # same target *per source worker* before they hit the
            # wire, so at most one message per (worker, target) pair
            # crosses the network each superstep.
            per_worker = self._combined_outbox.setdefault(target, {})
            if src_worker in per_worker:
                per_worker[src_worker] = combine(per_worker[src_worker], message)
                self.meter.charge_compute(src_worker, 1)
                return
            per_worker[src_worker] = message
        else:
            self._outbox.setdefault(target, []).append(message)
        self.meter.charge_message(src_worker, dst_worker, payload)
        extra = payload + MESSAGE_BYTES
        self._message_bytes_queued[dst_worker] += extra
        self.meter.allocate_memory(dst_worker, extra)

    def _aggregate(self, name: str, value: Any) -> None:
        if name in self._pending_aggregates:
            self._pending_aggregates[name] += value
        else:
            self._pending_aggregates[name] = value

    # -- execution ------------------------------------------------------------

    def run(self, program: VertexProgram) -> PregelResult:
        """Execute the program to halting; returns final vertex values.

        Programs that provide a :meth:`VertexProgram.bulk_runner`
        executor run through the vectorized superstep path (unless the
        engine was built with ``bulk=False``); the cost profile is
        identical either way.
        """
        self._program = program
        self.load_partitions(program)
        try:
            runner = program.bulk_runner(self) if self.bulk else None
            if runner is not None:
                return runner.run()
            return self._run_supersteps(program)
        finally:
            self.unload_partitions()
            self._program = None

    def _run_supersteps(self, program: VertexProgram) -> PregelResult:
        meter = self.meter
        context = VertexContext(self)
        states: dict[int, _VertexState] = {}

        # Superstep -1 in Giraph terms: value initialization.
        meter.begin_round("init")
        for vertex in self.adjacency:
            context.vertex = vertex
            context.superstep = -1
            state = _VertexState()
            states[vertex] = state
            context._state = state
            state.value = program.initial_value(vertex, context)
            meter.charge_compute(self.partition[vertex], 1)
        meter.end_round(active_vertices=len(states))

        inbox: dict[int, list] = {}
        superstep = 0
        while superstep < program.max_supersteps():
            compute_set = [
                v for v, s in states.items() if s.active or v in inbox
            ]
            if not compute_set:
                break
            self._central_mode = (
                self.adaptive_central_fraction is not None
                and len(compute_set)
                < self.adaptive_central_fraction * len(states)
            )
            meter.begin_round(
                f"superstep-{superstep}"
                + ("-central" if self._central_mode else ""),
                barrier=not self._central_mode,
            )
            self._outbox = {}
            self._combined_outbox = {}
            self._pending_aggregates = {}
            for vertex in compute_set:
                state = states[vertex]
                worker = 0 if self._central_mode else self.partition[vertex]
                messages = inbox.pop(vertex, [])
                state.active = True
                context.vertex = vertex
                context.superstep = superstep
                context._state = state
                program.compute(context, messages)
                # One op per invocation plus one per message digested.
                meter.charge_compute(worker, 1 + len(messages))
            # Barrier: queued messages become next superstep's inbox,
            # aggregators publish, message buffers are released.
            inbox = self._outbox
            for target, per_worker in self._combined_outbox.items():
                # Receiver-side final combine of the per-worker messages.
                combine = program.combiner()
                merged = None
                for message in per_worker.values():
                    merged = message if merged is None else combine(merged, message)
                inbox.setdefault(target, []).append(merged)
            self._outbox = {}
            self._combined_outbox = {}
            for worker in range(self.spec.num_workers):
                self.meter.release_memory(worker, self._message_bytes_queued[worker])
                self._message_bytes_queued[worker] = 0.0
            # Re-account resident inbox memory for the next superstep.
            for target, queue in inbox.items():
                worker = 0 if self._central_mode else self.partition[target]
                size = sum(program.message_size(m) + MESSAGE_BYTES for m in queue)
                self._message_bytes_queued[worker] += size
                self.meter.allocate_memory(worker, size)
            persistent = program.persistent_aggregators()
            regular: dict[str, Any] = {}
            for name, value in self._pending_aggregates.items():
                if name in persistent:
                    self._persistent_totals[name] = (
                        self._persistent_totals.get(name, 0) + value
                    )
                else:
                    regular[name] = value
            self.aggregated = regular
            meter.end_round(active_vertices=len(compute_set))
            superstep += 1
        else:
            raise RuntimeError(
                f"{type(program).__name__} exceeded "
                f"{program.max_supersteps()} supersteps"
            )

        for worker in range(self.spec.num_workers):
            self.meter.release_memory(worker, self._message_bytes_queued[worker])
            self._message_bytes_queued[worker] = 0.0
        return PregelResult(
            values={v: s.value for v, s in states.items()},
            supersteps=superstep,
            aggregated={**self._persistent_totals, **self.aggregated},
        )
