"""Giraph-style Pregel platform: vertex-centric bulk synchronous parallel.

The paper: "Giraph is an Apache open-source project implementing the
Pregel programming model introduced by Google. In Pregel, a type of
bulk synchronous parallel processing (BSP), computation is
vertex-centric and progresses in steps separated by synchronization
barriers. All vertices execute the same function in parallel during a
computation step, using as input messages received from other
vertices."

:mod:`repro.platforms.pregel.engine` implements that model — hash
partitioning across workers, supersteps, message passing with optional
combiners, aggregators, and vote-to-halt semantics — and
:mod:`repro.platforms.pregel.programs` expresses the five Graphalytics
algorithms as vertex programs.
"""

from repro.platforms.pregel.engine import PregelEngine, VertexContext, VertexProgram
from repro.platforms.pregel.driver import GiraphPlatform
from repro.platforms.pregel.programs import (
    BFSProgram,
    CDProgram,
    ConnProgram,
    EvoProgram,
    StatsProgram,
)

__all__ = [
    "PregelEngine",
    "VertexContext",
    "VertexProgram",
    "GiraphPlatform",
    "BFSProgram",
    "ConnProgram",
    "CDProgram",
    "StatsProgram",
    "EvoProgram",
]
