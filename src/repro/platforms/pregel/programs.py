"""The Graphalytics algorithms as Pregel vertex programs.

Each program produces output identical to its reference implementation
in :mod:`repro.algorithms` (the Output Validator depends on this):

* :class:`BFSProgram` — frontier expansion with a min combiner;
* :class:`ConnProgram` — HashMin label propagation with a min combiner;
* :class:`CDProgram` — synchronous Leung et al. label propagation;
* :class:`StatsProgram` — neighbor-list exchange triangle counting
  plus count aggregators;
* :class:`EvoProgram` — per-arrival forest-fire burning via burn
  messages;
* :class:`PageRankProgram` — fixed-iteration all-active PageRank
  (the LDBC-gap workloads, with :class:`SSSPProgram` and
  :class:`LCCProgram`);
* :class:`SSSPProgram` — label-correcting weighted shortest paths
  with a min combiner;
* :class:`LCCProgram` — adjacency-exchange local clustering
  coefficients.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms import evo as evo_ref
from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.lcc import lcc_value
from repro.algorithms.sssp import UNREACHABLE_DISTANCE
from repro.platforms.pregel.bulk import BFSBulkKernel, ConnBulkKernel
from repro.platforms.pregel.engine import VertexContext, VertexProgram

__all__ = [
    "BFSProgram",
    "ConnProgram",
    "CDProgram",
    "StatsProgram",
    "EvoProgram",
    "PageRankProgram",
    "SSSPProgram",
    "LCCProgram",
]


class BFSProgram(VertexProgram):
    """Breadth-first search from a seed vertex.

    Vertex value is the hop distance (``UNREACHABLE`` until visited).
    Superstep *s* computes exactly the distance-*s* frontier; the min
    combiner collapses duplicate frontier messages per target.
    """

    message_bytes = 8.0

    def __init__(self, source: int):
        self.source = source

    def initial_value(self, vertex: int, ctx: VertexContext) -> int:
        """Vertex value before superstep 0."""
        return UNREACHABLE

    def combiner(self):
        """Sender-side message combiner."""
        return min

    def bulk_step(self):
        """Vectorized frontier-expansion kernel (same semantics)."""
        return BFSBulkKernel(self.source)

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        if ctx.superstep == 0:
            if ctx.vertex == self.source:
                ctx.value = 0
                ctx.send_to_neighbors(1)
        elif ctx.value == UNREACHABLE and messages:
            ctx.value = min(messages)
            ctx.send_to_neighbors(ctx.value + 1)
        ctx.vote_to_halt()


class ConnProgram(VertexProgram):
    """Connected components via HashMin.

    Every vertex starts labeled with its own id and propagates the
    minimum label it has seen; at convergence each vertex carries the
    smallest vertex id of its (weakly) connected component — the same
    labeling as :func:`repro.algorithms.connected_components`.
    """

    message_bytes = 8.0

    def initial_value(self, vertex: int, ctx: VertexContext) -> int:
        """Vertex value before superstep 0."""
        return vertex

    def combiner(self):
        """Sender-side message combiner."""
        return min

    def bulk_step(self):
        """Vectorized HashMin propagation kernel (same semantics)."""
        return ConnBulkKernel()

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        if ctx.superstep == 0:
            ctx.send_to_neighbors(ctx.value)
        else:
            smallest = min(messages) if messages else ctx.value
            if smallest < ctx.value:
                ctx.value = smallest
                ctx.send_to_neighbors(smallest)
        ctx.vote_to_halt()


class CDProgram(VertexProgram):
    """Community detection: synchronous Leung et al. label propagation.

    Messages carry ``(label, score, degree)`` triples — no combiner is
    possible because the receiver needs the per-label vote breakdown.
    The vertex value is ``(label, score)``; the algorithm stops after
    ``max_iterations`` propagation rounds or when an aggregator
    reports zero label changes, exactly like the reference.
    """

    message_bytes = 24.0
    value_bytes = 16.0

    def __init__(
        self,
        max_iterations: int = 10,
        hop_attenuation: float = 0.1,
        node_preference: float = 0.1,
    ):
        self.max_iterations = max_iterations
        self.hop_attenuation = hop_attenuation
        self.node_preference = node_preference

    def initial_value(self, vertex: int, ctx: VertexContext) -> tuple[int, float]:
        """Vertex value before superstep 0."""
        return (vertex, 1.0)

    def max_supersteps(self) -> int:
        """Superstep bound for this program."""
        return self.max_iterations + 2

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        label, score = ctx.value
        if ctx.superstep == 0:
            if self.max_iterations > 0:
                ctx.send_to_neighbors((label, score, ctx.degree()))
                # Seed the change counter so superstep 1 does not read
                # an empty aggregator as "converged".
                ctx.aggregate("changes", 1)
            ctx.vote_to_halt()
            return
        if ctx.superstep > self.max_iterations or ctx.aggregated("changes", 0) == 0:
            ctx.vote_to_halt()
            return
        if messages:
            weight_by_label: dict[int, float] = {}
            best_score_by_label: dict[int, float] = {}
            for other_label, other_score, other_degree in messages:
                vote = other_score * other_degree ** self.node_preference
                weight_by_label[other_label] = (
                    weight_by_label.get(other_label, 0.0) + vote
                )
                best = best_score_by_label.get(other_label, float("-inf"))
                if other_score > best:
                    best_score_by_label[other_label] = other_score
            best_label = min(
                weight_by_label, key=lambda lbl: (-weight_by_label[lbl], lbl)
            )
            if best_label != label:
                label = best_label
                score = best_score_by_label[best_label] - self.hop_attenuation
                ctx.value = (label, score)
                ctx.aggregate("changes", 1)
        if ctx.superstep < self.max_iterations:
            ctx.send_to_neighbors((label, score, ctx.degree()))
        ctx.vote_to_halt()


class StatsProgram(VertexProgram):
    """STATS: vertex/edge counts and mean local clustering coefficient.

    Superstep 0: every vertex ships its adjacency list to each
    neighbor (the expensive, network-heavy phase — this workload
    stresses the "excessive network utilization" choke point).
    Superstep 1: each vertex intersects received lists with its own
    neighbor set; each edge among its neighbors is reported twice
    (once from each endpoint), giving the local clustering
    coefficient. Counts are published through aggregators.
    """

    value_bytes = 16.0

    def initial_value(self, vertex: int, ctx: VertexContext) -> float:
        """Vertex value before superstep 0."""
        return 0.0

    def persistent_aggregators(self) -> set[str]:
        """Aggregators that accumulate across supersteps."""
        return {"vertices", "edges", "clustering_sum"}

    def message_size(self, message: Any) -> float:
        """Payload bytes of one message."""
        return 8.0 * len(message)

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        if ctx.superstep == 0:
            neighbors = ctx.neighbors()
            ctx.aggregate("vertices", 1)
            ctx.aggregate("edges", len(neighbors))
            if len(neighbors) >= 2:
                ctx.send_to_neighbors(tuple(neighbors))
        else:
            degree = ctx.degree()
            if degree >= 2 and messages:
                own = set(ctx.neighbors())
                links_twice = 0
                for neighbor_list in messages:
                    links_twice += sum(1 for w in neighbor_list if w in own)
                local_cc = links_twice / (degree * (degree - 1))
                ctx.value = local_cc
                ctx.aggregate("clustering_sum", local_cc)
        ctx.vote_to_halt()


class PageRankProgram(VertexProgram):
    """Fixed-iteration PageRank (Giraph's SimplePageRankComputation).

    Every vertex stays active for ``iterations`` update rounds: at
    superstep 0 it only ships its rank share; at supersteps 1..T it
    sums the incoming shares, applies the damped update, and — while
    rounds remain — re-ships. No combiner: the receiver folds its
    inbox left-to-right, which is the summation order the reference
    implementation and the bulk kernel both reproduce.
    """

    message_bytes = 8.0

    def __init__(self, damping: float = 0.85, iterations: int = 10):
        self.damping = damping
        self.iterations = iterations

    def initial_value(self, vertex: int, ctx: VertexContext) -> float:
        """Vertex value before superstep 0."""
        return 1.0 / ctx.num_vertices

    def max_supersteps(self) -> int:
        """Superstep bound for this program."""
        return self.iterations + 2

    def bulk_runner(self, engine):
        """All-active float-summing runner (same semantics)."""
        from repro.platforms.pregel.bulk import PageRankBulkRunner

        return PageRankBulkRunner(engine, self)

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        if ctx.superstep >= 1:
            total = 0.0
            for message in messages:
                total += message
            base = (1.0 - self.damping) / ctx.num_vertices
            ctx.value = base + self.damping * total
        if ctx.superstep >= self.iterations:
            ctx.vote_to_halt()
            return
        degree = ctx.degree()
        if degree:
            ctx.send_to_neighbors(ctx.value / degree)


class SSSPProgram(VertexProgram):
    """Weighted single-source shortest paths (label-correcting).

    The vertex value is the best known distance (``inf`` until
    reached). The source seeds distance 0 at superstep 0; any vertex
    whose merged (minimum) offer improves its distance adopts it and
    relaxes its out-edges. Positive weights make the min-plus fixpoint
    unique and order-insensitive, so the converged distances equal the
    Dijkstra reference exactly.
    """

    message_bytes = 8.0

    def __init__(self, source: int, num_vertices: int = 0):
        self.source = source
        self.num_vertices = num_vertices

    def initial_value(self, vertex: int, ctx: VertexContext) -> float:
        """Vertex value before superstep 0."""
        return 0.0 if vertex == self.source else UNREACHABLE_DISTANCE

    def combiner(self):
        """Sender-side message combiner."""
        return min

    def max_supersteps(self) -> int:
        """Shortest-path hop counts are bounded by the vertex count."""
        return max(200, self.num_vertices + 2)

    def _relax(self, ctx: VertexContext) -> None:
        for neighbor, weight in ctx.weighted_neighbors():
            ctx.send(neighbor, ctx.value + weight)

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        if ctx.superstep == 0:
            if ctx.vertex == self.source:
                self._relax(ctx)
        else:
            best = min(messages)
            if best < ctx.value:
                ctx.value = best
                self._relax(ctx)
        ctx.vote_to_halt()


class LCCProgram(VertexProgram):
    """Local clustering coefficient via adjacency-list exchange.

    Superstep 0 ships each vertex's neighbor list to its neighbors
    (vertices of degree < 2 skip the send — their lists cannot close a
    triangle); superstep 1 intersects the received lists with the own
    neighbor set. Each triangle edge is reported twice, and the float
    is derived from the integer count through the shared
    :func:`~repro.algorithms.lcc.lcc_value`, so outputs match the
    reference bit for bit.
    """

    def initial_value(self, vertex: int, ctx: VertexContext) -> float:
        """Vertex value before superstep 0."""
        return 0.0

    def message_size(self, message: Any) -> float:
        """Payload bytes of one message."""
        return 8.0 * len(message)

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        if ctx.superstep == 0:
            neighbors = ctx.neighbors()
            if len(neighbors) >= 2:
                ctx.send_to_neighbors(tuple(neighbors))
        else:
            degree = ctx.degree()
            if degree >= 2 and messages:
                own = set(ctx.neighbors())
                links_twice = 0
                for neighbor_list in messages:
                    links_twice += sum(1 for w in neighbor_list if w in own)
                ctx.value = lcc_value(links_twice // 2, degree)
        ctx.vote_to_halt()


class EvoProgram(VertexProgram):
    """EVO: forest-fire evolution as burn-message propagation.

    The driver injects each arrival's fire at its ambassador
    (deterministically derived, as in the reference). Messages are
    ``(arrival_id, depth)`` burn attempts; a vertex burns for an
    arrival on first receipt and — below the hop limit — selects burn
    victims among its neighbors with the shared deterministic kernel.
    The vertex value accumulates the set of arrivals that burned it,
    which is exactly the reference's per-arrival burned set,
    transposed.
    """

    message_bytes = 16.0
    value_bytes = 48.0

    def __init__(
        self,
        ambassadors: dict[int, int],
        p_forward: float,
        max_hops: int,
        seed: int,
    ):
        #: arrival id -> ambassador vertex
        self.ambassadors = ambassadors
        self.p_forward = p_forward
        self.max_hops = max_hops
        self.seed = seed
        self._by_ambassador: dict[int, list[int]] = {}
        for arrival, ambassador in ambassadors.items():
            self._by_ambassador.setdefault(ambassador, []).append(arrival)

    def initial_value(self, vertex: int, ctx: VertexContext) -> set[int]:
        """Vertex value before superstep 0."""
        return set()

    def max_supersteps(self) -> int:
        """Superstep bound for this program."""
        return self.max_hops + 2

    def _spread(self, ctx: VertexContext, arrival: int, depth: int) -> None:
        if depth >= self.max_hops:
            return
        candidates = sorted(ctx.neighbors())
        budget = evo_ref.burn_budget(self.seed, arrival, ctx.vertex, self.p_forward)
        victims = evo_ref.burn_victims(
            candidates, budget, self.seed, arrival, ctx.vertex
        )
        for victim in victims:
            ctx.send(victim, (arrival, depth + 1))

    def compute(self, ctx: VertexContext, messages: list) -> None:
        """Per-vertex kernel (see :class:`VertexProgram`)."""
        if ctx.superstep == 0:
            for arrival in self._by_ambassador.get(ctx.vertex, ()):
                ctx.value.add(arrival)
                self._spread(ctx, arrival, 0)
        else:
            burned: set[int] = ctx.value
            # First receipt wins; messages within a superstep share
            # the same (minimal) depth because propagation is BSP.
            for arrival, depth in sorted(messages):
                if arrival not in burned:
                    burned.add(arrival)
                    self._spread(ctx, arrival, depth)
        ctx.vote_to_halt()
