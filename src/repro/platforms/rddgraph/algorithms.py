"""The Graphalytics algorithms on the GraphX-style API.

Vertex values carry whatever the per-edge ``send`` functions need
(GraphX-style: activity flags, scores, adjacency lists), and every
algorithm reproduces its reference output exactly (PageRank up to the
validator's per-vertex float tolerance).
"""

from __future__ import annotations

from typing import Any

from repro.algorithms import evo as evo_ref
from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.lcc import lcc_value
from repro.algorithms.sssp import UNREACHABLE_DISTANCE
from repro.algorithms.stats import GraphStats
from repro.platforms.rddgraph.graphx import GraphXGraph

__all__ = [
    "graphx_bfs",
    "graphx_conn",
    "graphx_cd",
    "graphx_stats",
    "graphx_evo",
    "graphx_pagerank",
    "graphx_sssp",
    "graphx_lcc",
]


def graphx_bfs(graph: GraphXGraph, source: int, max_iterations: int = 100) -> dict[int, int]:
    """BFS distances via the Pregel loop; value = (dist, changed)."""

    def initial(vertex: int) -> tuple[int, bool]:
        if vertex == source:
            return (0, True)
        return (UNREACHABLE, False)

    def vprog(vertex: int, value, incoming) -> tuple[int, bool]:
        dist, _changed = value
        if dist == UNREACHABLE and incoming is not None:
            return (incoming, True)
        return (dist, False)

    def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
        dist, changed = src_value
        if changed and dist != UNREACHABLE:
            return [(dst, dist + 1)]
        return []

    result = graph.pregel(initial, vprog, send, min, max_iterations)
    return {v: value[0] for v, value in result.collect()}


def graphx_conn(graph: GraphXGraph, max_iterations: int = 100) -> dict[int, int]:
    """CONN via the built-in connected-components operator."""
    components = graph.connected_components(max_iterations)
    return dict(components.collect())


def graphx_cd(
    graph: GraphXGraph,
    degrees: dict[int, int],
    max_iterations: int = 10,
    hop_attenuation: float = 0.1,
    node_preference: float = 0.1,
) -> dict[int, int]:
    """CD (Leung et al.) via Pregel with vote lists as messages.

    Vertex value: ``(label, score, iteration)``. Messages merge by
    concatenating vote lists, so the receiver sees the full per-label
    breakdown (no lossless scalar combiner exists for CD).
    """

    def initial(vertex: int) -> tuple[int, float, int]:
        return (vertex, 1.0, 0)

    def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
        label, score, iteration = src_value
        if iteration >= max_iterations:
            return []
        return [(dst, ((label, score, degrees[src]),))]

    def merge(a: tuple, b: tuple) -> tuple:
        return a + b

    def vprog(vertex: int, value, incoming) -> tuple[int, float, int]:
        label, score, iteration = value
        if incoming is None:
            return (label, score, iteration + 1)
        weight_by_label: dict[int, float] = {}
        best_score_by_label: dict[int, float] = {}
        for other_label, other_score, other_degree in incoming:
            vote = other_score * other_degree ** node_preference
            weight_by_label[other_label] = (
                weight_by_label.get(other_label, 0.0) + vote
            )
            best = best_score_by_label.get(other_label, float("-inf"))
            if other_score > best:
                best_score_by_label[other_label] = other_score
        best_label = min(weight_by_label, key=lambda lbl: (-weight_by_label[lbl], lbl))
        if best_label != label:
            return (
                best_label,
                best_score_by_label[best_label] - hop_attenuation,
                iteration + 1,
            )
        return (label, score, iteration + 1)

    result = graph.pregel(initial, vprog, send, merge, max_iterations + 1)
    return {v: value[0] for v, value in result.collect()}


def graphx_pagerank(
    graph: GraphXGraph,
    degrees: dict[int, int],
    damping: float = 0.85,
    iterations: int = 10,
) -> dict[int, float]:
    """PageRank via Pregel; value = ``(rank, iteration)``.

    All-active fixed-iteration semantics: every vertex with an edge
    sends ``rank / degree`` along every arc each round until the
    shared iteration counter reaches ``iterations``, at which point no
    messages flow and the Pregel loop terminates. Isolated vertices
    still pass through ``vprog`` (the left outer join covers every
    vertex) and settle at ``(1 - d) / n``.
    """
    n = len(degrees)
    base = (1.0 - damping) / n if n else 0.0

    def initial(vertex: int) -> tuple[float, int]:
        return (1.0 / n, 0)

    def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
        rank, iteration = src_value
        if iteration >= iterations:
            return []
        return [(dst, rank / degrees[src])]

    def merge(a: float, b: float) -> float:
        return a + b

    def vprog(vertex: int, value, incoming) -> tuple[float, int]:
        _rank, iteration = value
        total = incoming if incoming is not None else 0.0
        return (base + damping * total, iteration + 1)

    result = graph.pregel(initial, vprog, send, merge, iterations + 1)
    return {v: value[0] for v, value in result.collect()}


def graphx_sssp(
    graph: GraphXGraph,
    source: int,
    weights: dict[int, dict[int, float]],
    max_iterations: int = 0,
) -> dict[int, float]:
    """Weighted SSSP via Pregel; value = ``(distance, changed)``.

    Label-correcting relaxation: vertices whose distance improved last
    round offer ``distance + w(src, dst)`` along every arc; receivers
    adopt a strictly smaller merged (minimum) offer. Positive weights
    guarantee the min-plus fixpoint is reached within ``n`` rounds.
    """

    def initial(vertex: int) -> tuple[float, bool]:
        if vertex == source:
            return (0.0, True)
        return (UNREACHABLE_DISTANCE, False)

    def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
        distance, changed = src_value
        if changed:
            return [(dst, distance + weights[src][dst])]
        return []

    def vprog(vertex: int, value, incoming) -> tuple[float, bool]:
        distance, _changed = value
        if incoming is not None and incoming < distance:
            return (incoming, True)
        return (distance, False)

    bound = max_iterations or max(200, len(weights) + 2)
    result = graph.pregel(initial, vprog, send, min, bound)
    return {v: value[0] for v, value in result.collect()}


def graphx_lcc(
    graph: GraphXGraph, adjacency: dict[int, tuple[int, ...]]
) -> dict[int, float]:
    """LCC via one ``aggregate_messages`` neighbor-list exchange.

    The STATS triangle pass, but emitting every vertex's coefficient
    instead of folding them into one mean; the shared
    :func:`~repro.algorithms.lcc.lcc_value` expression keeps the
    floats bitwise identical across platforms.
    """
    with_adjacency = graph.map_vertices(lambda v, _old: adjacency[v])

    def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
        if len(src_value) >= 2:
            return [(dst, (src_value,))]
        return []

    def merge(a: tuple, b: tuple) -> tuple:
        return a + b

    neighbor_lists = with_adjacency.aggregate_messages(send, merge)
    joined = with_adjacency.vertices.left_outer_join(
        neighbor_lists, name="lcc-join"
    )

    def vertex_lcc(record) -> tuple[int, float]:
        vertex, (own, lists) = record
        degree = len(own)
        if degree < 2 or not lists:
            return (vertex, 0.0)
        own_set = set(own)
        links_twice = sum(1 for lst in lists for w in lst if w in own_set)
        return (vertex, lcc_value(links_twice // 2, degree))

    coefficients = joined.map(vertex_lcc, name="local-lcc")
    output = dict(coefficients.collect())
    coefficients.unpersist()
    joined.unpersist()
    neighbor_lists.unpersist()
    with_adjacency.vertices.unpersist()
    return output


def graphx_stats(
    graph: GraphXGraph, adjacency: dict[int, tuple[int, ...]]
) -> GraphStats:
    """STATS via built-in counts plus a neighbor-list aggregation.

    Uses the built-in vertex/edge counting operators the paper
    mentions, then one ``aggregate_messages`` pass that ships each
    vertex's adjacency across its edges for triangle counting.
    """
    num_vertices = graph.num_vertices()
    num_edges = graph.num_edges() // 2  # symmetric arcs

    with_adjacency = graph.map_vertices(lambda v, _old: adjacency[v])

    def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
        if len(src_value) >= 2:
            return [(dst, (src_value,))]
        return []

    def merge(a: tuple, b: tuple) -> tuple:
        return a + b

    neighbor_lists = with_adjacency.aggregate_messages(send, merge)
    joined = with_adjacency.vertices.left_outer_join(neighbor_lists, name="cc-join")

    def local_clustering(record) -> float:
        _vertex, (own, lists) = record
        degree = len(own)
        if degree < 2 or not lists:
            return 0.0
        own_set = set(own)
        links_twice = sum(1 for lst in lists for w in lst if w in own_set)
        return links_twice / (degree * (degree - 1))

    contributions = joined.map(
        lambda record: ("cc", local_clustering(record)), name="local-cc"
    )
    total = contributions.reduce_by_key(lambda a, b: a + b, name="cc-sum").collect()
    joined.unpersist()
    neighbor_lists.unpersist()
    with_adjacency.vertices.unpersist()
    clustering_sum = total[0][1] if total else 0.0
    return GraphStats(
        num_vertices=num_vertices,
        num_edges=num_edges,
        mean_local_clustering=clustering_sum / num_vertices if num_vertices else 0.0,
    )


def graphx_evo(
    graph: GraphXGraph,
    adjacency: dict[int, tuple[int, ...]],
    ambassadors: dict[int, int],
    p_forward: float,
    max_hops: int,
    seed: int,
) -> dict[int, list[int]]:
    """EVO via Pregel burn messages (deterministic shared kernel).

    Vertex value: ``(burned, fresh)`` dicts mapping arrival → depth;
    ``fresh`` holds the arrivals that burned the vertex in the last
    round and spread this round.
    """
    by_ambassador: dict[int, dict[int, int]] = {}
    for arrival, ambassador in ambassadors.items():
        by_ambassador.setdefault(ambassador, {})[arrival] = 0

    def initial(vertex: int) -> tuple[dict, dict]:
        seeded = dict(by_ambassador.get(vertex, {}))
        return (dict(seeded), dict(seeded))

    # ``send`` runs once per (edge, arrival); the victim set only
    # depends on (arrival, src), so memoize the kernel call.
    victim_cache: dict[tuple[int, int], frozenset] = {}

    def victims_of(arrival: int, src: int) -> frozenset:
        key = (arrival, src)
        if key not in victim_cache:
            candidates = sorted(adjacency[src])
            budget = evo_ref.burn_budget(seed, arrival, src, p_forward)
            victim_cache[key] = frozenset(
                evo_ref.burn_victims(candidates, budget, seed, arrival, src)
            )
        return victim_cache[key]

    def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
        _burned, fresh = src_value
        out = []
        for arrival, depth in sorted(fresh.items()):
            if depth >= max_hops:
                continue
            if dst in victims_of(arrival, src):
                out.append((dst, ((arrival, depth + 1),)))
        return out

    def merge(a: tuple, b: tuple) -> tuple:
        return a + b

    def vprog(vertex: int, value, incoming) -> tuple[dict, dict]:
        burned, _old_fresh = value
        burned = dict(burned)
        fresh: dict[int, int] = {}
        if incoming:
            for arrival, depth in sorted(incoming):
                if arrival not in burned:
                    burned[arrival] = depth
                    fresh[arrival] = depth
        return (burned, fresh)

    result = graph.pregel(initial, vprog, send, merge, max_hops + 1)
    links: dict[int, list[int]] = {arrival: [] for arrival in ambassadors}
    for vertex, (burned, _fresh) in result.collect():
        for arrival in burned:
            links[arrival].append(vertex)
    return {arrival: sorted(targets) for arrival, targets in links.items()}
