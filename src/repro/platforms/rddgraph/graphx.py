"""GraphX-style graph API on the RDD substrate.

A :class:`GraphXGraph` is a pair of RDDs — vertices ``(id, value)``
and directed edges ``(src, dst)`` (undirected graphs store both
orientations, as GraphX's algorithms effectively do) — plus the
operations the paper mentions: built-in degree/count operators, an
``aggregate_messages`` primitive, ``connected_components``, and a
Pregel loop.

The Pregel loop is implemented exactly the way GraphX implements it:
every iteration joins the message RDD with the vertex RDD to produce a
*new* vertex RDD, and aggregates messages by scanning the *entire*
edge RDD (GraphX cannot cheaply restrict triplet scans to the active
frontier). Two structural consequences follow, both visible in the
paper's results:

* per-iteration work is Θ(edges) even when the frontier is tiny —
  the simulated GraphX trails the active-set-only Giraph by roughly
  the ratio the paper reports for CONN (≈3×);
* the previous vertex generation stays cached one iteration longer
  (lineage), so peak memory carries two vertex RDDs plus message
  RDDs — the simulated GraphX exhausts worker memory on workloads
  the leaner Giraph representation survives ("GraphX is unable to
  process some of the workloads that Giraph can process").
"""

from __future__ import annotations

from typing import Any, Callable

from repro.platforms.rddgraph.rdd import RDD, RDDContext

__all__ = ["GraphXGraph"]


class GraphXGraph:
    """Property graph backed by vertex and edge RDDs."""

    def __init__(self, vertices: RDD, edges: RDD, context: RDDContext):
        self.vertices = vertices
        self.edges = edges
        self.context = context

    # -- construction -------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls,
        adjacency: dict[int, list[int]],
        context: RDDContext,
        default_value: Any = None,
    ) -> "GraphXGraph":
        """Build vertex and (symmetric) edge RDDs from adjacency."""
        vertices = context.parallelize_pairs(
            [(v, default_value) for v in sorted(adjacency)], name="vertices"
        )
        arcs = [
            (source, target)
            for source in sorted(adjacency)
            for target in adjacency[source]
        ]
        # Edge RDD is partitioned by source so sendMsg can join locally.
        edges = context.parallelize_pairs(arcs, name="edges")
        return cls(vertices, edges, context)

    # -- built-in operators ---------------------------------------------------

    def num_vertices(self) -> int:
        """Built-in operator: number of vertices."""
        return self.vertices.count()

    def num_edges(self) -> int:
        """Built-in operator: number of (directed) edges."""
        return self.edges.count()

    def degrees(self) -> RDD:
        """``(vertex, degree)`` — one of GraphX's built-in operators."""
        return self.edges.map(
            lambda arc: (arc[0], 1), name="degree-ones"
        ).reduce_by_key(lambda a, b: a + b, name="degrees")

    def map_vertices(self, fn: Callable[[int, Any], Any]) -> "GraphXGraph":
        """New graph with transformed vertex values."""
        new_vertices = self.vertices.map(
            lambda kv: (kv[0], fn(kv[0], kv[1])), name="mapVertices"
        )
        return GraphXGraph(new_vertices, self.edges, self.context)

    def aggregate_messages(
        self,
        send: Callable[[int, Any, int], list[tuple[int, Any]]],
        merge: Callable[[Any, Any], Any],
    ) -> RDD:
        """GraphX's ``aggregateMessages``.

        ``send(src, src_value, dst)`` returns the messages one edge
        triplet emits; messages are merged per target with ``merge``.
        The whole edge RDD is scanned (triplets = edges ⋈ vertices).
        """
        triplets = self.edges.join(self.vertices, name="triplets")
        # triplets records: (src, (dst, src_value))
        messages = triplets.flat_map(
            lambda rec: send(rec[0], rec[1][1], rec[1][0]), name="sendMsg"
        )
        merged = messages.reduce_by_key(merge, name="mergeMsg")
        triplets.unpersist()
        messages.unpersist()
        return merged

    def join_vertices(
        self, messages: RDD, vprog: Callable[[int, Any, Any], Any]
    ) -> "GraphXGraph":
        """New graph whose vertex values absorb the messages."""
        joined = self.vertices.left_outer_join(messages, name="vprog-join")
        new_vertices = joined.map(
            lambda rec: (rec[0], vprog(rec[0], rec[1][0], rec[1][1])),
            name="vprog",
        )
        joined.unpersist()
        return GraphXGraph(new_vertices, self.edges, self.context)

    # -- Pregel on RDDs -----------------------------------------------------------

    def pregel(
        self,
        initial: Callable[[int], Any],
        vprog: Callable[[int, Any, Any], Any],
        send: Callable[[int, Any, int], list[tuple[int, Any]]],
        merge: Callable[[Any, Any], Any],
        max_iterations: int = 50,
    ) -> RDD:
        """The GraphX Pregel loop; returns the final vertex RDD.

        ``send`` receives ``(src, src_value, dst)`` for every edge and
        returns ``[(target, message), ...]``; vertices whose value is
        unchanged may still emit (matching GraphX, where activity is
        encoded in the vertex value by the algorithm author).
        """
        graph = self.map_vertices(lambda v, _old: initial(v))
        previous_vertices = None
        for _iteration in range(max_iterations):
            messages = graph.aggregate_messages(send, merge)
            if messages.count() == 0:
                messages.unpersist()
                break
            next_graph = graph.join_vertices(messages, vprog)
            messages.unpersist()
            # Lineage: the previous generation is released only now,
            # so two vertex RDD generations coexist at the peak.
            if previous_vertices is not None:
                previous_vertices.unpersist()
            previous_vertices = graph.vertices
            graph = next_graph
        if previous_vertices is not None:
            previous_vertices.unpersist()
        return graph.vertices

    def connected_components(self, max_iterations: int = 100) -> RDD:
        """GraphX's built-in connected components (min-id propagation).

        Returns ``(vertex, component)`` where the component label is
        the smallest vertex id in the component — the same labeling as
        the reference and the other platforms.
        """

        def initial(vertex: int) -> tuple[int, bool]:
            return (vertex, True)  # (component, changed-last-round)

        def vprog(vertex: int, value, incoming) -> tuple[int, bool]:
            component, _changed = value
            if incoming is not None and incoming < component:
                return (incoming, True)
            return (component, False)

        def send(src: int, src_value, dst: int) -> list[tuple[int, Any]]:
            component, changed = src_value
            if changed:
                return [(dst, component)]
            return []

        result = self.pregel(initial, vprog, send, min, max_iterations)
        return result.map_values(lambda value: value[0], name="components")
