"""GraphX-style platform: graph processing on an RDD substrate.

The paper: "GraphX is a graph-processing library built on top of the
generic Apache Spark distributed processing platform. GraphX
represents graphs as Spark resilient distributed datasets (RDDs) and
provides built-in operations such as retrieving the number and degree
of vertices. Additionally, GraphX supports iterative algorithms
implemented according to the Pregel programming model."

The reproduction mirrors that layering:

* :mod:`repro.platforms.rddgraph.rdd` — a partitioned, immutable
  dataset abstraction with narrow/wide transformations, hash
  partitioning, shuffle cost accounting, and cached-RDD memory
  tracking;
* :mod:`repro.platforms.rddgraph.graphx` — vertex/edge RDDs, triplet
  views, ``aggregate_messages``, and a Pregel loop built from RDD
  operations (new vertex RDDs every iteration, whole-edge-RDD scans —
  the structural reasons GraphX trails Giraph by ~3× on CONN in the
  paper and fails on workloads Giraph completes);
* :mod:`repro.platforms.rddgraph.algorithms` — the five Graphalytics
  algorithms on that API.
"""

from repro.platforms.rddgraph.rdd import RDD, RDDContext
from repro.platforms.rddgraph.graphx import GraphXGraph
from repro.platforms.rddgraph.driver import GraphXPlatform

__all__ = ["RDD", "RDDContext", "GraphXGraph", "GraphXPlatform"]
