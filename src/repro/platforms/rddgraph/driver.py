"""GraphX platform driver."""

from __future__ import annotations

from repro.algorithms.evo import ambassador_for
from repro.core import etl
from repro.core.cost import ClusterSpec, CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph
from repro.platforms.rddgraph.algorithms import (
    graphx_bfs,
    graphx_cd,
    graphx_conn,
    graphx_evo,
    graphx_lcc,
    graphx_pagerank,
    graphx_sssp,
    graphx_stats,
)
from repro.platforms.rddgraph.bulk import (
    graphx_bfs_bulk,
    graphx_conn_bulk,
    graphx_pagerank_bulk,
)
from repro.platforms.rddgraph.graphx import GraphXGraph
from repro.platforms.rddgraph.rdd import RDDContext

__all__ = ["GraphXPlatform"]


class GraphXPlatform(Platform):
    """GraphX stand-in: graph processing on the RDD substrate.

    Pays Spark's structural costs — whole-edge-RDD scans per
    iteration, a new vertex RDD per iteration, and heavier per-record
    memory — which is what puts it behind Giraph on CONN (≈3× in the
    paper) and makes it fail workloads Giraph completes.
    """

    name = "graphx"

    def __init__(self, cluster: ClusterSpec, bulk: bool = True):
        super().__init__(cluster)
        #: Vectorized Pregel-loop path for BFS/CONN; ``bulk=False``
        #: forces the scalar per-record RDD path (the cost profile is
        #: identical either way).
        self.bulk = bulk

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        adjacency = {
            int(v): tuple(int(u) for u in undirected.neighbors(int(v)))
            for v in undirected.vertices
        }
        storage = float(
            48 * undirected.num_vertices + 2 * 48 * undirected.num_edges
        )
        # ETL: read from HDFS, deserialize into JVM objects (more ops
        # per record than Giraph's primitives), shuffle into the hash
        # partitioner's layout.
        file_bytes = etl.edge_file_bytes(undirected.num_edges)
        etl_time = (
            self.cluster.startup_seconds
            + etl.distributed_read_seconds(file_bytes, self.cluster)
            + etl.parse_seconds(2 * undirected.num_edges, 8.0, self.cluster)
            + etl.partition_shuffle_seconds(storage, self.cluster)
        )
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
            detail={"adjacency": adjacency},
        )

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        meter.charge_startup()
        context = RDDContext(self.cluster, meter)
        adjacency: dict[int, tuple[int, ...]] = handle.detail["adjacency"]
        graph = GraphXGraph.from_adjacency(
            {v: list(adj) for v, adj in adjacency.items()}, context
        )
        try:
            output = self._dispatch(graph, adjacency, algorithm, params, handle)
        finally:
            graph.vertices.unpersist()
            graph.edges.unpersist()
        return output, meter.profile

    def _dispatch(self, graph, adjacency, algorithm, params, handle):
        if algorithm is Algorithm.BFS:
            source = params.resolve_bfs_source(handle.graph)
            if self.bulk:
                return graphx_bfs_bulk(graph, handle.graph, source)
            return graphx_bfs(graph, source)
        if algorithm is Algorithm.CONN:
            if self.bulk:
                return graphx_conn_bulk(graph, handle.graph)
            return graphx_conn(graph)
        if algorithm is Algorithm.CD:
            degrees = dict(graph.degrees().collect())
            # Isolated vertices never appear in the edge RDD; this is
            # driver-side bookkeeping — the algorithm's real work is
            # charged inside the RDD operators.
            for vertex in adjacency:  # quality: ignore[cost-accounting]
                degrees.setdefault(vertex, 0)
            return graphx_cd(
                graph,
                degrees,
                max_iterations=params.cd_max_iterations,
                hop_attenuation=params.cd_hop_attenuation,
                node_preference=params.cd_node_preference,
            )
        if algorithm is Algorithm.STATS:
            return graphx_stats(graph, adjacency)
        if algorithm is Algorithm.PR:
            if self.bulk:
                return graphx_pagerank_bulk(
                    graph,
                    handle.graph,
                    damping=params.pagerank_damping,
                    iterations=params.pagerank_iterations,
                )
            # Degrees come straight off the driver-side adjacency (the
            # real GraphX materializes outDegrees once per graph, not
            # per run); both execution paths therefore charge nothing
            # for them.
            degrees = {
                vertex: len(adj) for vertex, adj in adjacency.items()
            }
            return graphx_pagerank(
                graph,
                degrees,
                damping=params.pagerank_damping,
                iterations=params.pagerank_iterations,
            )
        if algorithm is Algorithm.SSSP:
            source = params.resolve_sssp_source(handle.graph)
            weights = {
                vertex: dict(pairs)
                for vertex, pairs in handle.graph.weighted_adjacency().items()
            }
            return graphx_sssp(graph, source, weights)
        if algorithm is Algorithm.LCC:
            return graphx_lcc(graph, adjacency)
        if algorithm is Algorithm.EVO:
            existing = sorted(adjacency)
            next_id = existing[-1] + 1
            ambassadors = {
                next_id + arrival: ambassador_for(
                    params.evo_seed, next_id + arrival, existing
                )
                for arrival in range(params.evo_new_vertices)
            }
            return graphx_evo(
                graph,
                adjacency,
                ambassadors,
                p_forward=params.evo_p_forward,
                max_hops=params.evo_max_hops,
                seed=params.evo_seed,
            )
        raise ValueError(f"unsupported algorithm {algorithm}")
