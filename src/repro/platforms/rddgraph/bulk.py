"""Vectorized (bulk) execution of the GraphX Pregel loop.

The scalar path runs BFS and CONN through the real RDD substrate: one
Python closure call and one dict operation per record per stage. For
these two algorithms every stage's *records* are fixed-shape integer
pairs, so the whole loop collapses into numpy array operations — while
the :class:`~repro.core.cost.CostMeter` event sequence is replayed
verbatim from per-worker record counts.

The contract, verified by ``tests/test_bulk_equivalence.py``: a bulk
run produces *bit-identical* outputs and cost profiles to the scalar
path. That works because every scalar charge is a per-record constant:

* each stage charges ``records * RECORD_CPU_OPS`` per worker and
  materializes ``records * bytes-per-record`` of cached memory, where
  the per-record footprint depends only on the record *shape*
  (``(id, int)`` pairs: 48 bytes; ``(id, (int, flag))`` vertex values:
  80; join triplets: 112) — so count × constant reproduces the scalar
  float accumulation exactly (integer-valued float64 sums below 2**53);
* the ``reduceByKey`` shuffle moves the map-side-combined ``(dst,
  source-partition)`` pairs whose key does not hash home, 24 wire
  bytes each;
* vertex-side join inputs lost their partitioner to ``map`` but stay
  physically hash-aligned, so their re-shuffle charges zero bytes —
  the bulk path makes the same (empty) ``charge_shuffle`` call;
* stage names consume the context's shared stage counter in the same
  order, and every materialize/unpersist allocates/releases the same
  per-worker byte totals at the same point in the sequence.

The runner is engaged by :class:`~repro.platforms.rddgraph.driver.
GraphXPlatform` when built with ``bulk=True`` (the default);
``bulk=False`` forces the scalar RDD path.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.algorithms.bfs import UNREACHABLE
from repro.graph.graph import Graph
from repro.platforms.rddgraph.graphx import GraphXGraph
from repro.platforms.rddgraph.rdd import RECORD_CPU_OPS

__all__ = [
    "RDDBulkKernel",
    "RDDBFSBulkKernel",
    "RDDConnBulkKernel",
    "RDDPageRankBulkKernel",
    "BulkPregelRunner",
    "graphx_bfs_bulk",
    "graphx_conn_bulk",
    "graphx_pagerank_bulk",
]

_KNUTH = 2654435761

#: Cached bytes of one ``(id, int)`` record (``RECORD_MEMORY_BYTES``).
_PAIR_BYTES = 48.0
#: Cached bytes of one ``(id, (value, flag))`` vertex record.
_VERTEX_BYTES = 80.0
#: Cached bytes of one join output ``(id, (other, (value, flag)))``.
_JOINED_BYTES = 112.0
#: Wire bytes of one shuffled ``(id, int)`` record.
_PAIR_WIRE_BYTES = 24.0
#: Wire bytes of one collected ``(id, (value, flag))`` record.
_VERTEX_WIRE_BYTES = 40.0


class RDDBulkKernel(abc.ABC):
    """Vectorized counterpart of one GraphX Pregel algorithm.

    Kernels hold the dense per-vertex ``values`` and ``changed``
    arrays the scalar algorithms encode in their vertex-value tuples;
    the runner owns all cost accounting.
    """

    #: Receiver-side merge of messages per target (min semantics).
    reduce = np.minimum

    @abc.abstractmethod
    def initial(self, vertex_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(values, changed)`` arrays before the first iteration."""

    @abc.abstractmethod
    def send_mask(
        self, values: np.ndarray, changed: np.ndarray
    ) -> np.ndarray:
        """Which vertices emit a message along every out-arc."""

    @abc.abstractmethod
    def message_values(self, sender_values: np.ndarray) -> np.ndarray:
        """The message payload per sending arc, from the arc's source."""

    @abc.abstractmethod
    def absorb(
        self,
        values: np.ndarray,
        changed: np.ndarray,
        targets: np.ndarray,
        incoming: np.ndarray,
    ) -> None:
        """The vertex program: fold merged messages into the state.

        Mutates ``values``/``changed`` in place; vertices without
        messages always end the iteration unchanged (scalar ``vprog``
        returns ``changed=False`` for them).
        """

    def arc_messages(self, values: np.ndarray, senders: np.ndarray) -> np.ndarray:
        """Payload per sending arc; ``senders`` are dense source indices.

        Kernels whose payload depends on more than the sender's value
        (PageRank divides by the sender's degree) override this.
        """
        return self.message_values(values[senders])

    def merge_messages(
        self,
        payloads: np.ndarray,
        message_targets: np.ndarray,
        message_workers: np.ndarray,
        num_workers: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold message payloads per target; returns ``(targets, incoming)``.

        The default replays an order-independent ``reduce`` (min
        semantics); kernels with non-associative float merges override
        it to reproduce the scalar ``reduce_by_key`` fold order.
        """
        order = np.argsort(message_targets, kind="stable")
        targets, first = np.unique(message_targets[order], return_index=True)
        if len(targets) == 0:
            return targets, np.empty(0, dtype=np.int64)
        return targets, self.reduce.reduceat(payloads[order], first)


class RDDBFSBulkKernel(RDDBulkKernel):
    """Vectorized GraphX BFS (value = ``(distance, changed)``).

    Mirrors :func:`~repro.platforms.rddgraph.algorithms.graphx_bfs`:
    the source starts changed at distance 0; changed, reached vertices
    offer ``distance + 1`` along every arc; unreached targets adopt
    the minimum offer.
    """

    def __init__(self, source: int):
        self.source = source

    def initial(self, vertex_ids):
        """Source at distance 0 and changed; everyone else unreached."""
        values = np.full(len(vertex_ids), UNREACHABLE, dtype=np.int64)
        changed = np.zeros(len(vertex_ids), dtype=bool)
        position = int(np.searchsorted(vertex_ids, self.source))
        if position < len(vertex_ids) and vertex_ids[position] == self.source:
            values[position] = 0
            changed[position] = True
        return values, changed

    def send_mask(self, values, changed):
        """Changed *and* reached vertices broadcast their distance."""
        return changed & (values != UNREACHABLE)

    def message_values(self, sender_values):
        """A reached sender offers ``its distance + 1``."""
        return sender_values + 1

    def absorb(self, values, changed, targets, incoming):
        """Unreached targets adopt the merged (minimum) distance."""
        changed[:] = False
        fresh = values[targets] == UNREACHABLE
        newly = targets[fresh]
        values[newly] = incoming[fresh]
        changed[newly] = True


class RDDConnBulkKernel(RDDBulkKernel):
    """Vectorized GraphX connected components (HashMin).

    Mirrors :meth:`GraphXGraph.connected_components`: everyone starts
    changed in its own component; changed vertices broadcast their
    label; a strictly smaller merged label is adopted.
    """

    def initial(self, vertex_ids):
        """Every vertex starts changed, labeled with its own id."""
        return (
            vertex_ids.astype(np.int64, copy=True),
            np.ones(len(vertex_ids), dtype=bool),
        )

    def send_mask(self, values, changed):
        """Vertices whose label shrank last iteration broadcast it."""
        return changed

    def message_values(self, sender_values):
        """The sender offers its current component label."""
        return sender_values

    def absorb(self, values, changed, targets, incoming):
        """Adopt a strictly smaller merged label."""
        changed[:] = False
        adopt = incoming < values[targets]
        newly = targets[adopt]
        values[newly] = incoming[adopt]
        changed[newly] = True


class RDDPageRankBulkKernel(RDDBulkKernel):
    """Vectorized GraphX PageRank (value = ``(rank, iteration)``).

    Mirrors :func:`~repro.platforms.rddgraph.algorithms.
    graphx_pagerank` bit for bit. The scalar ``reduce_by_key`` folds
    float contributions in two stages — a map-side combine per source
    partition in arc-record order, then a final per-target fold over
    the combined partials in source-worker-ascending order — and
    :meth:`merge_messages` replays exactly that association order with
    sequential ``np.add.at`` accumulation (``reduceat`` pairwise sums
    would not match).
    """

    def __init__(self, degrees: np.ndarray, damping: float, iterations: int):
        #: Out-degree per dense vertex index, as float64.
        self.degrees = degrees
        self.damping = damping
        self.iterations = iterations
        #: Lockstep iteration counter — every vertex passes through
        #: ``vprog`` each round, so one scalar stands in for the
        #: per-vertex counters the scalar value tuples carry.
        self.iteration = 0
        self.base = 0.0

    def initial(self, vertex_ids):
        """Everyone starts at ``1/n``; iteration counters at zero."""
        n = len(vertex_ids)
        self.base = (1.0 - self.damping) / n if n else 0.0
        values = np.full(n, 1.0 / n if n else 0.0, dtype=np.float64)
        return values, np.zeros(n, dtype=bool)

    def send_mask(self, values, changed):
        """All vertices send until the iteration budget is spent."""
        if self.iteration < self.iterations:
            return np.ones(len(values), dtype=bool)
        return np.zeros(len(values), dtype=bool)

    def message_values(self, sender_values):
        """Unused — :meth:`arc_messages` needs the sender's degree."""
        return sender_values

    def arc_messages(self, values, senders):
        """Each arc carries its source's ``rank / degree`` share."""
        return values[senders] / self.degrees[senders]

    def merge_messages(self, payloads, message_targets, message_workers, num_workers):
        """Two-level sequential float fold matching ``reduce_by_key``."""
        # Level 1 — map-side combine: one partial per (target, source
        # worker), accumulated in arc-stream order, which within any
        # one worker's slots is exactly that partition's record order.
        key = message_targets * num_workers + message_workers
        pair_keys, inverse = np.unique(key, return_inverse=True)
        pair_partials = np.zeros(len(pair_keys), dtype=np.float64)
        np.add.at(pair_partials, inverse, payloads)
        # Level 2 — reducer fold: pair_keys sort as (target, worker),
        # so adding in slot order folds each target's partials in
        # source-worker-ascending order, as ``_shuffle_pairs`` does.
        pair_target = pair_keys // num_workers
        targets = np.unique(pair_target)
        incoming = np.zeros(len(targets), dtype=np.float64)
        np.add.at(incoming, np.searchsorted(targets, pair_target), pair_partials)
        return targets, incoming

    def absorb(self, values, changed, targets, incoming):
        """Damped update for message targets, bare base for the rest."""
        values[:] = self.base
        values[targets] = self.base + self.damping * incoming
        self.iteration += 1


class BulkPregelRunner:
    """Replays the scalar RDD Pregel loop's cost events, vectorized.

    Built from the :class:`GraphXGraph` (for the shared meter and
    stage counter) and the underlying :class:`Graph` (for the CSR
    arrays the scalar path re-derives record by record).
    """

    def __init__(self, graphx: GraphXGraph, graph: Graph, kernel: RDDBulkKernel):
        self.context = graphx.context
        self.meter = self.context.meter
        self.kernel = kernel
        undirected = graph.to_undirected()
        self.ids = undirected.vertices
        self.num_workers = self.context.spec.num_workers
        workers = np.uint64(self.num_workers)
        hashed = self.ids.astype(np.uint64) * np.uint64(_KNUTH)
        #: ``_key_partition`` of every vertex id, vectorized.
        self.vertex_workers = (
            (hashed & np.uint64(0xFFFFFFFF)) % workers
        ).astype(np.int64)
        degrees = undirected.out_degrees()
        self.arc_source = np.repeat(
            np.arange(len(self.ids), dtype=np.int64), degrees
        )
        _, self.arc_target = undirected.csr()
        self.arc_workers = self.vertex_workers[self.arc_source]
        self.vertices_per_worker = np.bincount(
            self.vertex_workers, minlength=self.num_workers
        )
        self.arcs_per_worker = np.bincount(
            self.arc_workers, minlength=self.num_workers
        )

    # -- the loop -----------------------------------------------------

    def run(self, max_iterations: int) -> tuple[np.ndarray, str]:
        """Execute the Pregel loop; returns final values and RDD name."""
        kernel, meter = self.kernel, self.meter
        values, changed = kernel.initial(self.ids)
        arcs, vertices = self.arcs_per_worker, self.vertices_per_worker
        total_vertices = int(vertices.sum())

        self._narrow_stage("mapVertices", vertices, vertices, total_vertices)
        self._allocate(_VERTEX_BYTES * vertices)
        name = "mapVertices"
        has_previous = False
        for _iteration in range(max_iterations):
            # triplets = edges ⋈ vertices: a full edge-RDD scan.
            self._begin_stage("triplets")
            meter.charge_shuffle(0.0, count=0)  # vertex side, all local
            self._charge_counts(2 * arcs + vertices)
            self._charge_probes(arcs)
            meter.end_round(active_vertices=int(arcs.sum()))
            self._allocate(_JOINED_BYTES * arcs)
            # sendMsg: one flat_map over every triplet.
            sending = kernel.send_mask(values, changed)
            arc_mask = sending[self.arc_source]
            message_targets = self.arc_target[arc_mask]
            message_workers = self.arc_workers[arc_mask]
            messages = np.bincount(message_workers, minlength=self.num_workers)
            self._narrow_stage(
                "sendMsg", arcs, messages, int(messages.sum())
            )
            self._allocate(_PAIR_BYTES * messages)
            # mergeMsg: map-side combine, shuffle home, final reduce.
            payloads = kernel.arc_messages(values, self.arc_source[arc_mask])
            self._begin_stage("mergeMsg")
            self._charge_counts(messages)
            pair_keys = np.unique(
                message_targets * self.num_workers + message_workers
            )
            pair_target = pair_keys // self.num_workers
            pair_worker = pair_keys % self.num_workers
            remote = int(
                np.count_nonzero(
                    pair_worker != self.vertex_workers[pair_target]
                )
            )
            meter.charge_shuffle(remote * _PAIR_WIRE_BYTES, count=remote)
            received = np.bincount(
                self.vertex_workers[pair_target], minlength=self.num_workers
            )
            self._charge_counts(received)
            targets, incoming = kernel.merge_messages(
                payloads, message_targets, message_workers, self.num_workers
            )
            merged = np.bincount(
                self.vertex_workers[targets], minlength=self.num_workers
            )
            meter.end_round(active_vertices=len(targets))
            self._allocate(_PAIR_BYTES * merged)
            self._release(_JOINED_BYTES * arcs)  # triplets.unpersist()
            self._release(_PAIR_BYTES * messages)  # messages.unpersist()
            if len(targets) == 0:
                self._release(_PAIR_BYTES * merged)  # merged.unpersist()
                break
            # vprog: left-outer-join the merged messages, map the program.
            self._begin_stage("vprog-join")
            meter.charge_shuffle(0.0, count=0)  # vertex side, all local
            self._charge_counts(2 * vertices + merged)
            self._charge_probes(vertices)
            meter.end_round(active_vertices=total_vertices)
            self._allocate(_JOINED_BYTES * vertices)
            self._narrow_stage("vprog", vertices, vertices, total_vertices)
            self._allocate(_VERTEX_BYTES * vertices)
            self._release(_JOINED_BYTES * vertices)  # joined.unpersist()
            self._release(_PAIR_BYTES * merged)  # merged.unpersist()
            if has_previous:  # lineage: previous generation released now
                self._release(_VERTEX_BYTES * vertices)
            has_previous = True
            name = "vprog"
            kernel.absorb(values, changed, targets, incoming)
        if has_previous:
            self._release(_VERTEX_BYTES * vertices)
        return values, name

    def collect(self, name: str, record_wire_bytes: float) -> None:
        """Replay :meth:`RDD.collect`'s charges for the final RDD."""
        meter = self.meter
        meter.begin_round(f"collect-{name}")
        self._charge_counts(self.vertices_per_worker)
        total = int(self.vertices_per_worker.sum())
        meter.charge_shuffle(total * record_wire_bytes, count=total)
        meter.end_round(active_vertices=total)

    def map_values_stage(self, name: str) -> None:
        """Replay one narrow ``map_values`` stage over the vertex RDD."""
        vertices = self.vertices_per_worker
        self._narrow_stage(name, vertices, vertices, int(vertices.sum()))
        self._allocate(_PAIR_BYTES * vertices)

    # -- charge helpers -----------------------------------------------

    # Opener half of a paired helper: every caller closes the round with
    # end_round on all paths (and those callers are themselves verified
    # by the cost-protocol rule), so the open round this helper hands
    # back is intentional, not a leak.
    def _begin_stage(self, suffix: str) -> None:  # quality: ignore[cost-protocol]
        """Open a round named with the context's shared stage counter."""
        self.meter.begin_round(f"stage-{next(self.context._stage)}-{suffix}")

    def _narrow_stage(
        self,
        suffix: str,
        in_counts: np.ndarray,
        out_counts: np.ndarray,
        produced: int,
    ) -> None:
        """One narrow transformation: per-record CPU in and out."""
        self._begin_stage(suffix)
        self._charge_counts(in_counts + out_counts)
        self.meter.end_round(active_vertices=produced)

    def _charge_counts(self, records_per_worker: np.ndarray) -> None:
        """Charge ``records * RECORD_CPU_OPS`` per worker, batched."""
        for worker in np.nonzero(records_per_worker)[0]:
            self.meter.charge_compute_bulk(
                int(worker), float(records_per_worker[worker]) * RECORD_CPU_OPS
            )

    def _charge_probes(self, probes_per_worker: np.ndarray) -> None:
        """Charge hash-join probes as random accesses, batched."""
        for worker in np.nonzero(probes_per_worker)[0]:
            self.meter.charge_compute_bulk(
                int(worker), 0.0, random_accesses=float(probes_per_worker[worker])
            )

    def _allocate(self, bytes_per_worker: np.ndarray) -> None:
        """Materialize an RDD: cached bytes on every worker."""
        for worker in range(self.num_workers):
            self.meter.allocate_memory(worker, float(bytes_per_worker[worker]))

    def _release(self, bytes_per_worker: np.ndarray) -> None:
        """Unpersist an RDD: release its cached bytes."""
        for worker in range(self.num_workers):
            self.meter.release_memory(worker, float(bytes_per_worker[worker]))


def graphx_bfs_bulk(
    graphx: GraphXGraph, graph: Graph, source: int, max_iterations: int = 100
) -> dict[int, int]:
    """Bulk twin of :func:`~repro.platforms.rddgraph.algorithms.graphx_bfs`."""
    runner = BulkPregelRunner(graphx, graph, RDDBFSBulkKernel(source))
    values, name = runner.run(max_iterations)
    runner.collect(name, _VERTEX_WIRE_BYTES)
    return {int(v): int(d) for v, d in zip(runner.ids, values)}


def graphx_conn_bulk(
    graphx: GraphXGraph, graph: Graph, max_iterations: int = 100
) -> dict[int, int]:
    """Bulk twin of :func:`~repro.platforms.rddgraph.algorithms.graphx_conn`."""
    runner = BulkPregelRunner(graphx, graph, RDDConnBulkKernel())
    values, _name = runner.run(max_iterations)
    runner.map_values_stage("components")
    runner.collect("components", _PAIR_WIRE_BYTES)
    return {int(v): int(c) for v, c in zip(runner.ids, values)}


def graphx_pagerank_bulk(
    graphx: GraphXGraph,
    graph: Graph,
    damping: float = 0.85,
    iterations: int = 10,
) -> dict[int, float]:
    """Bulk twin of :func:`~repro.platforms.rddgraph.algorithms.graphx_pagerank`.

    Runs ``iterations + 1`` Pregel rounds like the scalar path — the
    final round finds no messages (the iteration budget is spent) and
    terminates the loop with the same charge sequence.
    """
    degrees = graph.to_undirected().out_degrees().astype(np.float64)
    kernel = RDDPageRankBulkKernel(degrees, damping, iterations)
    runner = BulkPregelRunner(graphx, graph, kernel)
    values, name = runner.run(iterations + 1)
    runner.collect(name, _VERTEX_WIRE_BYTES)
    return {int(v): float(r) for v, r in zip(runner.ids, values)}
