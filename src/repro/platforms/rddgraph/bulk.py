"""Vectorized (bulk) execution of the GraphX Pregel loop.

The scalar path runs BFS and CONN through the real RDD substrate: one
Python closure call and one dict operation per record per stage. For
these two algorithms every stage's *records* are fixed-shape integer
pairs, so the whole loop collapses into numpy array operations — while
the :class:`~repro.core.cost.CostMeter` event sequence is replayed
verbatim from per-worker record counts.

The contract, verified by ``tests/test_bulk_equivalence.py``: a bulk
run produces *bit-identical* outputs and cost profiles to the scalar
path. That works because every scalar charge is a per-record constant:

* each stage charges ``records * RECORD_CPU_OPS`` per worker and
  materializes ``records * bytes-per-record`` of cached memory, where
  the per-record footprint depends only on the record *shape*
  (``(id, int)`` pairs: 48 bytes; ``(id, (int, flag))`` vertex values:
  80; join triplets: 112) — so count × constant reproduces the scalar
  float accumulation exactly (integer-valued float64 sums below 2**53);
* the ``reduceByKey`` shuffle moves the map-side-combined ``(dst,
  source-partition)`` pairs whose key does not hash home, 24 wire
  bytes each;
* vertex-side join inputs lost their partitioner to ``map`` but stay
  physically hash-aligned, so their re-shuffle charges zero bytes —
  the bulk path makes the same (empty) ``charge_shuffle`` call;
* stage names consume the context's shared stage counter in the same
  order, and every materialize/unpersist allocates/releases the same
  per-worker byte totals at the same point in the sequence.

The runner is engaged by :class:`~repro.platforms.rddgraph.driver.
GraphXPlatform` when built with ``bulk=True`` (the default);
``bulk=False`` forces the scalar RDD path.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.algorithms.bfs import UNREACHABLE
from repro.graph.graph import Graph
from repro.platforms.rddgraph.graphx import GraphXGraph
from repro.platforms.rddgraph.rdd import RECORD_CPU_OPS

__all__ = [
    "RDDBulkKernel",
    "RDDBFSBulkKernel",
    "RDDConnBulkKernel",
    "BulkPregelRunner",
    "graphx_bfs_bulk",
    "graphx_conn_bulk",
]

_KNUTH = 2654435761

#: Cached bytes of one ``(id, int)`` record (``RECORD_MEMORY_BYTES``).
_PAIR_BYTES = 48.0
#: Cached bytes of one ``(id, (value, flag))`` vertex record.
_VERTEX_BYTES = 80.0
#: Cached bytes of one join output ``(id, (other, (value, flag)))``.
_JOINED_BYTES = 112.0
#: Wire bytes of one shuffled ``(id, int)`` record.
_PAIR_WIRE_BYTES = 24.0
#: Wire bytes of one collected ``(id, (value, flag))`` record.
_VERTEX_WIRE_BYTES = 40.0


class RDDBulkKernel(abc.ABC):
    """Vectorized counterpart of one GraphX Pregel algorithm.

    Kernels hold the dense per-vertex ``values`` and ``changed``
    arrays the scalar algorithms encode in their vertex-value tuples;
    the runner owns all cost accounting.
    """

    #: Receiver-side merge of messages per target (min semantics).
    reduce = np.minimum

    @abc.abstractmethod
    def initial(self, vertex_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(values, changed)`` arrays before the first iteration."""

    @abc.abstractmethod
    def send_mask(
        self, values: np.ndarray, changed: np.ndarray
    ) -> np.ndarray:
        """Which vertices emit a message along every out-arc."""

    @abc.abstractmethod
    def message_values(self, sender_values: np.ndarray) -> np.ndarray:
        """The message payload per sending arc, from the arc's source."""

    @abc.abstractmethod
    def absorb(
        self,
        values: np.ndarray,
        changed: np.ndarray,
        targets: np.ndarray,
        incoming: np.ndarray,
    ) -> None:
        """The vertex program: fold merged messages into the state.

        Mutates ``values``/``changed`` in place; vertices without
        messages always end the iteration unchanged (scalar ``vprog``
        returns ``changed=False`` for them).
        """


class RDDBFSBulkKernel(RDDBulkKernel):
    """Vectorized GraphX BFS (value = ``(distance, changed)``).

    Mirrors :func:`~repro.platforms.rddgraph.algorithms.graphx_bfs`:
    the source starts changed at distance 0; changed, reached vertices
    offer ``distance + 1`` along every arc; unreached targets adopt
    the minimum offer.
    """

    def __init__(self, source: int):
        self.source = source

    def initial(self, vertex_ids):
        """Source at distance 0 and changed; everyone else unreached."""
        values = np.full(len(vertex_ids), UNREACHABLE, dtype=np.int64)
        changed = np.zeros(len(vertex_ids), dtype=bool)
        position = int(np.searchsorted(vertex_ids, self.source))
        if position < len(vertex_ids) and vertex_ids[position] == self.source:
            values[position] = 0
            changed[position] = True
        return values, changed

    def send_mask(self, values, changed):
        """Changed *and* reached vertices broadcast their distance."""
        return changed & (values != UNREACHABLE)

    def message_values(self, sender_values):
        """A reached sender offers ``its distance + 1``."""
        return sender_values + 1

    def absorb(self, values, changed, targets, incoming):
        """Unreached targets adopt the merged (minimum) distance."""
        changed[:] = False
        fresh = values[targets] == UNREACHABLE
        newly = targets[fresh]
        values[newly] = incoming[fresh]
        changed[newly] = True


class RDDConnBulkKernel(RDDBulkKernel):
    """Vectorized GraphX connected components (HashMin).

    Mirrors :meth:`GraphXGraph.connected_components`: everyone starts
    changed in its own component; changed vertices broadcast their
    label; a strictly smaller merged label is adopted.
    """

    def initial(self, vertex_ids):
        """Every vertex starts changed, labeled with its own id."""
        return (
            vertex_ids.astype(np.int64, copy=True),
            np.ones(len(vertex_ids), dtype=bool),
        )

    def send_mask(self, values, changed):
        """Vertices whose label shrank last iteration broadcast it."""
        return changed

    def message_values(self, sender_values):
        """The sender offers its current component label."""
        return sender_values

    def absorb(self, values, changed, targets, incoming):
        """Adopt a strictly smaller merged label."""
        changed[:] = False
        adopt = incoming < values[targets]
        newly = targets[adopt]
        values[newly] = incoming[adopt]
        changed[newly] = True


class BulkPregelRunner:
    """Replays the scalar RDD Pregel loop's cost events, vectorized.

    Built from the :class:`GraphXGraph` (for the shared meter and
    stage counter) and the underlying :class:`Graph` (for the CSR
    arrays the scalar path re-derives record by record).
    """

    def __init__(self, graphx: GraphXGraph, graph: Graph, kernel: RDDBulkKernel):
        self.context = graphx.context
        self.meter = self.context.meter
        self.kernel = kernel
        undirected = graph.to_undirected()
        self.ids = undirected.vertices
        self.num_workers = self.context.spec.num_workers
        workers = np.uint64(self.num_workers)
        hashed = self.ids.astype(np.uint64) * np.uint64(_KNUTH)
        #: ``_key_partition`` of every vertex id, vectorized.
        self.vertex_workers = (
            (hashed & np.uint64(0xFFFFFFFF)) % workers
        ).astype(np.int64)
        degrees = undirected.out_degrees()
        self.arc_source = np.repeat(
            np.arange(len(self.ids), dtype=np.int64), degrees
        )
        _, self.arc_target = undirected.csr()
        self.arc_workers = self.vertex_workers[self.arc_source]
        self.vertices_per_worker = np.bincount(
            self.vertex_workers, minlength=self.num_workers
        )
        self.arcs_per_worker = np.bincount(
            self.arc_workers, minlength=self.num_workers
        )

    # -- the loop -----------------------------------------------------

    def run(self, max_iterations: int) -> tuple[np.ndarray, str]:
        """Execute the Pregel loop; returns final values and RDD name."""
        kernel, meter = self.kernel, self.meter
        values, changed = kernel.initial(self.ids)
        arcs, vertices = self.arcs_per_worker, self.vertices_per_worker
        total_vertices = int(vertices.sum())

        self._narrow_stage("mapVertices", vertices, vertices, total_vertices)
        self._allocate(_VERTEX_BYTES * vertices)
        name = "mapVertices"
        has_previous = False
        for _iteration in range(max_iterations):
            # triplets = edges ⋈ vertices: a full edge-RDD scan.
            self._begin_stage("triplets")
            meter.charge_shuffle(0.0, count=0)  # vertex side, all local
            self._charge_counts(2 * arcs + vertices)
            self._charge_probes(arcs)
            meter.end_round(active_vertices=int(arcs.sum()))
            self._allocate(_JOINED_BYTES * arcs)
            # sendMsg: one flat_map over every triplet.
            sending = kernel.send_mask(values, changed)
            arc_mask = sending[self.arc_source]
            message_targets = self.arc_target[arc_mask]
            message_workers = self.arc_workers[arc_mask]
            messages = np.bincount(message_workers, minlength=self.num_workers)
            self._narrow_stage(
                "sendMsg", arcs, messages, int(messages.sum())
            )
            self._allocate(_PAIR_BYTES * messages)
            # mergeMsg: map-side combine, shuffle home, final reduce.
            payloads = kernel.message_values(values[self.arc_source[arc_mask]])
            self._begin_stage("mergeMsg")
            self._charge_counts(messages)
            pair_keys = np.unique(
                message_targets * self.num_workers + message_workers
            )
            pair_target = pair_keys // self.num_workers
            pair_worker = pair_keys % self.num_workers
            remote = int(
                np.count_nonzero(
                    pair_worker != self.vertex_workers[pair_target]
                )
            )
            meter.charge_shuffle(remote * _PAIR_WIRE_BYTES, count=remote)
            received = np.bincount(
                self.vertex_workers[pair_target], minlength=self.num_workers
            )
            self._charge_counts(received)
            order = np.argsort(message_targets, kind="stable")
            targets, first = np.unique(
                message_targets[order], return_index=True
            )
            incoming = (
                kernel.reduce.reduceat(payloads[order], first)
                if len(targets)
                else np.empty(0, dtype=np.int64)
            )
            merged = np.bincount(
                self.vertex_workers[targets], minlength=self.num_workers
            )
            meter.end_round(active_vertices=len(targets))
            self._allocate(_PAIR_BYTES * merged)
            self._release(_JOINED_BYTES * arcs)  # triplets.unpersist()
            self._release(_PAIR_BYTES * messages)  # messages.unpersist()
            if len(targets) == 0:
                self._release(_PAIR_BYTES * merged)  # merged.unpersist()
                break
            # vprog: left-outer-join the merged messages, map the program.
            self._begin_stage("vprog-join")
            meter.charge_shuffle(0.0, count=0)  # vertex side, all local
            self._charge_counts(2 * vertices + merged)
            self._charge_probes(vertices)
            meter.end_round(active_vertices=total_vertices)
            self._allocate(_JOINED_BYTES * vertices)
            self._narrow_stage("vprog", vertices, vertices, total_vertices)
            self._allocate(_VERTEX_BYTES * vertices)
            self._release(_JOINED_BYTES * vertices)  # joined.unpersist()
            self._release(_PAIR_BYTES * merged)  # merged.unpersist()
            if has_previous:  # lineage: previous generation released now
                self._release(_VERTEX_BYTES * vertices)
            has_previous = True
            name = "vprog"
            kernel.absorb(values, changed, targets, incoming)
        if has_previous:
            self._release(_VERTEX_BYTES * vertices)
        return values, name

    def collect(self, name: str, record_wire_bytes: float) -> None:
        """Replay :meth:`RDD.collect`'s charges for the final RDD."""
        meter = self.meter
        meter.begin_round(f"collect-{name}")
        self._charge_counts(self.vertices_per_worker)
        total = int(self.vertices_per_worker.sum())
        meter.charge_shuffle(total * record_wire_bytes, count=total)
        meter.end_round(active_vertices=total)

    def map_values_stage(self, name: str) -> None:
        """Replay one narrow ``map_values`` stage over the vertex RDD."""
        vertices = self.vertices_per_worker
        self._narrow_stage(name, vertices, vertices, int(vertices.sum()))
        self._allocate(_PAIR_BYTES * vertices)

    # -- charge helpers -----------------------------------------------

    # Opener half of a paired helper: every caller closes the round with
    # end_round on all paths (and those callers are themselves verified
    # by the cost-protocol rule), so the open round this helper hands
    # back is intentional, not a leak.
    def _begin_stage(self, suffix: str) -> None:  # quality: ignore[cost-protocol]
        """Open a round named with the context's shared stage counter."""
        self.meter.begin_round(f"stage-{next(self.context._stage)}-{suffix}")

    def _narrow_stage(
        self,
        suffix: str,
        in_counts: np.ndarray,
        out_counts: np.ndarray,
        produced: int,
    ) -> None:
        """One narrow transformation: per-record CPU in and out."""
        self._begin_stage(suffix)
        self._charge_counts(in_counts + out_counts)
        self.meter.end_round(active_vertices=produced)

    def _charge_counts(self, records_per_worker: np.ndarray) -> None:
        """Charge ``records * RECORD_CPU_OPS`` per worker, batched."""
        for worker in np.nonzero(records_per_worker)[0]:
            self.meter.charge_compute_bulk(
                int(worker), float(records_per_worker[worker]) * RECORD_CPU_OPS
            )

    def _charge_probes(self, probes_per_worker: np.ndarray) -> None:
        """Charge hash-join probes as random accesses, batched."""
        for worker in np.nonzero(probes_per_worker)[0]:
            self.meter.charge_compute_bulk(
                int(worker), 0.0, random_accesses=float(probes_per_worker[worker])
            )

    def _allocate(self, bytes_per_worker: np.ndarray) -> None:
        """Materialize an RDD: cached bytes on every worker."""
        for worker in range(self.num_workers):
            self.meter.allocate_memory(worker, float(bytes_per_worker[worker]))

    def _release(self, bytes_per_worker: np.ndarray) -> None:
        """Unpersist an RDD: release its cached bytes."""
        for worker in range(self.num_workers):
            self.meter.release_memory(worker, float(bytes_per_worker[worker]))


def graphx_bfs_bulk(
    graphx: GraphXGraph, graph: Graph, source: int, max_iterations: int = 100
) -> dict[int, int]:
    """Bulk twin of :func:`~repro.platforms.rddgraph.algorithms.graphx_bfs`."""
    runner = BulkPregelRunner(graphx, graph, RDDBFSBulkKernel(source))
    values, name = runner.run(max_iterations)
    runner.collect(name, _VERTEX_WIRE_BYTES)
    return {int(v): int(d) for v, d in zip(runner.ids, values)}


def graphx_conn_bulk(
    graphx: GraphXGraph, graph: Graph, max_iterations: int = 100
) -> dict[int, int]:
    """Bulk twin of :func:`~repro.platforms.rddgraph.algorithms.graphx_conn`."""
    runner = BulkPregelRunner(graphx, graph, RDDConnBulkKernel())
    values, _name = runner.run(max_iterations)
    runner.map_values_stage("components")
    runner.collect("components", _PAIR_WIRE_BYTES)
    return {int(v): int(c) for v, c in zip(runner.ids, values)}
