"""A resilient-distributed-dataset substrate with cost accounting.

Implements the Spark-style dataset abstraction the GraphX layer needs:
immutable partitioned collections with *narrow* transformations
(``map``, ``filter``, ``flat_map``, ``map_values`` — no data movement)
and *wide* transformations (``reduce_by_key``, ``group_by_key``,
``join``, ``distinct`` — hash-repartitioning shuffles). Wide
operations between identically partitioned RDDs skip the shuffle, as
Spark's co-partitioning optimization does; the GraphX layer relies on
this for its vertex joins.

Every transformation really executes (records are Python objects) and
charges the shared :class:`~repro.core.cost.CostMeter`:

* per-record CPU on the owning worker (JVM-object handling costs more
  per record than Giraph's primitive arrays — ``RECORD_CPU_OPS``);
* shuffle bytes for wide dependencies;
* cached-RDD memory: a materialized RDD occupies worker memory until
  :meth:`RDD.unpersist` — iterative jobs that keep a previous
  generation alive (as GraphX's Pregel does for lineage) hold two
  graphs' worth of memory, which is exactly how the simulated GraphX
  runs out of memory on workloads the leaner Giraph representation
  survives.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any, Callable, Iterable

from repro.core.cost import ClusterSpec, CostMeter

__all__ = ["RDDContext", "RDD"]

#: JVM-ish memory footprint per cached record (object header, boxing,
#: tuple wrapper). Roughly 2-3x Giraph's primitive-array bytes/edge.
RECORD_MEMORY_BYTES = 48.0
#: Extra bytes per element for collection-valued records.
ELEMENT_MEMORY_BYTES = 16.0
#: CPU ops charged per record touched by a transformation.
RECORD_CPU_OPS = 2.0
#: Serialized bytes per record crossing the network in a shuffle,
#: before accounting for collection-valued payloads (see
#: :func:`_record_shuffle_bytes`).
SHUFFLE_RECORD_BYTES = 24.0
#: Serialized bytes per element of a collection-valued record.
SHUFFLE_ELEMENT_BYTES = 8.0

_KNUTH = 2654435761


def _key_partition(key: Any, num_partitions: int) -> int:
    """Deterministic hash partitioning (stable across runs).

    Non-integer keys hash via CRC32 of their ``repr`` rather than the
    builtin ``hash``, whose string salt (``PYTHONHASHSEED``) would
    place records differently in each interpreter process — the
    parallel suite runner requires identical placement everywhere.
    """
    if isinstance(key, int):
        return ((key * _KNUTH) & 0xFFFFFFFF) % num_partitions
    return (zlib.crc32(repr(key).encode("utf-8")) & 0x7FFFFFFF) % num_partitions


def _value_memory(value: Any) -> float:
    """JVM-ish footprint of one record value (one nesting level deep)."""
    if isinstance(value, (list, tuple, set, frozenset)):
        size = ELEMENT_MEMORY_BYTES * len(value)
        for element in value:
            if isinstance(element, (list, tuple, set, frozenset, dict)):
                size += ELEMENT_MEMORY_BYTES * len(element)
        return size
    if isinstance(value, dict):
        return 2 * ELEMENT_MEMORY_BYTES * len(value)
    return 0.0


def _record_memory(record: Any) -> float:
    size = RECORD_MEMORY_BYTES
    if isinstance(record, tuple) and len(record) == 2:
        size += _value_memory(record[1])
    return size


def _record_shuffle_bytes(record: Any) -> float:
    """Serialized size of one record on the wire."""
    size = SHUFFLE_RECORD_BYTES
    if isinstance(record, tuple) and len(record) == 2:
        size += _value_memory(record[1]) * (SHUFFLE_ELEMENT_BYTES / 16.0)
    return size


class RDDContext:
    """Factory and bookkeeper for RDDs (the SparkContext analogue)."""

    def __init__(self, spec: ClusterSpec, meter: CostMeter | None = None):
        self.spec = spec
        self.meter = meter or CostMeter(spec)
        self._next_id = itertools.count()
        self._stage = itertools.count()
        self._live: dict[int, float] = {}

    # -- RDD creation -----------------------------------------------------

    def parallelize(self, records: Iterable[Any], name: str = "data") -> "RDD":
        """Distribute a collection across the cluster's partitions."""
        records = list(records)
        partitions: list[list] = [[] for _ in range(self.spec.num_workers)]
        for index, record in enumerate(records):
            partitions[index % self.spec.num_workers].append(record)
        return self._materialize(partitions, name, partitioner=None)

    def parallelize_pairs(self, records: Iterable[tuple], name: str = "pairs") -> "RDD":
        """Distribute key-value pairs, hash-partitioned by key."""
        partitions: list[list] = [[] for _ in range(self.spec.num_workers)]
        for record in records:
            partitions[_key_partition(record[0], self.spec.num_workers)].append(record)
        return self._materialize(partitions, name, partitioner="hash")

    # -- internal ----------------------------------------------------------

    def _materialize(
        self, partitions: list[list], name: str, partitioner: str | None
    ) -> "RDD":
        rdd = RDD(self, partitions, name, partitioner)
        memory = 0.0
        for worker, partition in enumerate(partitions):
            part_bytes = sum(_record_memory(r) for r in partition)
            self.meter.allocate_memory(worker, part_bytes)
            memory += part_bytes
        self._live[rdd.rdd_id] = memory
        return rdd

    def _release(self, rdd: "RDD") -> None:
        if rdd.rdd_id not in self._live:
            return
        del self._live[rdd.rdd_id]
        for worker, partition in enumerate(rdd.partitions):
            self.meter.release_memory(
                worker, sum(_record_memory(r) for r in partition)
            )

class RDD:
    """An immutable, partitioned dataset (already materialized)."""

    def __init__(
        self,
        context: RDDContext,
        partitions: list[list],
        name: str,
        partitioner: str | None,
    ):
        self.context = context
        self.partitions = partitions
        self.name = name
        self.partitioner = partitioner
        self.rdd_id = next(context._next_id)

    # -- metadata -----------------------------------------------------------

    def count(self) -> int:
        """Number of records across all partitions."""
        return sum(len(partition) for partition in self.partitions)

    def collect(self) -> list:
        """Gather all records to the driver (charged as network)."""
        meter = self.context.meter
        meter.begin_round(f"collect-{self.name}")
        total = 0
        total_bytes = 0.0
        for worker, partition in enumerate(self.partitions):
            meter.charge_compute(worker, len(partition) * RECORD_CPU_OPS)
            total += len(partition)
            total_bytes += sum(_record_shuffle_bytes(r) for r in partition)
        meter.charge_shuffle(total_bytes, count=total)
        meter.end_round(active_vertices=total)
        return [record for partition in self.partitions for record in partition]

    def unpersist(self) -> None:
        """Release this RDD's cached memory."""
        self.context._release(self)

    # -- narrow transformations ----------------------------------------------

    def _narrow(self, name: str, transform: Callable[[list], list],
                keeps_partitioner: bool) -> "RDD":
        context = self.context
        meter = context.meter
        meter.begin_round(f"stage-{next(context._stage)}-{name}")
        new_partitions = []
        produced = 0
        for worker, partition in enumerate(self.partitions):
            result = transform(partition)
            meter.charge_compute(
                worker, (len(partition) + len(result)) * RECORD_CPU_OPS
            )
            new_partitions.append(result)
            produced += len(result)
        meter.end_round(active_vertices=produced)
        return context._materialize(
            new_partitions,
            name,
            self.partitioner if keeps_partitioner else None,
        )

    def map(self, fn: Callable[[Any], Any], name: str = "map") -> "RDD":
        """Narrow: transform every record."""
        return self._narrow(name, lambda p: [fn(r) for r in p], keeps_partitioner=False)

    def map_values(self, fn: Callable[[Any], Any], name: str = "mapValues") -> "RDD":
        """Narrow: transform pair values, keeping the partitioner."""
        return self._narrow(
            name, lambda p: [(k, fn(v)) for k, v in p], keeps_partitioner=True
        )

    def filter(self, fn: Callable[[Any], bool], name: str = "filter") -> "RDD":
        """Narrow: keep records matching the predicate."""
        return self._narrow(name, lambda p: [r for r in p if fn(r)],
                            keeps_partitioner=True)

    def flat_map(self, fn: Callable[[Any], Iterable[Any]], name: str = "flatMap") -> "RDD":
        """Narrow: expand every record into zero or more records."""
        return self._narrow(
            name, lambda p: [out for r in p for out in fn(r)], keeps_partitioner=False
        )

    # -- wide transformations ---------------------------------------------------

    def _shuffle_pairs(self, records_by_partition: list[list], name: str) -> list[list]:
        """Hash-repartition key-value records, charging the network."""
        context = self.context
        meter = context.meter
        num_workers = context.spec.num_workers
        out: list[list] = [[] for _ in range(num_workers)]
        remote = 0
        remote_bytes = 0.0
        for worker, partition in enumerate(records_by_partition):
            for record in partition:
                target = _key_partition(record[0], num_workers)
                out[target].append(record)
                if target != worker:
                    remote += 1
                    remote_bytes += _record_shuffle_bytes(record)
        meter.charge_shuffle(remote_bytes, count=remote)
        return out

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], name: str = "reduceByKey"
    ) -> "RDD":
        """Wide: combine pair values per key (map-side combine first)."""
        context = self.context
        meter = context.meter
        meter.begin_round(f"stage-{next(context._stage)}-{name}")
        # Map-side combine, as Spark does.
        combined: list[list] = []
        for worker, partition in enumerate(self.partitions):
            local: dict[Any, Any] = {}
            for key, value in partition:
                local[key] = fn(local[key], value) if key in local else value
            meter.charge_compute(worker, len(partition) * RECORD_CPU_OPS)
            combined.append(list(local.items()))
        shuffled = (
            combined
            if self.partitioner == "hash"
            else self._shuffle_pairs(combined, name)
        )
        new_partitions = []
        for worker, partition in enumerate(shuffled):
            final: dict[Any, Any] = {}
            for key, value in partition:
                final[key] = fn(final[key], value) if key in final else value
            meter.charge_compute(worker, len(partition) * RECORD_CPU_OPS)
            new_partitions.append(sorted(final.items(), key=lambda kv: repr(kv[0])))
        produced = sum(len(p) for p in new_partitions)
        meter.end_round(active_vertices=produced)
        return context._materialize(new_partitions, name, "hash")

    def group_by_key(self, name: str = "groupByKey") -> "RDD":
        """Wide: collect pair values per key."""
        context = self.context
        meter = context.meter
        meter.begin_round(f"stage-{next(context._stage)}-{name}")
        shuffled = (
            self.partitions
            if self.partitioner == "hash"
            else self._shuffle_pairs(self.partitions, name)
        )
        new_partitions = []
        for worker, partition in enumerate(shuffled):
            groups: dict[Any, list] = {}
            for key, value in partition:
                groups.setdefault(key, []).append(value)
            meter.charge_compute(worker, len(partition) * RECORD_CPU_OPS)
            new_partitions.append(sorted(groups.items(), key=lambda kv: repr(kv[0])))
        meter.end_round(active_vertices=sum(len(p) for p in new_partitions))
        return context._materialize(new_partitions, name, "hash")

    def join(self, other: "RDD", name: str = "join") -> "RDD":
        """Inner join on keys → records ``(key, (left, right))``."""
        return self._join(other, name, outer=False)

    def left_outer_join(self, other: "RDD", name: str = "leftOuterJoin") -> "RDD":
        """Left join → ``(key, (left, right | None))``."""
        return self._join(other, name, outer=True)

    def _join(self, other: "RDD", name: str, outer: bool) -> "RDD":
        context = self.context
        meter = context.meter
        meter.begin_round(f"stage-{next(context._stage)}-{name}")
        left = (
            self.partitions
            if self.partitioner == "hash"
            else self._shuffle_pairs(self.partitions, name)
        )
        right = (
            other.partitions
            if other.partitioner == "hash"
            else self._shuffle_pairs(other.partitions, name)
        )
        new_partitions = []
        for worker in range(context.spec.num_workers):
            right_map: dict[Any, list] = {}
            for key, value in right[worker]:
                right_map.setdefault(key, []).append(value)
            result = []
            for key, value in left[worker]:
                matches = right_map.get(key)
                if matches:
                    result.extend((key, (value, match)) for match in matches)
                elif outer:
                    result.append((key, (value, None)))
            meter.charge_compute(
                worker,
                (len(left[worker]) + len(right[worker]) + len(result))
                * RECORD_CPU_OPS,
            )
            # Hash-join probes are random accesses.
            meter.charge_random_access(worker, len(left[worker]))
            new_partitions.append(result)
        meter.end_round(active_vertices=sum(len(p) for p in new_partitions))
        return context._materialize(new_partitions, name, "hash")

    def distinct(self, name: str = "distinct") -> "RDD":
        """Wide: deduplicate records via a shuffle."""
        context = self.context
        meter = context.meter
        meter.begin_round(f"stage-{next(context._stage)}-{name}")
        keyed = [[(record, None) for record in p] for p in self.partitions]
        shuffled = self._shuffle_pairs(keyed, name)
        new_partitions = []
        for worker, partition in enumerate(shuffled):
            seen = {key for key, _none in partition}
            meter.charge_compute(worker, len(partition) * RECORD_CPU_OPS)
            new_partitions.append(sorted(seen, key=repr))
        meter.end_round(active_vertices=sum(len(p) for p in new_partitions))
        return context._materialize(new_partitions, name, None)
