"""Vectored stored procedures over the edge table.

The paper's Section 3.4 runs BFS through Virtuoso's SQL ``transitive``
extension; supporting the *whole* Graphalytics workload on the column
store (the paper: "we are working on implementing support for
OpenLink Virtuoso") additionally needs distance tracking, component
labeling, clustering statistics, label propagation, and forest-fire
evolution. This module implements them the way a column store does:
vector-at-a-time loops over the sorted, compressed ``sp_edge`` table,
with per-vertex outbound ranges located by binary search.

Each procedure returns its result plus a :class:`ProcedureStats`
work profile (random lookups + edge endpoints visited) that the
platform driver converts into cost-meter charges.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.algorithms import evo as evo_ref
from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.lcc import lcc_value
from repro.algorithms.sssp import UNREACHABLE_DISTANCE
from repro.platforms.columnar.table import ColumnTable

__all__ = [
    "ProcedureStats",
    "bfs_distances",
    "connected_components",
    "clustering_statistics",
    "label_propagation",
    "forest_fire",
    "pagerank",
    "sssp_distances",
    "local_clustering",
]


@dataclass
class ProcedureStats:
    """Work counters of one stored-procedure execution."""

    random_lookups: int = 0
    endpoints_visited: int = 0

    def merge(self, other: "ProcedureStats") -> None:
        """Accumulate another procedure's counters."""
        self.random_lookups += other.random_lookups
        self.endpoints_visited += other.endpoints_visited


class _EdgeReader:
    """Vectored outbound-edge access over the sorted edge table."""

    def __init__(self, table: ColumnTable, stats: ProcedureStats):
        self.table = table
        self.stats = stats
        self._keys = table.column("spe_from").to_numpy()
        self._values = table.column("spe_to").to_numpy()
        self._weights = (
            table.column("spe_weight").to_numpy()
            if "spe_weight" in table.columns
            else None
        )

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """The (sorted) targets of a vertex's outbound edges."""
        left = int(np.searchsorted(self._keys, vertex, side="left"))
        right = int(np.searchsorted(self._keys, vertex, side="right"))
        self.stats.random_lookups += 1
        self.stats.endpoints_visited += right - left
        return self._values[left:right]

    def weighted_out_neighbors(
        self, vertex: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of a vertex's outbound edges.

        One binary search locates the row range shared by all aligned
        columns; both the target and the weight column are then read
        over that span, doubling the endpoints scanned.
        """
        if self._weights is None:
            raise ValueError(
                f"table {self.table.name!r} has no spe_weight column"
            )
        left = int(np.searchsorted(self._keys, vertex, side="left"))
        right = int(np.searchsorted(self._keys, vertex, side="right"))
        self.stats.random_lookups += 1
        self.stats.endpoints_visited += 2 * (right - left)
        return self._values[left:right], self._weights[left:right]


def bfs_distances(
    table: ColumnTable, vertices: list[int], start: int
) -> tuple[dict[int, int], ProcedureStats]:
    """Per-vertex hop distance via frontier-vector expansion."""
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    distances = {vertex: UNREACHABLE for vertex in vertices}
    distances[start] = 0
    frontier = np.array([start], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        gathered = [reader.out_neighbors(int(v)) for v in frontier.tolist()]
        gathered = [g for g in gathered if g.size]
        if not gathered:
            break
        targets = np.unique(np.concatenate(gathered))
        fresh = [
            int(t) for t in targets.tolist() if distances[t] == UNREACHABLE
        ]
        for vertex in fresh:
            distances[vertex] = depth
        frontier = np.array(fresh, dtype=np.int64)
    return distances, stats


def connected_components(
    table: ColumnTable, vertices: list[int]
) -> tuple[dict[int, int], ProcedureStats]:
    """Component labels: one transitive closure per new component.

    Vertices are scanned ascending, so each closure's seed is its
    component's minimum id — the benchmark's labeling convention.
    """
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    labels: dict[int, int] = {}
    for vertex in sorted(vertices):
        if vertex in labels:
            continue
        labels[vertex] = vertex
        frontier = np.array([vertex], dtype=np.int64)
        while frontier.size:
            gathered = [reader.out_neighbors(int(v)) for v in frontier.tolist()]
            gathered = [g for g in gathered if g.size]
            if not gathered:
                break
            targets = np.unique(np.concatenate(gathered))
            fresh = [int(t) for t in targets.tolist() if t not in labels]
            for target in fresh:
                labels[target] = vertex
            frontier = np.array(fresh, dtype=np.int64)
    return labels, stats


def clustering_statistics(
    table: ColumnTable, vertices: list[int]
) -> tuple[tuple[int, int, float], ProcedureStats]:
    """(vertices, edges, mean local clustering) via sorted-range merges.

    Neighbor lists come out of the sorted edge table already ordered,
    so counting the links among a vertex's neighbors is a sorted-set
    intersection per neighbor — the access pattern a column store is
    good at.
    """
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    neighbor_cache = {
        vertex: reader.out_neighbors(vertex) for vertex in vertices
    }
    clustering_sum = 0.0
    total_arcs = 0
    for vertex in vertices:
        neighbors = neighbor_cache[vertex]
        degree = int(neighbors.size)
        total_arcs += degree
        if degree < 2:
            continue
        links_twice = 0
        for neighbor in neighbors.tolist():
            other = neighbor_cache[int(neighbor)]
            stats.endpoints_visited += int(other.size)
            links_twice += int(
                np.intersect1d(neighbors, other, assume_unique=True).size
            )
        clustering_sum += links_twice / (degree * (degree - 1))
    mean = clustering_sum / len(vertices) if vertices else 0.0
    return (len(vertices), total_arcs // 2, mean), stats


def label_propagation(
    table: ColumnTable,
    vertices: list[int],
    max_iterations: int,
    hop_attenuation: float,
    node_preference: float,
) -> tuple[dict[int, int], ProcedureStats]:
    """CD: synchronous Leung et al. update over table-read adjacency."""
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    adjacency = {vertex: reader.out_neighbors(vertex).tolist() for vertex in vertices}
    degrees = {vertex: len(adj) for vertex, adj in adjacency.items()}
    labels = {vertex: vertex for vertex in vertices}
    scores = {vertex: 1.0 for vertex in vertices}
    for _iteration in range(max_iterations):
        new_labels: dict[int, int] = {}
        new_scores: dict[int, float] = {}
        changes = 0
        for vertex in vertices:
            neighbors = adjacency[vertex]
            stats.endpoints_visited += len(neighbors)
            if not neighbors:
                new_labels[vertex] = labels[vertex]
                new_scores[vertex] = scores[vertex]
                continue
            weight_by_label: dict[int, float] = {}
            best_score_by_label: dict[int, float] = {}
            for neighbor in neighbors:
                label = labels[neighbor]
                vote = scores[neighbor] * degrees[neighbor] ** node_preference
                weight_by_label[label] = weight_by_label.get(label, 0.0) + vote
                best = best_score_by_label.get(label, float("-inf"))
                if scores[neighbor] > best:
                    best_score_by_label[label] = scores[neighbor]
            best_label = min(
                weight_by_label, key=lambda lbl: (-weight_by_label[lbl], lbl)
            )
            if best_label == labels[vertex]:
                new_labels[vertex] = labels[vertex]
                new_scores[vertex] = scores[vertex]
            else:
                new_labels[vertex] = best_label
                new_scores[vertex] = best_score_by_label[best_label] - hop_attenuation
                changes += 1
        labels, scores = new_labels, new_scores
        if changes == 0:
            break
    return labels, stats


def pagerank(
    table: ColumnTable, vertices: list[int], damping: float, iterations: int
) -> tuple[dict[int, float], ProcedureStats]:
    """PR: fixed damped-update rounds over cached neighbor vectors.

    The adjacency is read from the table once (charged per span);
    each round then folds every vertex's neighbors' shares — the
    per-round scan an embedded SQL procedure actually does.
    """
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    neighbor_cache = {
        vertex: reader.out_neighbors(vertex) for vertex in vertices
    }
    n = len(vertices)
    if n == 0:
        return {}, stats
    base = (1.0 - damping) / n
    ranks = {vertex: 1.0 / n for vertex in vertices}
    for _iteration in range(iterations):
        shares = {
            vertex: ranks[vertex] / int(neighbor_cache[vertex].size)
            for vertex in vertices
            if neighbor_cache[vertex].size
        }
        new_ranks: dict[int, float] = {}
        for vertex in vertices:
            neighbors = neighbor_cache[vertex]
            stats.endpoints_visited += int(neighbors.size)
            total = 0.0
            for neighbor in neighbors.tolist():
                total += shares[neighbor]
            new_ranks[vertex] = base + damping * total
        ranks = new_ranks
    return ranks, stats


def sssp_distances(
    table: ColumnTable, vertices: list[int], source: int
) -> tuple[dict[int, float], ProcedureStats]:
    """Weighted SSSP: Dijkstra over the aligned weight column.

    Every expansion is one range lookup reading both the target and
    weight spans — the column-store analogue of chasing a property
    chain per relationship.
    """
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    distances = {vertex: UNREACHABLE_DISTANCE for vertex in vertices}
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if dist > distances[vertex]:
            continue  # stale queue entry
        targets, weights = reader.weighted_out_neighbors(vertex)
        for neighbor, weight in zip(targets.tolist(), weights.tolist()):
            candidate = dist + weight
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances, stats


def local_clustering(
    table: ColumnTable, vertices: list[int]
) -> tuple[dict[int, float], ProcedureStats]:
    """Per-vertex LCC via sorted-range intersections.

    Same access pattern as :func:`clustering_statistics`, but emitting
    the coefficient per vertex instead of the mean.
    """
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    neighbor_cache = {
        vertex: reader.out_neighbors(vertex) for vertex in vertices
    }
    out: dict[int, float] = {}
    for vertex in vertices:
        neighbors = neighbor_cache[vertex]
        degree = int(neighbors.size)
        if degree < 2:
            out[vertex] = 0.0
            continue
        links_twice = 0
        for neighbor in neighbors.tolist():
            other = neighbor_cache[int(neighbor)]
            stats.endpoints_visited += int(other.size)
            links_twice += int(
                np.intersect1d(neighbors, other, assume_unique=True).size
            )
        out[vertex] = lcc_value(links_twice // 2, degree)
    return out, stats


def forest_fire(
    table: ColumnTable,
    vertices: list[int],
    num_new_vertices: int,
    p_forward: float,
    max_hops: int,
    seed: int,
) -> tuple[dict[int, list[int]], ProcedureStats]:
    """EVO: per-arrival fires over table-read adjacency."""
    stats = ProcedureStats()
    reader = _EdgeReader(table, stats)
    adjacency = {
        vertex: reader.out_neighbors(vertex).tolist() for vertex in vertices
    }
    existing = sorted(adjacency)
    next_id = existing[-1] + 1 if existing else 0
    links: dict[int, list[int]] = {}
    for arrival_index in range(num_new_vertices):
        arrival = next_id + arrival_index
        links[arrival] = evo_ref.single_fire(
            adjacency, existing, arrival, p_forward, max_hops, seed
        )
        stats.endpoints_visited += sum(
            len(adjacency[burned]) for burned in links[arrival]
        )
    return links, stats
