"""A small SQL dialect covering the paper's Virtuoso experiment.

The Section 3.4 query, verbatim from the paper::

    select count (*) from (select spe_to from
    (select transitive t_in (1) t_out (2) t_distinct
    spe_from, spe_to from sp_edge) derived_table_1
    where spe_from = 420) derived_table_2;

:class:`VirtuosoEngine` parses and executes that shape — a
``count(*)`` over a projection of a ``transitive`` derived table with
a start-binding predicate — plus the ordinary forms needed around it
(``select count(*) from t``, ``select col from t where key = n``,
``select col1, col2 from t limit n``).

The grammar is deliberately small: it is the paper's SQL extension,
not a general database. Executed transitive queries return the full
:class:`~repro.platforms.columnar.transitive.TransitiveResult`
profile alongside the row count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.platforms.columnar.table import ColumnTable
from repro.platforms.columnar.transitive import TransitiveResult, transitive_closure

__all__ = ["QueryResult", "VirtuosoEngine", "SQLSyntaxError"]


class SQLSyntaxError(ValueError):
    """The statement does not match the supported grammar."""


@dataclass
class QueryResult:
    """Rows plus (for transitive queries) the execution profile."""

    columns: list[str]
    rows: list[tuple]
    transitive: TransitiveResult | None = None


_TOKEN = re.compile(r"\s*(\(|\)|,|;|=|\*|[A-Za-z_][A-Za-z_0-9]*|\d+)")


def _tokenize(sql: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(sql):
        match = _TOKEN.match(sql, position)
        if match is None:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise SQLSyntaxError(f"cannot tokenize near {remainder[:20]!r}")
        tokens.append(match.group(1).lower())
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        """The next token without consuming it (None at end)."""
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self, expected: str | None = None) -> str:
        """Consume and return the next token, optionally asserting it."""
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        if expected is not None and token != expected:
            raise SQLSyntaxError(f"expected {expected!r}, got {token!r}")
        self.position += 1
        return token

    def take_identifier(self) -> str:
        """Consume an identifier token."""
        token = self.take()
        if not re.fullmatch(r"[a-z_][a-z_0-9]*", token):
            raise SQLSyntaxError(f"expected identifier, got {token!r}")
        return token

    def take_int(self) -> int:
        """Consume an integer literal."""
        token = self.take()
        if not token.isdigit():
            raise SQLSyntaxError(f"expected integer, got {token!r}")
        return int(token)

    # -- grammar ------------------------------------------------------------

    def parse_statement(self) -> dict:
        """Parse one full statement (select, optional semicolon)."""
        select = self.parse_select()
        if self.peek() == ";":
            self.take(";")
        if self.peek() is not None:
            raise SQLSyntaxError(f"trailing tokens: {self.tokens[self.position:]}")
        return select

    def parse_select(self) -> dict:
        """Parse a select clause (count, columns, or transitive)."""
        self.take("select")
        if self.peek() == "count":
            self.take("count")
            self.take("(")
            self.take("*")
            self.take(")")
            projection: dict = {"kind": "count"}
        elif self.peek() == "transitive":
            return self.parse_transitive_body()
        else:
            columns = [self.take_identifier()]
            while self.peek() == ",":
                self.take(",")
                columns.append(self.take_identifier())
            projection = {"kind": "columns", "columns": columns}
        self.take("from")
        source = self.parse_source()
        where = self.parse_optional_where()
        limit = self.parse_optional_limit()
        return {
            "kind": "select",
            "projection": projection,
            "source": source,
            "where": where,
            "limit": limit,
        }

    def parse_transitive_body(self) -> dict:
        """``transitive t_in (1) t_out (2) t_distinct col1, col2 from t``."""
        self.take("transitive")
        self.take("t_in")
        self.take("(")
        t_in = self.take_int()
        self.take(")")
        self.take("t_out")
        self.take("(")
        t_out = self.take_int()
        self.take(")")
        distinct = False
        if self.peek() == "t_distinct":
            self.take("t_distinct")
            distinct = True
        columns = [self.take_identifier()]
        self.take(",")
        columns.append(self.take_identifier())
        self.take("from")
        table = self.take_identifier()
        return {
            "kind": "transitive",
            "t_in": t_in,
            "t_out": t_out,
            "distinct": distinct,
            "columns": columns,
            "table": table,
        }

    def parse_source(self) -> dict:
        """Parse a FROM source: table name or parenthesized subquery."""
        if self.peek() == "(":
            self.take("(")
            inner = self.parse_select()
            self.take(")")
            alias = None
            if self.peek() not in (None, "where", "limit", ")", ";"):
                alias = self.take_identifier()
            return {"kind": "subquery", "query": inner, "alias": alias}
        table = self.take_identifier()
        return {"kind": "table", "table": table}

    def parse_optional_where(self) -> dict | None:
        """Parse ``where <col> = <int>`` if present."""
        if self.peek() != "where":
            return None
        self.take("where")
        column = self.take_identifier()
        self.take("=")
        value = self.take_int()
        return {"column": column, "value": value}

    def parse_optional_limit(self) -> int | None:
        """Parse ``limit <n>`` if present."""
        if self.peek() != "limit":
            return None
        self.take("limit")
        return self.take_int()


class VirtuosoEngine:
    """The column-store query engine: tables + SQL front end."""

    def __init__(self, threads: int = 24, cycles_per_second: float = 2.3e9):
        self.threads = threads
        self.cycles_per_second = cycles_per_second
        self.tables: dict[str, ColumnTable] = {}

    # -- DDL/loading ------------------------------------------------------

    def create_edge_table(self, name: str, edges) -> ColumnTable:
        """Load a directed arc list as a sorted, compressed edge table."""
        table = ColumnTable.edge_table(edges, name=name)
        self.tables[name] = table
        return table

    def table(self, name: str) -> ColumnTable:
        """Look up a loaded table by name."""
        if name not in self.tables:
            raise SQLSyntaxError(f"no such table: {name}")
        return self.tables[name]

    # -- queries -------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse and run one statement."""
        ast = _Parser(_tokenize(sql)).parse_statement()
        return self._run_select(ast)

    def _run_select(self, ast: dict) -> QueryResult:
        if ast["kind"] == "transitive":
            raise SQLSyntaxError(
                "a transitive derived table needs an enclosing select "
                "with a start binding (where <input_col> = <value>)"
            )
        source = ast["source"]

        # Transitive derived table one level down: the paper's shape.
        if (
            source["kind"] == "subquery"
            and source["query"]["kind"] == "transitive"
        ):
            return self._run_transitive(ast, source["query"])

        if source["kind"] == "subquery":
            inner = self._run_select(source["query"])
            return self._project(ast, inner.rows, inner.columns, inner.transitive)

        table = self.table(source["table"])
        columns = list(table.columns)
        data = {name: table.column(name).to_numpy() for name in columns}
        rows = list(zip(*(data[name] for name in columns)))
        rows = [tuple(int(v) for v in row) for row in rows]
        if ast["where"] is not None:
            where = ast["where"]
            if where["column"] not in columns:
                raise SQLSyntaxError(f"unknown column {where['column']!r}")
            index = columns.index(where["column"])
            rows = [row for row in rows if row[index] == where["value"]]
        return self._project(ast, rows, columns, None)

    def _run_transitive(self, outer: dict, spec: dict) -> QueryResult:
        where = outer["where"]
        if where is None:
            raise SQLSyntaxError("transitive query requires a start binding")
        input_column = spec["columns"][spec["t_in"] - 1]
        output_column = spec["columns"][spec["t_out"] - 1]
        if where["column"] != input_column:
            raise SQLSyntaxError(
                f"start binding must be on the input column {input_column!r}"
            )
        result = transitive_closure(
            self.table(spec["table"]),
            start=where["value"],
            input_column=input_column,
            output_column=output_column,
            distinct=spec["distinct"],
            threads=self.threads,
            cycles_per_second=self.cycles_per_second,
        )
        projection = outer["projection"]
        if projection["kind"] == "count":
            rows = [(result.count,)]
            return QueryResult(columns=["count"], rows=rows, transitive=result)
        # Projected reachable values are not materialized by the
        # counting executor; only count(*) is supported on top,
        # directly or through one projection level.
        return QueryResult(
            columns=[output_column],
            rows=[("<transitive set>",)] * 0,
            transitive=result,
        )

    def _project(
        self,
        ast: dict,
        rows: list[tuple],
        columns: list[str],
        transitive: TransitiveResult | None,
    ) -> QueryResult:
        projection = ast["projection"]
        if projection["kind"] == "count":
            if transitive is not None and not rows:
                # count(*) over a projected transitive derived table.
                return QueryResult(
                    columns=["count"],
                    rows=[(transitive.count,)],
                    transitive=transitive,
                )
            return QueryResult(columns=["count"], rows=[(len(rows),)],
                               transitive=transitive)
        selected = projection["columns"]
        missing = [c for c in selected if c not in columns]
        if missing:
            raise SQLSyntaxError(f"unknown columns: {missing}")
        indexes = [columns.index(c) for c in selected]
        projected = [tuple(row[i] for i in indexes) for row in rows]
        if ast["limit"] is not None:
            projected = projected[: ast["limit"]]
        return QueryResult(columns=selected, rows=projected, transitive=transitive)
