"""Compressed columns with vector-at-a-time access.

Implements the column-store storage layer: integer columns sealed
into one of several compression schemes (chosen per column by a
simple cost rule, the way column stores pick per-page encodings):

* ``delta`` — ascending or near-sorted columns store bit-packed
  deltas (the ``spe_from`` key column compresses this way);
* ``rle`` — long runs collapse to (value, run-length) pairs;
* ``dict`` — few distinct values store dictionary codes;
* ``packed`` — the fallback: bit-packing to the minimum width.

Reads are vectored: :meth:`CompressedColumn.vector` materializes one
``VECTOR_SIZE`` slice, and the per-vector decompression cost in
simple operations is exposed via :meth:`decompress_cost` so the query
executor can charge the cost meter ("column store random access and
decompression" is the dominant term of the paper's CPU profile).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CompressedColumn", "FloatColumn", "VECTOR_SIZE"]

#: Values per vector, as in Virtuoso's vectored execution.
VECTOR_SIZE = 1024


def _bits_needed(max_value: int) -> int:
    if max_value <= 0:
        return 1
    return int(max_value).bit_length()


class CompressedColumn:
    """An immutable compressed integer column."""

    def __init__(self, values, name: str = "col"):
        data = np.asarray(values, dtype=np.int64)
        if data.ndim != 1:
            raise ValueError("a column is one-dimensional")
        if data.size and data.min() < 0:
            raise ValueError("only non-negative integers are supported")
        self.name = name
        self._length = int(data.size)
        self.scheme, self._payload, self.compressed_bytes = self._seal(data)
        self._cache: np.ndarray | None = None

    # -- sealing -----------------------------------------------------------

    @staticmethod
    def _seal(data: np.ndarray):
        """Choose the cheapest encoding for this column."""
        n = data.size
        if n == 0:
            return "packed", (np.zeros(0, dtype=np.int64), 1), 0.0
        plain_bits = 64 * n

        candidates: list[tuple[float, str, object]] = []

        # Bit-packing to minimum width (always applicable).
        width = _bits_needed(int(data.max()))
        candidates.append((width * n / 8.0, "packed", (data.copy(), width)))

        # Delta encoding for non-decreasing columns.
        if n > 1 and bool(np.all(np.diff(data) >= 0)):
            deltas = np.diff(data)
            delta_width = _bits_needed(int(deltas.max()) if deltas.size else 0)
            cost = 8.0 + delta_width * (n - 1) / 8.0
            candidates.append((cost, "delta", (int(data[0]), deltas, delta_width)))

        # Run-length encoding.
        change = np.flatnonzero(np.diff(data)) + 1
        starts = np.concatenate([[0], change])
        run_values = data[starts]
        run_lengths = np.diff(np.concatenate([starts, [n]]))
        if len(run_values) < n // 2:
            cost = len(run_values) * 12.0
            candidates.append((cost, "rle", (run_values, run_lengths)))

        # Dictionary encoding.
        distinct = np.unique(data)
        if len(distinct) <= max(2, n // 4):
            code_width = _bits_needed(len(distinct) - 1)
            codes = np.searchsorted(distinct, data)
            cost = len(distinct) * 8.0 + code_width * n / 8.0
            candidates.append((cost, "dict", (distinct, codes)))

        cost, scheme, payload = min(candidates, key=lambda c: c[0])
        return scheme, payload, min(cost, plain_bits / 8.0)

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def num_vectors(self) -> int:
        """Number of vectors covering the column."""
        return (self._length + VECTOR_SIZE - 1) // VECTOR_SIZE

    def decompress_cost(self, count: int = VECTOR_SIZE) -> float:
        """Simple-operation cost of decompressing ``count`` values."""
        per_value = {"packed": 1.0, "delta": 1.5, "rle": 0.5, "dict": 1.2}
        return per_value[self.scheme] * count

    def to_numpy(self) -> np.ndarray:
        """Decompress the whole column (cached after the first call).

        The cache stands in for a decompressed-page buffer pool; the
        *cost model* still charges decompression per access through
        :meth:`decompress_cost`, so simulated time is unaffected.
        """
        if self._cache is None:
            self._cache = self._decompress()
        return self._cache

    def _decompress(self) -> np.ndarray:
        if self.scheme == "packed":
            values, _width = self._payload
            return values.copy()
        if self.scheme == "delta":
            first, deltas, _width = self._payload
            return np.concatenate([[first], first + np.cumsum(deltas)]).astype(np.int64)
        if self.scheme == "rle":
            run_values, run_lengths = self._payload
            return np.repeat(run_values, run_lengths)
        if self.scheme == "dict":
            distinct, codes = self._payload
            return distinct[codes]
        raise AssertionError(f"unknown scheme {self.scheme}")

    def vector(self, index: int) -> np.ndarray:
        """The ``index``-th vector of up to ``VECTOR_SIZE`` values."""
        if not 0 <= index < max(self.num_vectors, 1):
            raise IndexError(f"vector {index} out of range")
        start = index * VECTOR_SIZE
        return self.to_numpy()[start : start + VECTOR_SIZE]

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Decompress an arbitrary range (a random access + scan)."""
        if start < 0 or stop > self._length or start > stop:
            raise IndexError(f"range [{start}, {stop}) out of bounds")
        return self.to_numpy()[start:stop]


class FloatColumn:
    """An immutable plain float64 column (edge-weight properties).

    Continuous measure columns gain nothing from delta/RLE/dictionary
    encoding, so column stores keep them bit-packed plain: 8 bytes per
    value, unit decompression cost per value read.
    """

    scheme = "plain"

    def __init__(self, values, name: str = "col"):
        data = np.asarray(values, dtype=np.float64)
        if data.ndim != 1:
            raise ValueError("a column is one-dimensional")
        self.name = name
        self._data = data.copy()
        self.compressed_bytes = float(8 * data.size)

    def __len__(self) -> int:
        return int(self._data.size)

    @property
    def num_vectors(self) -> int:
        """Number of vectors covering the column."""
        return (len(self) + VECTOR_SIZE - 1) // VECTOR_SIZE

    def decompress_cost(self, count: int = VECTOR_SIZE) -> float:
        """Simple-operation cost of reading ``count`` values."""
        return float(count)

    def to_numpy(self) -> np.ndarray:
        """The column's values (already materialized)."""
        return self._data

    def slice(self, start: int, stop: int) -> np.ndarray:
        """An arbitrary range (a random access + scan)."""
        if start < 0 or stop > len(self) or start > stop:
            raise IndexError(f"range [{start}, {stop}) out of bounds")
        return self._data[start:stop]
