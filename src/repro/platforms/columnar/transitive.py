"""The vectored transitive-traversal executor (Section 3.4).

Evaluates Virtuoso's ``transitive`` derived table for the paper's BFS
query: starting from a binding of the input column, each iteration
recycles the output-column values as new input bindings
("each value of the output column spe_to [is] recycled as a binding
for spe_from"), with ``t_distinct`` deduplication in a partitioned
hash table and an exchange operator between edge lookup and border
recording.

The executor counts exactly what the paper profiles:

* **random lookups** — binary searches for a vertex's outbound edges;
* **edge endpoints visited** — ``spe_to`` values scanned;
* per-operator CPU cycles — border hash table, exchange operator,
  column-store random access + decompression — reported as the CPU%
  breakdown (the paper: 33% hash, 10% exchange, 57% column);
* elapsed time under intra-query parallelism (per-partition threads),
  giving the MTEPS rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platforms.columnar.table import ColumnTable, PartitionedHashTable

__all__ = ["TransitiveResult", "transitive_closure", "OperatorProfile"]

#: Cycles charged per value handled by each operator. The ratios are
#: calibrated to the paper's CPU profile: per visited edge endpoint
#: the column store spends ~57% of cycles, the border hash ~33%, and
#: the exchange ~10%.
CYCLES_COLUMN_PER_ENDPOINT = 40.0
CYCLES_HASH_PER_ENDPOINT = 23.0
CYCLES_EXCHANGE_PER_ENDPOINT = 7.0
#: Extra column cycles per random lookup (binary search + page touch).
CYCLES_COLUMN_PER_LOOKUP = 120.0


@dataclass
class OperatorProfile:
    """Cycle counts per operator category."""

    hash_cycles: float = 0.0
    exchange_cycles: float = 0.0
    column_cycles: float = 0.0

    @property
    def total(self) -> float:
        """All cycles across operators."""
        return self.hash_cycles + self.exchange_cycles + self.column_cycles

    def shares(self) -> dict[str, float]:
        """Fraction of cycles per operator (the paper's CPU profile)."""
        total = self.total
        if total == 0:
            return {"hash": 0.0, "exchange": 0.0, "column": 0.0}
        return {
            "hash": self.hash_cycles / total,
            "exchange": self.exchange_cycles / total,
            "column": self.column_cycles / total,
        }


@dataclass
class TransitiveResult:
    """Everything the Section 3.4 experiment reports."""

    count: int
    random_lookups: int
    endpoints_visited: int
    iterations: int
    profile: OperatorProfile = field(default_factory=OperatorProfile)
    elapsed_seconds: float = 0.0
    threads: int = 1
    #: Parallel efficiency in [0, 1]: mean over max per-thread cycles.
    cpu_utilization: float = 0.0

    @property
    def cpu_percent(self) -> float:
        """Paper-style CPU%: 100% per fully busy thread.

        The paper reports "1930% (out of 2400% max)" for 24 threads.
        """
        return self.cpu_utilization * self.threads * 100.0

    @property
    def mteps(self) -> float:
        """Millions of traversed edges per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.endpoints_visited / self.elapsed_seconds / 1e6


def transitive_closure(
    table: ColumnTable,
    start: int,
    input_column: str = "spe_from",
    output_column: str = "spe_to",
    distinct: bool = True,
    threads: int = 24,
    cycles_per_second: float = 2.3e9,
) -> TransitiveResult:
    """Evaluate the transitive derived table from ``start``.

    Returns the distinct set size of reached output values along with
    the full execution profile. ``threads`` and ``cycles_per_second``
    describe the machine (the paper's: 12-core / 24-thread dual Xeon
    E5-2630 at 2.3 GHz).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    key_column = table.column(input_column)
    value_column = table.column(output_column)

    border = PartitionedHashTable(threads)
    profile = OperatorProfile()
    per_partition_cycles = [0.0] * threads
    random_lookups = 0
    endpoints_visited = 0
    reached: set[int] = set()

    frontier = np.array([start], dtype=np.int64)
    iterations = 0
    while frontier.size:
        iterations += 1
        # --- edge lookup: outbound edges of each frontier vertex --------
        gathered: list[np.ndarray] = []
        for vertex in frontier.tolist():
            left, right = table.key_range(input_column, vertex)
            random_lookups += 1
            width = right - left
            lookup_cycles = (
                CYCLES_COLUMN_PER_LOOKUP
                + CYCLES_COLUMN_PER_ENDPOINT * width
                + key_column.decompress_cost(1)
                + value_column.decompress_cost(max(width, 1))
            )
            profile.column_cycles += lookup_cycles
            partition = border.partition_of(vertex)
            per_partition_cycles[partition] += lookup_cycles
            if width:
                gathered.append(value_column.slice(left, right))
                endpoints_visited += width
        if not gathered:
            break
        targets = np.concatenate(gathered)

        # --- exchange: split endpoint vector by border partition ---------
        exchange_cycles = CYCLES_EXCHANGE_PER_ENDPOINT * targets.size
        profile.exchange_cycles += exchange_cycles
        for partition in range(threads):
            per_partition_cycles[partition] += exchange_cycles / threads
        split = border.split(targets)

        # --- border update: probe/insert per partition ---------------------
        fresh_parts: list[np.ndarray] = []
        for partition, values in enumerate(split):
            if not values.size:
                continue
            hash_cycles = CYCLES_HASH_PER_ENDPOINT * values.size
            profile.hash_cycles += hash_cycles
            per_partition_cycles[partition] += hash_cycles
            if distinct:
                fresh = border.insert_new(partition, values)
            else:
                fresh = values
            fresh_parts.append(fresh)
        frontier = (
            np.sort(np.concatenate(fresh_parts))
            if fresh_parts
            else np.zeros(0, dtype=np.int64)
        )
        reached.update(frontier.tolist())

    # Elapsed time: iterations are barriered internally, so each
    # partition thread's cycles bound the makespan.
    busiest = max(per_partition_cycles)
    elapsed = busiest / cycles_per_second if busiest else 0.0
    mean = sum(per_partition_cycles) / threads
    utilization = (mean / busiest) if busiest else 0.0
    return TransitiveResult(
        count=len(reached),
        random_lookups=random_lookups,
        endpoints_visited=endpoints_visited,
        iterations=iterations,
        profile=profile,
        elapsed_seconds=elapsed,
        threads=threads,
        cpu_utilization=utilization,
    )
