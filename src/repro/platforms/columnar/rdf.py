"""RDF triple store and SPARQL subset over the column store.

The paper: "Furthermore, we plan to support databases for RDF semantic
web data and are working on implementing support for OpenLink
Virtuoso, a popular RDF database." This module implements that plan's
data-model side:

* an :class:`RDFStore` — dictionary-encoded terms with three sorted,
  compressed triple indexes (SPO, POS, OSP), the standard column-store
  RDF layout;
* a small SPARQL subset: basic graph patterns with joins on shared
  variables, ``COUNT``, and the ``+`` transitive property path (which
  maps onto the same vectored traversal as the paper's SQL
  ``transitive`` extension);
* :func:`graph_to_triples` — the person-knows-person projection of a
  benchmark graph as ``foaf:knows`` triples.

Supported query shapes::

    SELECT ?x WHERE { <person:4> <knows> ?x . }
    SELECT ?x ?y WHERE { <person:4> <knows> ?x . ?x <knows> ?y . }
    SELECT (COUNT(*) AS ?n) WHERE { ?s <knows> ?o . }
    SELECT ?x WHERE { <person:4> <knows>+ ?x . }
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.platforms.columnar.columns import CompressedColumn

__all__ = ["RDFStore", "SparqlError", "graph_to_triples"]

KNOWS = "knows"


class SparqlError(ValueError):
    """The query does not match the supported SPARQL subset."""


def graph_to_triples(graph: Graph) -> list[tuple[str, str, str]]:
    """Person-knows-person triples (both directions, as RDF does)."""
    triples = []
    for source, target in graph.to_undirected().iter_edges():
        triples.append((f"person:{source}", KNOWS, f"person:{target}"))
        triples.append((f"person:{target}", KNOWS, f"person:{source}"))
    return triples


@dataclass(frozen=True)
class _TriplePattern:
    """One parsed triple pattern.

    Terms are tagged tuples: ``("var", name)`` or ``("iri", value)``.
    """

    subject: tuple[str, str]
    predicate: tuple[str, str]
    obj: tuple[str, str]
    transitive: bool = False

    def variables(self) -> set[str]:
        """Variable names appearing in this pattern."""
        return {
            value
            for kind, value in (self.subject, self.predicate, self.obj)
            if kind == "var"
        }


class _Index:
    """One sorted triple ordering as three compressed columns."""

    def __init__(self, triples: np.ndarray, order: tuple[int, int, int]):
        self.order = order
        if len(triples):
            keys = [triples[:, order[2]], triples[:, order[1]], triples[:, order[0]]]
            permutation = np.lexsort(keys)
            data = triples[permutation]
        else:
            data = triples.reshape(0, 3)
        self.columns = [
            CompressedColumn(data[:, position], name=f"c{position}")
            for position in order
        ]
        self._first = self.columns[0].to_numpy()
        self._second = self.columns[1].to_numpy()
        self._third = self.columns[2].to_numpy()

    def scan(self, first: int | None, second: int | None):
        """Rows matching the bound prefix; yields (first, second, third)."""
        lo, hi = 0, len(self._first)
        if first is not None:
            lo = int(np.searchsorted(self._first, first, side="left"))
            hi = int(np.searchsorted(self._first, first, side="right"))
            if second is not None:
                seg = self._second[lo:hi]
                lo2 = int(np.searchsorted(seg, second, side="left"))
                hi2 = int(np.searchsorted(seg, second, side="right"))
                lo, hi = lo + lo2, lo + hi2
        elif second is not None:
            raise AssertionError("cannot bind the second key without the first")
        return zip(
            self._first[lo:hi].tolist(),
            self._second[lo:hi].tolist(),
            self._third[lo:hi].tolist(),
        )


class RDFStore:
    """Dictionary-encoded triple store with SPO/POS/OSP indexes."""

    def __init__(self, triples: list[tuple[str, str, str]]):
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        encoded = np.array(
            [
                [self._encode(s), self._encode(p), self._encode(o)]
                for s, p, o in sorted(set(triples))
            ],
            dtype=np.int64,
        ).reshape(-1, 3)
        self.num_triples = len(encoded)
        self._spo = _Index(encoded, (0, 1, 2))
        self._pos = _Index(encoded, (1, 2, 0))
        self._osp = _Index(encoded, (2, 0, 1))

    # -- dictionary -----------------------------------------------------

    def _encode(self, term: str) -> int:
        if term not in self._term_to_id:
            self._term_to_id[term] = len(self._id_to_term)
            self._id_to_term.append(term)
        return self._term_to_id[term]

    def term_id(self, term: str) -> int | None:
        """The dictionary id of a term, or ``None`` if absent."""
        return self._term_to_id.get(term)

    def term(self, term_id: int) -> str:
        """The term for a dictionary id."""
        return self._id_to_term[term_id]

    @property
    def compressed_bytes(self) -> float:
        """Compressed size of all three indexes."""
        return sum(
            column.compressed_bytes
            for index in (self._spo, self._pos, self._osp)
            for column in index.columns
        )

    # -- pattern matching --------------------------------------------------

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: str | None = None,
    ):
        """Triples matching the bound terms; yields (s, p, o) strings."""
        ids = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                term_id = self.term_id(term)
                if term_id is None:
                    return
                ids.append(term_id)
        s_id, p_id, o_id = ids
        if s_id is not None:
            rows = self._spo.scan(s_id, p_id)
            decode = lambda row: (row[0], row[1], row[2])  # noqa: E731
        elif p_id is not None:
            rows = self._pos.scan(p_id, o_id)
            decode = lambda row: (row[2], row[0], row[1])  # noqa: E731
        elif o_id is not None:
            rows = self._osp.scan(o_id, None)
            decode = lambda row: (row[1], row[2], row[0])  # noqa: E731
        else:
            rows = self._spo.scan(None, None)
            decode = lambda row: (row[0], row[1], row[2])  # noqa: E731
        for row in rows:
            s, p, o = decode(row)
            if o_id is not None and o != o_id:
                continue
            if p_id is not None and p != p_id:
                continue
            yield (self.term(s), self.term(p), self.term(o))

    def transitive_objects(self, subject: str, predicate: str) -> set[str]:
        """All terms reachable by one-or-more ``predicate`` steps.

        The SPARQL ``+`` property path — the RDF face of the paper's
        SQL ``transitive`` derived table.
        """
        start = self.term_id(subject)
        p_id = self.term_id(predicate)
        if start is None or p_id is None:
            return set()
        reached: set[int] = set()
        frontier = deque([start])
        visited = {start}
        while frontier:
            current = frontier.popleft()
            for _s, _p, o in self._spo.scan(current, p_id):
                reached.add(o)
                if o not in visited:
                    visited.add(o)
                    frontier.append(o)
        return {self.term(o) for o in reached}

    # -- SPARQL ---------------------------------------------------------------

    def query(self, sparql: str) -> list[dict[str, str]] | int:
        """Evaluate a query; rows as variable dicts, or an int for COUNT."""
        projection, count, patterns = _parse_sparql(sparql)
        bindings = self._evaluate_bgp(patterns)
        if count:
            return len(bindings)
        missing = [v for v in projection if any(v not in b for b in bindings)]
        if missing and bindings:
            raise SparqlError(f"unbound projected variables: {missing}")
        return [
            {variable: binding[variable] for variable in projection}
            for binding in bindings
        ]

    def _evaluate_bgp(self, patterns: list[_TriplePattern]) -> list[dict[str, str]]:
        bindings: list[dict[str, str]] = [{}]
        for pattern in patterns:
            bindings = [
                extended
                for binding in bindings
                for extended in self._extend(binding, pattern)
            ]
        return bindings

    def _extend(self, binding: dict[str, str], pattern: _TriplePattern):
        def resolve(term):
            kind, value = term
            if kind == "var":
                return binding.get(value)
            return value

        subject = resolve(pattern.subject)
        predicate = resolve(pattern.predicate)
        obj = resolve(pattern.obj)

        if pattern.transitive:
            if subject is None or predicate is None:
                raise SparqlError(
                    "transitive paths need a bound subject and predicate"
                )
            for target in sorted(self.transitive_objects(subject, predicate)):
                if obj is not None and target != obj:
                    continue
                extended = dict(binding)
                if pattern.obj[0] == "var":
                    extended[pattern.obj[1]] = target
                yield extended
            return

        for s, p, o in self.match(subject, predicate, obj):
            extended = dict(binding)
            for term, value in ((pattern.subject, s), (pattern.predicate, p),
                                (pattern.obj, o)):
                if term[0] == "var":
                    extended[term[1]] = value
            yield extended


_PREFIX = re.compile(
    r"^\s*select\s+(?P<proj>\(count\(\*\)\s+as\s+\?\w+\)|(?:\?\w+\s*)+)\s+"
    r"where\s*\{(?P<body>.*)\}\s*$",
    re.IGNORECASE | re.DOTALL,
)
_TERM = re.compile(r"<(?P<iri>[^>]+)>(?P<plus>\+?)|\?(?P<var>\w+)")


def _parse_sparql(sparql: str):
    """Parse the supported subset into (projection, count?, patterns)."""
    match = _PREFIX.match(sparql.strip())
    if match is None:
        raise SparqlError(f"unsupported query shape: {sparql.strip()[:60]!r}")
    projection_text = match.group("proj").strip()
    count = projection_text.lower().startswith("(count(*)")
    projection = [] if count else re.findall(r"\?(\w+)", projection_text)

    patterns: list[_TriplePattern] = []
    body = match.group("body").strip()
    for clause in filter(None, (part.strip() for part in body.split("."))):
        terms = []
        transitive = False
        for term_match in _TERM.finditer(clause):
            if term_match.group("iri") is not None:
                terms.append(("iri", term_match.group("iri")))
                if term_match.group("plus"):
                    transitive = True
            else:
                terms.append(("var", term_match.group("var")))
        if len(terms) != 3:
            raise SparqlError(f"expected a triple pattern, got {clause!r}")
        patterns.append(
            _TriplePattern(terms[0], terms[1], terms[2], transitive)
        )
    if not patterns:
        raise SparqlError("empty graph pattern")
    return projection, count, patterns
