"""Tables over compressed columns, plus the partitioned hash table.

:class:`ColumnTable` holds named compressed columns of equal length;
the edge table ``sp_edge(spe_from, spe_to)`` is stored sorted by
``spe_from`` so outbound-edge lookups are binary searches over the
delta-compressed key column.

:class:`PartitionedHashTable` is the paper's border structure: "The
state of the computation is kept in a partitioned hash table, with one
thread reading/writing each partition, with an exchange operator
between the lookup of outbound edges and the recording of the new
border." Probe/insert counts are kept per partition so the executor
can both charge CPU and report the per-partition balance.
"""

from __future__ import annotations

import numpy as np

from repro.platforms.columnar.columns import CompressedColumn, FloatColumn

__all__ = ["ColumnTable", "PartitionedHashTable"]

_KNUTH = 2654435761


class ColumnTable:
    """A named, immutable table of compressed columns."""

    def __init__(self, name: str, columns: dict[str, CompressedColumn]):
        lengths = {len(column) for column in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns of {name!r} differ in length: {lengths}")
        self.name = name
        self.columns = dict(columns)
        self.num_rows = lengths.pop() if lengths else 0

    @classmethod
    def edge_table(cls, edges, name: str = "sp_edge") -> "ColumnTable":
        """Build ``sp_edge`` sorted by source (directed arc list)."""
        arcs = sorted((int(s), int(t)) for s, t in edges)
        sources = np.array([a[0] for a in arcs], dtype=np.int64)
        targets = np.array([a[1] for a in arcs], dtype=np.int64)
        return cls(
            name,
            {
                "spe_from": CompressedColumn(sources, "spe_from"),
                "spe_to": CompressedColumn(targets, "spe_to"),
            },
        )

    @classmethod
    def weighted_edge_table(cls, edges, name: str = "sp_edge") -> "ColumnTable":
        """``sp_edge`` plus an aligned ``spe_weight`` property column.

        Arcs are sorted by (source, target) exactly as the unweighted
        table, so the plain float weight column shares the key column's
        row ranges: ``spe_weight[left:right]`` aligns with the
        ``spe_to`` span of the same lookup.
        """
        arcs = sorted((int(s), int(t), float(w)) for s, t, w in edges)
        sources = np.array([a[0] for a in arcs], dtype=np.int64)
        targets = np.array([a[1] for a in arcs], dtype=np.int64)
        weights = np.array([a[2] for a in arcs], dtype=np.float64)
        return cls(
            name,
            {
                "spe_from": CompressedColumn(sources, "spe_from"),
                "spe_to": CompressedColumn(targets, "spe_to"),
                "spe_weight": FloatColumn(weights, "spe_weight"),
            },
        )

    def column(self, name: str) -> CompressedColumn:
        """Look up a column by name."""
        if name not in self.columns:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return self.columns[name]

    @property
    def compressed_bytes(self) -> float:
        """Total compressed size of all columns."""
        return sum(column.compressed_bytes for column in self.columns.values())

    def key_range(self, key_column: str, key: int) -> tuple[int, int]:
        """Row range holding ``key`` in a sorted key column.

        This is the "random lookup" of the paper's profile: a binary
        search over the sorted, compressed key column.
        """
        keys = self.column(key_column).to_numpy()
        left = int(np.searchsorted(keys, key, side="left"))
        right = int(np.searchsorted(keys, key, side="right"))
        return left, right


class PartitionedHashTable:
    """Hash set partitioned across threads (the traversal border)."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions
        self._partitions: list[set[int]] = [set() for _ in range(num_partitions)]
        self.probes = [0] * num_partitions
        self.inserts = [0] * num_partitions

    def partition_of(self, value: int) -> int:
        """Partition owning a value (stable hash)."""
        return ((int(value) * _KNUTH) & 0xFFFFFFFF) % self.num_partitions

    def split(self, values: np.ndarray) -> list[np.ndarray]:
        """Exchange operator: split a vector into per-partition vectors."""
        parts = (values.astype(np.int64) * _KNUTH & 0xFFFFFFFF) % self.num_partitions
        return [values[parts == p] for p in range(self.num_partitions)]

    def insert_new(self, partition: int, values: np.ndarray) -> np.ndarray:
        """Probe + insert; returns the values not previously present."""
        table = self._partitions[partition]
        fresh = []
        for value in values.tolist():
            self.probes[partition] += 1
            if value not in table:
                table.add(value)
                self.inserts[partition] += 1
                fresh.append(value)
        return np.array(fresh, dtype=np.int64)

    def __contains__(self, value: int) -> bool:
        return int(value) in self._partitions[self.partition_of(value)]

    def __len__(self) -> int:
        return sum(len(partition) for partition in self._partitions)
