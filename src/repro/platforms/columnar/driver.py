"""Virtuoso platform driver: the full workload on the column store.

The paper announces Virtuoso support ("Furthermore, we plan to support
databases for RDF semantic web data and are working on implementing
support for OpenLink Virtuoso, a popular RDF database") and evaluates
its BFS in Section 3.4. This driver completes the integration: all
five Graphalytics algorithms run as vectored stored procedures over
the compressed, sorted ``sp_edge`` table, with intra-query parallelism
on the DBMS machine.

Cost accounting: random lookups (binary search + page touch) charge
random accesses; visited edge endpoints charge sequential decompress/
scan operations; the machine is a single multi-core node, so there is
no network and no barrier cost — but the *whole compressed table plus
the traversal state* must fit its memory.
"""

from __future__ import annotations

from repro.core import etl
from repro.core.cost import ClusterSpec, CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.algorithms.stats import GraphStats
from repro.graph.graph import Graph
from repro.platforms.columnar import procedures
from repro.platforms.columnar.table import ColumnTable

__all__ = ["VirtuosoPlatform", "paper_dbms_spec"]

#: Sequential ops charged per visited edge endpoint (decompression +
#: scan; the dominant term of the paper's CPU profile).
OPS_PER_ENDPOINT = 3.0
#: Random accesses charged per outbound-edge lookup.
ACCESSES_PER_LOOKUP = 2.0
#: Working memory per vertex of traversal state (border hash, labels).
STATE_BYTES_PER_VERTEX = 24.0


def paper_dbms_spec() -> ClusterSpec:
    """The paper's DBMS machine: 12-core/24-thread Xeon E5-2630, 2.3 GHz."""
    return ClusterSpec.from_profile("paper-dbms", name="dbms-24t")


class VirtuosoPlatform(Platform):
    """Column-store platform (OpenLink Virtuoso stand-in)."""

    name = "virtuoso"
    single_machine = True

    def __init__(self, cluster: ClusterSpec | None = None):
        super().__init__(cluster or paper_dbms_spec())
        if self.cluster.num_workers != 1:
            raise ValueError("the column store is a single-machine DBMS")

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        arcs = []
        if undirected.weights is not None:
            for source, target, weight in undirected.iter_weighted_edges():
                arcs.append((source, target, weight))
                arcs.append((target, source, weight))
            table = ColumnTable.weighted_edge_table(arcs, name="sp_edge")
            fields_per_arc = 3
        else:
            for source, target in undirected.iter_edges():
                arcs.append((source, target))
                arcs.append((target, source))
            table = ColumnTable.edge_table(arcs, name="sp_edge")
            fields_per_arc = 2
        vertices = [int(v) for v in undirected.vertices]
        storage = table.compressed_bytes + len(vertices) * STATE_BYTES_PER_VERTEX
        meter = CostMeter(self.cluster)
        meter.allocate_memory(0, storage)  # raises if the table cannot fit
        meter.release_memory(0, storage)
        # ETL: bulk load — read, sort by source key, compress columns.
        file_bytes = etl.edge_file_bytes(len(arcs))
        etl_time = (
            file_bytes / self.cluster.disk_bandwidth
            + etl.sort_seconds(len(arcs), self.cluster)
            + etl.parse_seconds(fields_per_arc * len(arcs), 2.0, self.cluster)
        )
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
            detail={"table": table, "vertices": vertices},
        )

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        table: ColumnTable = handle.detail["table"]
        vertices: list[int] = handle.detail["vertices"]
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        meter.allocate_memory(0, handle.storage_bytes)
        meter.charge_startup()
        meter.begin_round(algorithm.value.lower())
        try:
            output, stats = self._run_procedure(
                table, vertices, handle, algorithm, params
            )
            meter.charge_compute(0, stats.endpoints_visited * OPS_PER_ENDPOINT)
            meter.charge_random_access(
                0, stats.random_lookups * ACCESSES_PER_LOOKUP
            )
        finally:
            meter.end_round(active_vertices=len(vertices))
            meter.release_memory(0, handle.storage_bytes)
        return output, meter.profile

    def _run_procedure(self, table, vertices, handle, algorithm, params):
        if algorithm is Algorithm.BFS:
            start = params.resolve_bfs_source(handle.graph)
            return procedures.bfs_distances(table, vertices, start)
        if algorithm is Algorithm.CONN:
            return procedures.connected_components(table, vertices)
        if algorithm is Algorithm.STATS:
            (num_vertices, num_edges, mean), stats = (
                procedures.clustering_statistics(table, vertices)
            )
            output = GraphStats(
                num_vertices=num_vertices,
                num_edges=num_edges,
                mean_local_clustering=mean,
            )
            return output, stats
        if algorithm is Algorithm.CD:
            return procedures.label_propagation(
                table,
                vertices,
                params.cd_max_iterations,
                params.cd_hop_attenuation,
                params.cd_node_preference,
            )
        if algorithm is Algorithm.PR:
            return procedures.pagerank(
                table,
                vertices,
                params.pagerank_damping,
                params.pagerank_iterations,
            )
        if algorithm is Algorithm.SSSP:
            source = params.resolve_sssp_source(handle.graph)
            return procedures.sssp_distances(table, vertices, source)
        if algorithm is Algorithm.LCC:
            return procedures.local_clustering(table, vertices)
        if algorithm is Algorithm.EVO:
            return procedures.forest_fire(
                table,
                vertices,
                params.evo_new_vertices,
                params.evo_p_forward,
                params.evo_max_hops,
                params.evo_seed,
            )
        raise ValueError(f"unsupported algorithm {algorithm}")
