"""Virtuoso-style column store (the paper's Section 3.4 experiment).

"We use the OpenLink Virtuoso column store to experiment with
performance dynamics of BFS graph traversal in a DBMS. Virtuoso
features column-wise compression, vectored execution, and intra-query
parallelism with optimized partitioned aggregation. [...] Virtuoso
offers an SQL extension for transitive traversal."

The reproduction implements each of those features:

* :mod:`repro.platforms.columnar.columns` — compressed columns
  (delta/bit-packed, run-length, dictionary) with vector-at-a-time
  decompression;
* :mod:`repro.platforms.columnar.table` — tables over columns plus
  the partitioned hash table used for the traversal border;
* :mod:`repro.platforms.columnar.sql` — a small SQL dialect covering
  the paper's query, including the ``transitive`` derived-table
  modifier;
* :mod:`repro.platforms.columnar.transitive` — the vectored BFS
  executor with an exchange operator between edge lookup and border
  update, producing the query profile the paper reports (random
  lookups, edge endpoints visited, MTEPS, CPU% per operator).
"""

from repro.platforms.columnar.columns import CompressedColumn, VECTOR_SIZE
from repro.platforms.columnar.table import ColumnTable, PartitionedHashTable
from repro.platforms.columnar.sql import VirtuosoEngine
from repro.platforms.columnar.transitive import TransitiveResult, transitive_closure
from repro.platforms.columnar.driver import VirtuosoPlatform, paper_dbms_spec

__all__ = [
    "CompressedColumn",
    "VECTOR_SIZE",
    "ColumnTable",
    "PartitionedHashTable",
    "VirtuosoEngine",
    "TransitiveResult",
    "transitive_closure",
    "VirtuosoPlatform",
    "paper_dbms_spec",
]
