"""The dataflow engine: charged primitives + the delta iteration.

Algorithms are written against a small set of dataflow operators, each
of which really executes and charges the cost meter:

* :meth:`DataflowEngine.expand` — join a workset against the
  hash-partitioned edge table (records shuffle to the edge partition);
* :meth:`DataflowEngine.aggregate` — groupBy + reduce over emitted
  records (a shuffle by key, then per-group combination);
* :meth:`DataflowEngine.join_solution` — indexed join against the
  solution set (one random-access probe per record);
* :meth:`DataflowEngine.update_solution` — apply deltas to the
  indexed state.

:meth:`DataflowEngine.delta_iteration` wires these into the
Stratosphere/Flink loop: iterate a step function on the workset until
it is empty, one barrier per iteration, only delta records ever
shuffled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.cost import ClusterSpec, CostMeter

__all__ = ["DataflowEngine", "DeltaIterationStats"]

#: Serialized bytes per workset/delta record on the wire.
RECORD_BYTES = 24.0
#: CPU ops per record an operator touches.
RECORD_CPU_OPS = 3.0
#: Resident bytes per indexed solution-set entry.
SOLUTION_ENTRY_BYTES = 40.0
#: Resident bytes per edge in the hash-partitioned edge table.
EDGE_BYTES = 16.0

_KNUTH = 2654435761


def _worker_of(key: int, num_workers: int) -> int:
    return ((int(key) * _KNUTH) & 0xFFFFFFFF) % num_workers


@dataclass
class DeltaIterationStats:
    """What one delta iteration run did."""

    iterations: int = 0
    total_workset_records: int = 0
    total_solution_updates: int = 0


class DataflowEngine:
    """Executes dataflow programs over a partitioned edge table."""

    def __init__(
        self,
        adjacency: dict[int, tuple[int, ...]],
        spec: ClusterSpec,
        meter: CostMeter | None = None,
    ):
        self.adjacency = adjacency
        self.spec = spec
        self.meter = meter or CostMeter(spec)
        self.solution: dict[int, Any] = {}
        self._edges = sum(len(adj) for adj in adjacency.values())
        self._resident = (
            self._edges * EDGE_BYTES / max(spec.num_workers, 1)
        )
        # The edge table is resident per worker for the whole job.
        for worker in range(spec.num_workers):
            self.meter.allocate_memory(worker, self._resident)
        self._solution_bytes = 0.0

    def close(self) -> None:
        """Release the edge table and solution-set memory."""
        for worker in range(self.spec.num_workers):
            self.meter.release_memory(worker, self._resident)
        self._release_solution()

    def _release_solution(self) -> None:
        per_worker = self._solution_bytes / max(self.spec.num_workers, 1)
        for worker in range(self.spec.num_workers):
            self.meter.release_memory(worker, per_worker)
        self._solution_bytes = 0.0

    # -- state -------------------------------------------------------------

    def create_solution_set(self, initial: dict[int, Any]) -> None:
        """Materialize the indexed solution set (charged memory)."""
        self._release_solution()
        self.solution = dict(initial)
        self._solution_bytes = len(self.solution) * SOLUTION_ENTRY_BYTES
        per_worker = self._solution_bytes / max(self.spec.num_workers, 1)
        for worker in range(self.spec.num_workers):
            self.meter.allocate_memory(worker, per_worker)

    # -- operators ------------------------------------------------------------

    def expand(
        self,
        workset: Iterable[tuple[int, Any]],
        emit: Callable[[int, Any, int], Iterable[tuple[int, Any]]],
    ) -> list[tuple[int, Any]]:
        """Join workset records with the edge table.

        ``emit(vertex, payload, neighbor)`` yields records per incident
        edge. Workset records shuffle to the worker owning the vertex's
        adjacency; emitted records are charged on that worker.
        """
        meter = self.meter
        out: list[tuple[int, Any]] = []
        count = 0
        for vertex, payload in workset:
            worker = _worker_of(vertex, self.spec.num_workers)
            count += 1
            produced = 0
            for neighbor in self.adjacency[vertex]:
                for record in emit(vertex, payload, neighbor):
                    out.append(record)
                    produced += 1
            meter.charge_compute(
                worker, (1 + len(self.adjacency[vertex]) + produced) * RECORD_CPU_OPS
            )
        # Workset records shuffle to the edge partitions; with W
        # workers a (W-1)/W fraction crosses the network.
        fraction = (
            (self.spec.num_workers - 1) / self.spec.num_workers
            if self.spec.num_workers > 1
            else 0.0
        )
        meter.charge_shuffle(count * RECORD_BYTES * fraction, count=count)
        return out

    def aggregate(
        self,
        records: Iterable[tuple[int, Any]],
        combine: Callable[[Any, Any], Any],
    ) -> dict[int, Any]:
        """GroupBy key + reduce (records shuffle to the key's worker)."""
        meter = self.meter
        grouped: dict[int, Any] = {}
        count = 0
        remote_bytes = 0.0
        for key, value in records:
            count += 1
            remote_bytes += RECORD_BYTES
            if key in grouped:
                grouped[key] = combine(grouped[key], value)
            else:
                grouped[key] = value
            meter.charge_compute(
                _worker_of(key, self.spec.num_workers), RECORD_CPU_OPS
            )
        fraction = (
            (self.spec.num_workers - 1) / self.spec.num_workers
            if self.spec.num_workers > 1
            else 0.0
        )
        meter.charge_shuffle(remote_bytes * fraction, count=count)
        return grouped

    def join_solution(
        self,
        candidates: dict[int, Any],
        accept: Callable[[int, Any, Any], Any | None],
    ) -> dict[int, Any]:
        """Probe the indexed solution set per candidate.

        ``accept(key, current, candidate)`` returns the new value or
        ``None`` to drop the candidate. Each probe is a random access —
        the price of delta sparsity.
        """
        meter = self.meter
        deltas: dict[int, Any] = {}
        for key, candidate in candidates.items():
            worker = _worker_of(key, self.spec.num_workers)
            meter.charge_random_access(worker, 1)
            updated = accept(key, self.solution.get(key), candidate)
            if updated is not None:
                deltas[key] = updated
        return deltas

    def update_solution(self, deltas: dict[int, Any]) -> None:
        """Write accepted deltas into the indexed state."""
        meter = self.meter
        for key, value in deltas.items():
            worker = _worker_of(key, self.spec.num_workers)
            meter.charge_random_access(worker, 1)
            self.solution[key] = value

    # -- the loop -----------------------------------------------------------------

    def delta_iteration(
        self,
        initial_solution: dict[int, Any],
        initial_workset: list[tuple[int, Any]],
        step: Callable[["DataflowEngine", list[tuple[int, Any]]], list[tuple[int, Any]]],
        max_iterations: int = 200,
    ) -> DeltaIterationStats:
        """Run the Stratosphere/Flink delta-iteration loop.

        ``step(engine, workset)`` performs one iteration using the
        charged operators and returns the next workset. The loop ends
        when the workset empties — per-iteration cost tracks the
        frontier, never the whole graph.
        """
        self.create_solution_set(initial_solution)
        stats = DeltaIterationStats()
        workset = list(initial_workset)
        while workset:
            if stats.iterations >= max_iterations:
                raise RuntimeError(
                    f"delta iteration exceeded {max_iterations} iterations"
                )
            self.meter.begin_round(f"delta-{stats.iterations}")
            stats.total_workset_records += len(workset)
            workset = step(self, workset)
            stats.total_solution_updates += len(workset)
            self.meter.end_round(active_vertices=len(workset))
            stats.iterations += 1
        return stats
