"""Stratosphere-style dataflow platform with delta iterations.

Reference [4] of the paper (Guo et al., IPDPS 2014 — the study the
Graphalytics workload grew out of) benchmarks Stratosphere (now
Apache Flink) alongside the platforms reproduced here; the paper's
conclusion counts it among the additions "for which we already have
shown proof-of-concept implementations".

The model's distinguishing feature is the **delta iteration**: state
lives in an indexed *solution set*, and each iteration processes only
the *workset* — the records that changed — joining it against the
edge table and the solution set. Per-iteration cost is therefore
proportional to the frontier, like Giraph's active set and unlike
GraphX's whole-edge-RDD scans; the price is an indexed random-access
join probe per delta record (the locality choke point, on a cluster).
"""

from repro.platforms.dataflow.engine import DataflowEngine, DeltaIterationStats
from repro.platforms.dataflow.driver import StratospherePlatform

__all__ = ["DataflowEngine", "DeltaIterationStats", "StratospherePlatform"]
