"""Stratosphere platform driver."""

from __future__ import annotations

from repro.algorithms.evo import ambassador_for
from repro.core import etl
from repro.core.cost import CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph
from repro.platforms.dataflow.algorithms import (
    dataflow_bfs,
    dataflow_cd,
    dataflow_conn,
    dataflow_evo,
    dataflow_lcc,
    dataflow_pagerank,
    dataflow_sssp,
    dataflow_stats,
)
from repro.platforms.dataflow.engine import (
    EDGE_BYTES,
    SOLUTION_ENTRY_BYTES,
    DataflowEngine,
)

__all__ = ["StratospherePlatform"]


class StratospherePlatform(Platform):
    """Dataflow platform with delta iterations (Stratosphere/Flink).

    Iterative algorithms move only frontier-sized worksets per round
    (Giraph-like sparsity) but pay an indexed solution-set probe per
    delta record; the edge table stays resident across iterations.
    """

    name = "stratosphere"

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        adjacency = {
            int(v): tuple(int(u) for u in undirected.neighbors(int(v)))
            for v in undirected.vertices
        }
        storage = (
            2 * undirected.num_edges * EDGE_BYTES
            + undirected.num_vertices * SOLUTION_ENTRY_BYTES
        )
        file_bytes = etl.edge_file_bytes(undirected.num_edges)
        etl_time = (
            self.cluster.startup_seconds
            + etl.distributed_read_seconds(file_bytes, self.cluster)
            + etl.parse_seconds(undirected.num_edges, 5.0, self.cluster)
            + etl.partition_shuffle_seconds(storage, self.cluster)
        )
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
            detail={"adjacency": adjacency},
        )

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        adjacency: dict[int, tuple[int, ...]] = handle.detail["adjacency"]
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        meter.charge_startup()
        engine = DataflowEngine(adjacency, self.cluster, meter)
        try:
            if algorithm is Algorithm.BFS:
                output = dataflow_bfs(
                    engine, params.resolve_bfs_source(handle.graph)
                )
            elif algorithm is Algorithm.CONN:
                output = dataflow_conn(engine)
            elif algorithm is Algorithm.CD:
                output = dataflow_cd(
                    engine,
                    params.cd_max_iterations,
                    params.cd_hop_attenuation,
                    params.cd_node_preference,
                )
            elif algorithm is Algorithm.STATS:
                output = dataflow_stats(engine)
            elif algorithm is Algorithm.PR:
                output = dataflow_pagerank(
                    engine,
                    params.pagerank_damping,
                    params.pagerank_iterations,
                )
            elif algorithm is Algorithm.SSSP:
                source = params.resolve_sssp_source(handle.graph)
                weights = {
                    vertex: dict(pairs)
                    for vertex, pairs in handle.graph.weighted_adjacency().items()
                }
                output = dataflow_sssp(engine, source, weights)
            elif algorithm is Algorithm.LCC:
                output = dataflow_lcc(engine)
            elif algorithm is Algorithm.EVO:
                existing = sorted(adjacency)
                next_id = existing[-1] + 1
                ambassadors = {
                    next_id + arrival: ambassador_for(
                        params.evo_seed, next_id + arrival, existing
                    )
                    for arrival in range(params.evo_new_vertices)
                }
                output = dataflow_evo(
                    engine,
                    ambassadors,
                    p_forward=params.evo_p_forward,
                    max_hops=params.evo_max_hops,
                    seed=params.evo_seed,
                )
            else:
                raise ValueError(f"unsupported algorithm {algorithm}")
        finally:
            engine.close()
        return output, meter.profile
