"""The Graphalytics algorithms as dataflow programs.

BFS, CONN, and weighted SSSP are genuine delta iterations
(frontier-sized worksets); CD and PR keep every vertex in the workset
for their fixed iteration counts (label propagation and damped rank
updates are dense by nature); STATS and LCC are single
expand + aggregate pipelines; EVO runs one delta round per fire hop.
Outputs match the references exactly (PR to per-vertex tolerance).
"""

from __future__ import annotations

from repro.algorithms import evo as evo_ref
from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.lcc import lcc_value
from repro.algorithms.sssp import UNREACHABLE_DISTANCE
from repro.algorithms.stats import GraphStats
from repro.platforms.dataflow.engine import DataflowEngine

__all__ = [
    "dataflow_bfs",
    "dataflow_conn",
    "dataflow_cd",
    "dataflow_stats",
    "dataflow_evo",
    "dataflow_pagerank",
    "dataflow_sssp",
    "dataflow_lcc",
]


def dataflow_bfs(engine: DataflowEngine, source: int) -> dict[int, int]:
    """BFS distances as a delta iteration (workset = the frontier)."""

    def step(flow: DataflowEngine, workset):
        candidates = flow.aggregate(
            flow.expand(
                workset,
                emit=lambda vertex, dist, neighbor: [(neighbor, dist + 1)],
            ),
            combine=min,
        )
        deltas = flow.join_solution(
            candidates,
            accept=lambda key, current, candidate: (
                candidate if current == UNREACHABLE else None
            ),
        )
        flow.update_solution(deltas)
        return sorted(deltas.items())

    initial = {vertex: UNREACHABLE for vertex in engine.adjacency}
    initial[source] = 0
    engine.delta_iteration(initial, [(source, 0)], step)
    return dict(engine.solution)


def dataflow_conn(engine: DataflowEngine) -> dict[int, int]:
    """CONN as a delta iteration over shrinking label improvements."""

    def step(flow: DataflowEngine, workset):
        candidates = flow.aggregate(
            flow.expand(
                workset,
                emit=lambda vertex, label, neighbor: [(neighbor, label)],
            ),
            combine=min,
        )
        deltas = flow.join_solution(
            candidates,
            accept=lambda key, current, candidate: (
                candidate if candidate < current else None
            ),
        )
        flow.update_solution(deltas)
        return sorted(deltas.items())

    initial = {vertex: vertex for vertex in engine.adjacency}
    engine.delta_iteration(initial, sorted(initial.items()), step)
    return dict(engine.solution)


def dataflow_cd(
    engine: DataflowEngine,
    max_iterations: int,
    hop_attenuation: float,
    node_preference: float,
) -> dict[int, int]:
    """CD: dense label propagation expressed as bounded iterations.

    Every vertex stays in the workset for exactly ``max_iterations``
    rounds (the algorithm is not delta-sparse); the engine still only
    moves vote records, and the stop-on-stability short cut applies.
    """
    degrees = {vertex: len(adj) for vertex, adj in engine.adjacency.items()}
    state = {"remaining": max_iterations}

    def step(flow: DataflowEngine, workset):
        if state["remaining"] <= 0:
            return []
        state["remaining"] -= 1
        votes = flow.expand(
            workset,
            emit=lambda vertex, value, neighbor: [
                (neighbor, ((value[0], value[1], degrees[vertex]),))
            ],
        )
        ballots = flow.aggregate(votes, combine=lambda a, b: a + b)

        changed = 0

        def accept(key, current, ballot):
            nonlocal changed
            label, score = current
            weight_by_label: dict[int, float] = {}
            best_score_by_label: dict[int, float] = {}
            for other_label, other_score, other_degree in ballot:
                vote = other_score * other_degree ** node_preference
                weight_by_label[other_label] = (
                    weight_by_label.get(other_label, 0.0) + vote
                )
                best = best_score_by_label.get(other_label, float("-inf"))
                if other_score > best:
                    best_score_by_label[other_label] = other_score
            best_label = min(
                weight_by_label, key=lambda lbl: (-weight_by_label[lbl], lbl)
            )
            if best_label != label:
                changed += 1
                return (best_label, best_score_by_label[best_label] - hop_attenuation)
            return (label, score)

        deltas = flow.join_solution(ballots, accept)
        flow.update_solution(deltas)
        if changed == 0:
            # Stable labels: recomputation is a fixpoint; stop early,
            # exactly like the reference.
            return []
        return sorted(flow.solution.items())

    initial = {vertex: (vertex, 1.0) for vertex in engine.adjacency}
    workset = sorted(initial.items()) if max_iterations > 0 else []
    engine.delta_iteration(initial, workset, step)
    return {vertex: value[0] for vertex, value in engine.solution.items()}


def dataflow_stats(engine: DataflowEngine) -> GraphStats:
    """STATS as one expand + aggregate pipeline (no iteration)."""
    adjacency = engine.adjacency

    def step(flow: DataflowEngine, workset):
        shipped = flow.expand(
            workset,
            emit=lambda vertex, adj, neighbor: [(neighbor, (adj,))]
            if len(adj) >= 2
            else [],
        )
        lists = flow.aggregate(shipped, combine=lambda a, b: a + b)

        def accept(key, current, neighbor_lists):
            own = set(adjacency[key])
            degree = len(own)
            if degree < 2:
                return None
            links_twice = sum(
                1 for lst in neighbor_lists for w in lst if w in own
            )
            return links_twice / (degree * (degree - 1))

        flow.update_solution(flow.join_solution(lists, accept))
        return []

    initial = {vertex: 0.0 for vertex in adjacency}
    workset = [(vertex, adjacency[vertex]) for vertex in sorted(adjacency)]
    engine.delta_iteration(initial, workset, step)
    num_vertices = len(adjacency)
    num_edges = sum(len(adj) for adj in adjacency.values()) // 2
    clustering_sum = sum(engine.solution.values())
    return GraphStats(
        num_vertices=num_vertices,
        num_edges=num_edges,
        mean_local_clustering=(
            clustering_sum / num_vertices if num_vertices else 0.0
        ),
    )


def dataflow_pagerank(
    engine: DataflowEngine, damping: float, iterations: int
) -> dict[int, float]:
    """PR: dense damped-rank rounds expressed as bounded iterations.

    Like CD, every vertex stays in the workset for the fixed round
    count; share records move through expand + aggregate, and vertices
    with no incoming share outer-join to a zero total so isolated
    vertices still settle at the base rank.
    """
    adjacency = engine.adjacency
    degrees = {vertex: len(adj) for vertex, adj in adjacency.items()}
    n = len(adjacency)
    base = (1.0 - damping) / n if n else 0.0
    state = {"remaining": iterations}

    def step(flow: DataflowEngine, workset):
        if state["remaining"] <= 0:
            return []
        state["remaining"] -= 1
        totals = flow.aggregate(
            flow.expand(
                workset,
                emit=lambda vertex, rank, neighbor: [
                    (neighbor, rank / degrees[vertex])
                ],
            ),
            combine=lambda a, b: a + b,
        )
        for vertex in adjacency:
            totals.setdefault(vertex, 0.0)  # outer join: no incoming share
        deltas = flow.join_solution(
            totals,
            accept=lambda key, current, total: base + damping * total,
        )
        flow.update_solution(deltas)
        return sorted(flow.solution.items())

    initial = {vertex: 1.0 / n for vertex in adjacency} if n else {}
    workset = sorted(initial.items()) if iterations > 0 else []
    engine.delta_iteration(initial, workset, step, max_iterations=iterations + 1)
    return dict(engine.solution)


def dataflow_sssp(
    engine: DataflowEngine, source: int, weights: dict[int, dict[int, float]]
) -> dict[int, float]:
    """Weighted SSSP as a delta iteration (workset = improved vertices).

    Label-correcting relaxation: improved distances expand along
    weighted edges, candidates keep the minimum offer, and only strict
    improvements re-enter the workset — the positive-weight fixpoint
    is the Dijkstra distance exactly.
    """

    def step(flow: DataflowEngine, workset):
        candidates = flow.aggregate(
            flow.expand(
                workset,
                emit=lambda vertex, dist, neighbor: [
                    (neighbor, dist + weights[vertex][neighbor])
                ],
            ),
            combine=min,
        )
        deltas = flow.join_solution(
            candidates,
            accept=lambda key, current, candidate: (
                candidate if candidate < current else None
            ),
        )
        flow.update_solution(deltas)
        return sorted(deltas.items())

    initial = {vertex: UNREACHABLE_DISTANCE for vertex in engine.adjacency}
    initial[source] = 0.0
    engine.delta_iteration(
        initial,
        [(source, 0.0)],
        step,
        max_iterations=max(200, len(engine.adjacency) + 2),
    )
    return dict(engine.solution)


def dataflow_lcc(engine: DataflowEngine) -> dict[int, float]:
    """LCC as one expand + aggregate pipeline (no iteration).

    Same neighbor-list broadcast as :func:`dataflow_stats`, but the
    solution set keeps the coefficient per vertex instead of the mean.
    Vertices with degree below two keep their initial 0.0.
    """
    adjacency = engine.adjacency

    def step(flow: DataflowEngine, workset):
        shipped = flow.expand(
            workset,
            emit=lambda vertex, adj, neighbor: [(neighbor, (adj,))]
            if len(adj) >= 2
            else [],
        )
        lists = flow.aggregate(shipped, combine=lambda a, b: a + b)

        def accept(key, current, neighbor_lists):
            own = set(adjacency[key])
            degree = len(own)
            if degree < 2:
                return None
            links_twice = sum(
                1 for lst in neighbor_lists for w in lst if w in own
            )
            return lcc_value(links_twice // 2, degree)

        flow.update_solution(flow.join_solution(lists, accept))
        return []

    initial = {vertex: 0.0 for vertex in adjacency}
    workset = [(vertex, adjacency[vertex]) for vertex in sorted(adjacency)]
    engine.delta_iteration(initial, workset, step)
    return dict(engine.solution)


def dataflow_evo(
    engine: DataflowEngine,
    ambassadors: dict[int, int],
    p_forward: float,
    max_hops: int,
    seed: int,
) -> dict[int, list[int]]:
    """EVO: one delta round per fire hop, burn attempts as records."""
    adjacency = engine.adjacency
    victim_cache: dict[tuple[int, int], frozenset] = {}

    def victims_of(arrival: int, at_vertex: int) -> frozenset:
        key = (arrival, at_vertex)
        if key not in victim_cache:
            candidates = sorted(adjacency[at_vertex])
            budget = evo_ref.burn_budget(seed, arrival, at_vertex, p_forward)
            victim_cache[key] = frozenset(
                evo_ref.burn_victims(candidates, budget, seed, arrival, at_vertex)
            )
        return victim_cache[key]

    def step(flow: DataflowEngine, workset):
        attempts = flow.expand(
            workset,
            emit=lambda vertex, fresh, neighbor: [
                (
                    neighbor,
                    tuple(
                        (arrival, depth + 1)
                        for arrival, depth in fresh
                        if depth < max_hops
                        and neighbor in victims_of(arrival, vertex)
                    ),
                )
            ],
        )
        merged = flow.aggregate(
            ((key, value) for key, value in attempts if value),
            combine=lambda a, b: a + b,
        )

        fresh_by_vertex: dict[int, dict[int, int]] = {}

        def accept(key, current, burn_attempts):
            fresh: dict[int, int] = {}
            for arrival, depth in sorted(burn_attempts):
                if arrival not in current and arrival not in fresh:
                    fresh[arrival] = depth
            if not fresh:
                return None
            fresh_by_vertex[key] = fresh
            return {**current, **fresh}

        deltas = flow.join_solution(merged, accept)
        flow.update_solution(deltas)
        return [
            (vertex, tuple(sorted(fresh_by_vertex[vertex].items())))
            for vertex in sorted(fresh_by_vertex)
        ]

    by_ambassador: dict[int, dict[int, int]] = {}
    for arrival, ambassador in ambassadors.items():
        by_ambassador.setdefault(ambassador, {})[arrival] = 0
    initial = {
        vertex: dict(by_ambassador.get(vertex, {})) for vertex in adjacency
    }
    workset = [
        (vertex, tuple(sorted(burns.items())))
        for vertex, burns in sorted(by_ambassador.items())
    ]
    engine.delta_iteration(initial, workset, step)
    links: dict[int, list[int]] = {arrival: [] for arrival in ambassadors}
    for vertex, burned in engine.solution.items():
        for arrival in burned:
            links[arrival].append(vertex)
    return {arrival: sorted(targets) for arrival, targets in links.items()}
