"""MapReduce platform driver: chains jobs and extracts outputs."""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.evo import ambassador_for
from repro.algorithms.sssp import UNREACHABLE_DISTANCE
from repro.algorithms.stats import GraphStats
from repro.core import etl
from repro.core.cost import ClusterSpec, CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams

from repro.platforms.mapreduce.batch import RecordBatch
from repro.platforms.mapreduce.engine import MapReduceEngine, record_size
from repro.platforms.mapreduce.jobs import (
    BFSIterationJob,
    CDIterationJob,
    ConnIterationJob,
    EvoHopJob,
    LCCJob,
    PageRankIterationJob,
    SSSPIterationJob,
    StatsAggregationJob,
    StatsTriangleJob,
)

__all__ = ["MapReducePlatform"]


class MapReducePlatform(Platform):
    """Hadoop MapReduce v2 stand-in.

    Iterative algorithms run one (or more) jobs per iteration, paying
    job startup, the full graph's disk round-trip, shuffle, and sort
    every time — but holding only fixed-size buffers in memory, so the
    driver completes even the workloads that crash the in-memory
    platforms ("does not crash even when processing the largest
    workload").
    """

    name = "mapreduce"

    #: Bound on driver-side iterations; HashMin label propagation on a
    #: path graph needs up to |V| rounds, which would take years on
    #: real Hadoop — the benchmark's time limit triggers first.
    MAX_ITERATIONS = 100

    def __init__(self, cluster: ClusterSpec, bulk: bool = True):
        super().__init__(cluster)
        #: Batched shuffle/byte accounting in the engine; ``bulk=False``
        #: forces the per-record scalar charges (the cost profile is
        #: identical either way).
        self.bulk = bulk

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        adjacency = {
            int(v): tuple(int(u) for u in undirected.neighbors(int(v)))
            for v in undirected.vertices
        }
        storage = sum(record_size(k, v) for k, v in adjacency.items())
        # ETL: copy the adjacency records into HDFS (3-way replicated);
        # no in-memory structures to build — the cheapest load of all.
        etl_time = etl.replicated_write_seconds(storage, 3, self.cluster)
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
            detail={"adjacency": adjacency},
        )

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        engine = MapReduceEngine(self.cluster, meter, bulk=self.bulk)
        adjacency: dict[int, tuple[int, ...]] = handle.detail["adjacency"]
        try:
            if algorithm is Algorithm.BFS:
                source = params.resolve_bfs_source(handle.graph)
                output = self._run_bfs(engine, adjacency, source)
            elif algorithm is Algorithm.SSSP:
                source = params.resolve_sssp_source(handle.graph)
                output = self._run_sssp(
                    engine, handle.graph.weighted_adjacency(), source
                )
            else:
                runner = {
                    Algorithm.CONN: self._run_conn,
                    Algorithm.CD: self._run_cd,
                    Algorithm.STATS: self._run_stats,
                    Algorithm.EVO: self._run_evo,
                    Algorithm.PR: self._run_pagerank,
                    Algorithm.LCC: self._run_lcc,
                }[algorithm]
                output = runner(engine, adjacency, params)
        finally:
            engine.close()
        return output, meter.profile

    # -- algorithms ------------------------------------------------------

    def _run_bfs(self, engine, adjacency, source):
        if engine.bulk:
            batch = RecordBatch.from_adjacency(adjacency)
            batch.columns["dist"] = np.where(
                batch.keys == source, 0, UNREACHABLE
            ).astype(np.int64)
            for iteration in range(1, self.MAX_ITERATIONS + 1):
                result = engine.run_job(BFSIterationJob(iteration), batch)
                batch = result.output
                if result.counters.get("changed", 0) == 0:
                    break
            return {
                int(v): int(d)
                for v, d in zip(
                    batch.keys.tolist(), batch.columns["dist"].tolist()
                )
            }
        records = [
            (v, (adj, 0 if v == source else UNREACHABLE))
            for v, adj in adjacency.items()
        ]
        for iteration in range(1, self.MAX_ITERATIONS + 1):
            result = engine.run_job(BFSIterationJob(iteration), records)
            records = result.output
            if result.counters.get("changed", 0) == 0:
                break
        return {v: dist for v, (adj, dist) in records}

    def _run_conn(self, engine, adjacency, params):
        if engine.bulk:
            batch = RecordBatch.from_adjacency(adjacency)
            batch.columns["label"] = batch.keys.copy()
            for iteration in range(1, self.MAX_ITERATIONS + 1):
                result = engine.run_job(ConnIterationJob(iteration), batch)
                batch = result.output
                if result.counters.get("changed", 0) == 0:
                    break
            return {
                int(v): int(lbl)
                for v, lbl in zip(
                    batch.keys.tolist(), batch.columns["label"].tolist()
                )
            }
        records = [(v, (adj, v)) for v, adj in adjacency.items()]
        for iteration in range(1, self.MAX_ITERATIONS + 1):
            result = engine.run_job(ConnIterationJob(iteration), records)
            records = result.output
            if result.counters.get("changed", 0) == 0:
                break
        return {v: label for v, (adj, label) in records}

    def _run_cd(self, engine, adjacency, params):
        records = [(v, (adj, v, 1.0)) for v, adj in adjacency.items()]
        for iteration in range(1, params.cd_max_iterations + 1):
            job = CDIterationJob(
                iteration, params.cd_hop_attenuation, params.cd_node_preference
            )
            result = engine.run_job(job, records)
            records = result.output
            if result.counters.get("changed", 0) == 0:
                break
        return {v: label for v, (adj, label, score) in records}

    def _run_stats(self, engine, adjacency, params):
        records = list(adjacency.items())
        partials = engine.run_job(StatsTriangleJob(), records)
        totals = engine.run_job(StatsAggregationJob(), partials.output)
        sums = dict(totals.output)
        num_vertices = int(sums.get("vertices", 0))
        return GraphStats(
            num_vertices=num_vertices,
            num_edges=int(sums.get("edges", 0)) // 2,
            mean_local_clustering=(
                sums.get("clustering_sum", 0.0) / num_vertices
                if num_vertices
                else 0.0
            ),
        )

    def _run_pagerank(self, engine, adjacency, params):
        n = len(adjacency)
        records = [(v, (adj, 1.0 / n)) for v, adj in adjacency.items()]
        for iteration in range(1, params.pagerank_iterations + 1):
            job = PageRankIterationJob(iteration, n, params.pagerank_damping)
            records = engine.run_job(job, records).output
        return {v: rank for v, (adj, rank) in records}

    def _run_sssp(self, engine, weighted_adjacency, source):
        records = [
            (v, (tuple(pairs), 0.0 if v == source else UNREACHABLE_DISTANCE,
                 v == source))
            for v, pairs in weighted_adjacency.items()
        ]
        # Synchronous relaxation settles within |V| rounds (positive
        # weights); the driver loops on the ``changed`` counter.
        for iteration in range(1, max(200, len(records) + 2)):
            result = engine.run_job(SSSPIterationJob(iteration), records)
            records = result.output
            if result.counters.get("changed", 0) == 0:
                break
        return {v: dist for v, (wadj, dist, changed) in records}

    def _run_lcc(self, engine, adjacency, params):
        records = list(adjacency.items())
        return dict(engine.run_job(LCCJob(), records).output)

    def _run_evo(self, engine, adjacency, params):
        existing = sorted(adjacency)
        next_id = existing[-1] + 1
        seeds: dict[int, dict[int, int]] = {}
        for arrival_index in range(params.evo_new_vertices):
            arrival = next_id + arrival_index
            ambassador = ambassador_for(params.evo_seed, arrival, existing)
            seeds.setdefault(ambassador, {})[arrival] = 0
        records = [
            (v, (adj, dict(seeds.get(v, {})), dict(seeds.get(v, {}))))
            for v, adj in adjacency.items()
        ]
        for hop in range(params.evo_max_hops):
            job = EvoHopJob(
                params.evo_p_forward, params.evo_max_hops, params.evo_seed, hop
            )
            result = engine.run_job(job, records)
            records = result.output
            if result.counters.get("burned", 0) == 0:
                break
        links: dict[int, list[int]] = {
            next_id + i: [] for i in range(params.evo_new_vertices)
        }
        for v, (adj, burned, fresh) in records:
            for arrival in burned:
                links[arrival].append(v)
        return {arrival: sorted(targets) for arrival, targets in links.items()}
