"""The MapReduce execution engine.

Implements the Hadoop MapReduce v2 dataflow faithfully enough to
reproduce its benchmark behaviour:

* **map** — each input record is deserialized, mapped, and the
  emitted records are partitioned by key hash and spilled to local
  disk;
* **combine** — optional map-side pre-aggregation per partition;
* **shuffle** — every reducer fetches its partition from every map
  task; a ``(W-1)/W`` fraction of the bytes crosses the network;
* **sort** — merge-sorting the fetched runs (n log n compute);
* **reduce** — grouped records are reduced and the output written to
  HDFS with 3× replication (two replicas cross the network).

The engine *streams*: per-worker memory is a fixed sort buffer, not
the dataset, which is precisely why the simulated MapReduce never
fails with out-of-memory while the in-memory platforms do — and why
it pays the full disk round-trip for the graph on *every* iteration
of an iterative algorithm, the paper's "two orders of magnitude
slower" behaviour.

Hadoop counters are supported; drivers use them for loop termination
(e.g. "no vertex changed its distance this iteration").
"""

from __future__ import annotations

import abc
import math
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.core.cost import ClusterSpec, CostMeter
from repro.platforms.mapreduce.batch import (
    RecordBatch,
    combine_min_messages,
    repr_sort_permutation,
    str_key_workers,
)

__all__ = [
    "MapReduceJob",
    "JobResult",
    "MapReduceEngine",
    "record_size",
    "record_bytes_total",
    "reduce_worker",
]

#: Serialized size of one key-value record (Writable overhead included).
RECORD_BYTES = 24.0
#: Extra serialized bytes per element for records whose value is a
#: collection (e.g. adjacency lists).
ELEMENT_BYTES = 8.0
#: Per-record CPU cost of (de)serialization + framework bookkeeping,
#: in cost-model operations. MapReduce touches every record through
#: Writable serialization on each pass, unlike the in-memory engines.
RECORD_CPU_OPS = 8.0
#: Default per-worker sort-buffer memory (io.sort.mb); capped at a
#: fraction of the worker's memory on small configurations, as an
#: operator would tune it.
SORT_BUFFER_BYTES = 100 * 2 ** 20
SORT_BUFFER_MEMORY_FRACTION = 0.2
#: HDFS replication factor; replicas beyond the first cross the network.
HDFS_REPLICATION = 3


def record_size(key: Any, value: Any) -> float:
    """Approximate serialized size of one key-value record."""
    size = RECORD_BYTES
    if isinstance(value, (list, tuple, set, frozenset)):
        size += ELEMENT_BYTES * len(value)
        for element in value:
            if isinstance(element, (list, tuple, set, frozenset)):
                size += ELEMENT_BYTES * len(element)
    return size


def record_bytes_total(records: list[tuple[Any, Any]]) -> float:
    """Batched equivalent of ``sum(record_size(k, v) for k, v in records)``.

    Counts collection elements in one fused pass and applies the
    per-record constants once at the end. Exact, not approximate:
    every term is an integer-valued float below 2**53, so
    ``RECORD_BYTES * n + ELEMENT_BYTES * elements`` is bit-identical
    to the scalar per-record sum (see ``CostMeter.charge_compute_bulk``
    for the argument).
    """
    elements = 0
    for _key, value in records:
        if isinstance(value, (list, tuple, set, frozenset)):
            elements += len(value)
            for element in value:
                if isinstance(element, (list, tuple, set, frozenset)):
                    elements += len(element)
    return RECORD_BYTES * len(records) + ELEMENT_BYTES * elements


def reduce_worker(key: Any, num_workers: int) -> int:
    """Stable reduce-task assignment (Hadoop's HashPartitioner).

    Integer keys keep Hadoop's ``key % num_reducers`` placement; any
    other key hashes via CRC32 of its ``repr`` so the assignment is
    identical across interpreter processes. The builtin ``hash`` is
    *not* usable here: ``hash(str)`` is salted by ``PYTHONHASHSEED``,
    so per-worker charges — and therefore simulated times — would
    differ between the parallel suite runner's worker processes and a
    sequential run.
    """
    if isinstance(key, int):
        return key % num_workers
    return zlib.crc32(repr(key).encode("utf-8")) % num_workers


class MapReduceJob(abc.ABC):
    """One MapReduce job: map, optional combine, reduce.

    Jobs whose records fit the vertex-keyed columnar shape — int64
    keys, an adjacency list plus one scalar state column, messages
    that broadcast one scalar to every neighbor and combine with
    ``min`` — additionally implement the ``batch_*`` hooks and set
    :attr:`supports_batch`, unlocking the engine's
    :class:`~repro.platforms.mapreduce.batch.RecordBatch` executor.
    """

    #: Job name used in round labels.
    name: str = "job"

    #: Whether the ``batch_*`` hooks are implemented; the engine falls
    #: back to the scalar record path otherwise.
    supports_batch: bool = False

    def batch_emitters(self, batch: RecordBatch) -> np.ndarray:
        """Bool mask over records that broadcast to their neighbors."""
        raise NotImplementedError

    def batch_message_values(self, batch: RecordBatch) -> np.ndarray:
        """Scalar each emitting record sends (indexed like the batch)."""
        raise NotImplementedError

    def batch_apply(
        self,
        batch: RecordBatch,
        minimum: np.ndarray,
        has_message: np.ndarray,
        counters: dict,
    ) -> dict[str, np.ndarray]:
        """New state columns after digesting the combined messages."""
        raise NotImplementedError

    @abc.abstractmethod
    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records for one input record."""

    @abc.abstractmethod
    def reduce(
        self, key: Any, values: list, counters: dict
    ) -> Iterable[tuple[Any, Any]]:
        """Emit output records for one grouped key."""

    def combine(self, key: Any, values: list) -> list:
        """Map-side pre-aggregation (default: pass-through)."""
        return values


@dataclass
class JobResult:
    """Output of one job execution.

    ``output`` is a record list on the scalar path and a
    :class:`~repro.platforms.mapreduce.batch.RecordBatch` on the
    columnar path (the driver feeds it straight into the next job).
    """

    output: list[tuple[Any, Any]] | RecordBatch
    counters: dict = field(default_factory=dict)


class MapReduceEngine:
    """Executes job chains over a simulated YARN cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        meter: CostMeter | None = None,
        bulk: bool = True,
    ):
        self.spec = spec
        self.meter = meter or CostMeter(spec)
        #: Batched shuffle accounting (fused byte totals, bincount
        #: per-worker charges); ``bulk=False`` forces the per-record
        #: scalar charges. The cost profile is identical either way.
        self.bulk = bulk
        self.sort_buffer_bytes = min(
            SORT_BUFFER_BYTES,
            SORT_BUFFER_MEMORY_FRACTION * spec.memory_bytes_per_worker,
        )
        # The streaming engine holds only sort buffers in memory.
        for worker in range(spec.num_workers):
            self.meter.allocate_memory(worker, self.sort_buffer_bytes)

    def close(self) -> None:
        """Release the engine's sort-buffer memory."""
        for worker in range(self.spec.num_workers):
            self.meter.release_memory(worker, self.sort_buffer_bytes)

    def run_job(
        self, job: MapReduceJob, input_records: list[tuple[Any, Any]] | RecordBatch
    ) -> JobResult:
        """Run one job: map, shuffle/sort, reduce, with cost charges.

        A :class:`RecordBatch` input selects the columnar executor
        (requires ``bulk=True`` and a batch-capable job); its charges
        and output are bit-identical to running the same job over
        ``batch.to_pairs()`` on the scalar path.
        """
        if isinstance(input_records, RecordBatch):
            if not (self.bulk and job.supports_batch):
                raise TypeError(
                    f"job {job.name} cannot run columnar "
                    f"(bulk={self.bulk}, supports_batch={job.supports_batch})"
                )
            return self._run_job_batch(job, input_records)
        meter = self.meter
        spec = self.spec
        counters: dict = {}

        # Job submission (YARN scheduling, container spin-up).
        meter.profile.startup_seconds += spec.startup_seconds

        # ---- map phase ---------------------------------------------------
        meter.begin_round(f"map-{job.name}")
        input_bytes = self._records_bytes(input_records)
        meter.charge_disk_read(None, input_bytes)

        intermediate: list[tuple[Any, Any]] = []
        if self.bulk:
            emit_counts: list[int] = []
            for key, value in input_records:
                emitted = list(job.map(key, value, counters))
                emit_counts.append(len(emitted))
                intermediate.extend(emitted)
            # Input splits are assigned round-robin by record index.
            self._charge_records_bulk(
                np.arange(len(input_records)) % spec.num_workers,
                1.0 + np.asarray(emit_counts, dtype=np.float64),
            )
        else:
            per_worker_records = [0.0] * spec.num_workers
            for index, (key, value) in enumerate(input_records):
                worker = index % spec.num_workers  # input splits round-robin
                emitted = list(job.map(key, value, counters))
                per_worker_records[worker] += 1 + len(emitted)
                intermediate.extend(emitted)
            for worker, records in enumerate(per_worker_records):
                meter.charge_compute(worker, records * RECORD_CPU_OPS)

        # Map-side combine per (map task, key) group.
        grouped: dict[Any, list] = {}
        for key, value in intermediate:
            grouped.setdefault(key, []).append(value)
        combined: list[tuple[Any, Any]] = []
        for key, values in grouped.items():
            for value in job.combine(key, values):
                combined.append((key, value))
        map_output_bytes = self._records_bytes(combined)
        # Spill to local disk, then reducers fetch.
        meter.charge_disk_write(None, map_output_bytes)
        meter.end_round(active_vertices=len(input_records))

        # ---- shuffle + sort ------------------------------------------------
        meter.begin_round(f"shuffle-{job.name}")
        remote_fraction = (
            (spec.num_workers - 1) / spec.num_workers if spec.num_workers > 1 else 0.0
        )
        meter.charge_shuffle(map_output_bytes * remote_fraction, count=len(combined))
        meter.charge_disk_read(None, map_output_bytes)
        if combined:
            sort_ops = len(combined) * max(1.0, math.log2(len(combined))) * 2.0
            for worker in range(spec.num_workers):
                if self.bulk:
                    meter.charge_compute_bulk(worker, sort_ops / spec.num_workers)
                else:
                    meter.charge_compute(worker, sort_ops / spec.num_workers)
        meter.end_round()

        # ---- reduce phase ---------------------------------------------------
        meter.begin_round(f"reduce-{job.name}")
        by_key: dict[Any, list] = {}
        for key, value in combined:
            by_key.setdefault(key, []).append(value)
        keys = sorted(by_key, key=repr)
        output: list[tuple[Any, Any]] = []
        if self.bulk:
            key_records: list[int] = []
            for key in keys:
                emitted = list(job.reduce(key, by_key[key], counters))
                key_records.append(len(by_key[key]) + len(emitted))
                output.extend(emitted)
            self._charge_records_bulk(
                self._reduce_workers(keys),
                np.asarray(key_records, dtype=np.float64),
            )
        else:
            reduce_per_worker = [0.0] * spec.num_workers
            for key in keys:
                worker = reduce_worker(key, spec.num_workers)
                emitted = list(job.reduce(key, by_key[key], counters))
                reduce_per_worker[worker] += len(by_key[key]) + len(emitted)
                output.extend(emitted)
            for worker, records in enumerate(reduce_per_worker):
                meter.charge_compute(worker, records * RECORD_CPU_OPS)
        output_bytes = self._records_bytes(output)
        # HDFS write with replication; replicas cross the network.
        meter.charge_disk_write(None, output_bytes * HDFS_REPLICATION)
        meter.charge_shuffle(output_bytes * (HDFS_REPLICATION - 1))
        meter.end_round()

        return JobResult(output=output, counters=counters)

    # -- columnar execution ------------------------------------------------

    def _run_job_batch(self, job: MapReduceJob, batch: RecordBatch) -> JobResult:
        """Columnar map/combine/shuffle/reduce over a :class:`RecordBatch`.

        Every charge mirrors the scalar path's charge sequence and
        value exactly: byte totals use the same
        ``RECORD_BYTES * count + ELEMENT_BYTES * elements`` closed
        form as :func:`record_bytes_total` (element counts derived
        from the batch's degree column instead of walking tuples), and
        per-worker record tallies are the same integer-valued
        ``np.bincount`` sums. Output records come back repr-sorted by
        key, exactly as the scalar reduce emits them.
        """
        meter = self.meter
        spec = self.spec
        counters: dict = {}
        num_records = len(batch)
        num_columns = len(batch.columns)
        degrees = batch.degrees
        total_adjacency = batch.total_adjacency

        meter.profile.startup_seconds += spec.startup_seconds

        # ---- map phase ---------------------------------------------------
        meter.begin_round(f"map-{job.name}")
        # Input value tuple is (adj, *columns): 1 + num_columns
        # top-level elements plus the adjacency elements.
        input_elements = (1 + num_columns) * num_records + total_adjacency
        input_bytes = (
            RECORD_BYTES * num_records + ELEMENT_BYTES * input_elements
        )
        meter.charge_disk_read(None, input_bytes)

        emitters = job.batch_emitters(batch)
        message_counts = degrees * emitters
        targets, payloads = batch.gather_messages(
            emitters, job.batch_message_values(batch)
        )
        # Each record emits its own state record plus its messages;
        # input splits are assigned round-robin by record index.
        self._charge_records_bulk(
            np.arange(num_records, dtype=np.int64) % spec.num_workers,
            1.0 + (1 + message_counts).astype(np.float64),
        )

        # Map-side combine: per key, the state record survives and all
        # candidate messages fold into one minimum.
        minimum, has_message = combine_min_messages(
            num_records, targets, payloads
        )
        message_keys = int(has_message.sum())
        combined_count = num_records + message_keys
        # State records serialize as ("A", adj, *columns); combined
        # messages as ("D", value).
        combined_elements = (
            (2 + num_columns) * num_records
            + total_adjacency
            + 2 * message_keys
        )
        map_output_bytes = (
            RECORD_BYTES * combined_count + ELEMENT_BYTES * combined_elements
        )
        meter.charge_disk_write(None, map_output_bytes)
        meter.end_round(active_vertices=num_records)

        # ---- shuffle + sort ------------------------------------------------
        meter.begin_round(f"shuffle-{job.name}")
        remote_fraction = (
            (spec.num_workers - 1) / spec.num_workers if spec.num_workers > 1 else 0.0
        )
        meter.charge_shuffle(
            map_output_bytes * remote_fraction, count=combined_count
        )
        meter.charge_disk_read(None, map_output_bytes)
        if combined_count:
            sort_ops = (
                combined_count * max(1.0, math.log2(combined_count)) * 2.0
            )
            for worker in range(spec.num_workers):
                meter.charge_compute_bulk(worker, sort_ops / spec.num_workers)
        meter.end_round()

        # ---- reduce phase ---------------------------------------------------
        meter.begin_round(f"reduce-{job.name}")
        # Each key groups its state record plus at most one combined
        # message and re-emits one state record.
        self._charge_records_bulk(
            batch.keys % spec.num_workers,
            (2 + has_message).astype(np.float64),
        )
        new_columns = job.batch_apply(batch, minimum, has_message, counters)
        output = RecordBatch(
            keys=batch.keys,
            adj_offsets=batch.adj_offsets,
            adj_targets=batch.adj_targets,
            columns={
                name: new_columns.get(name, column)
                for name, column in batch.columns.items()
            },
        ).reorder(repr_sort_permutation(batch.keys))
        output_elements = (1 + num_columns) * num_records + total_adjacency
        output_bytes = (
            RECORD_BYTES * num_records + ELEMENT_BYTES * output_elements
        )
        # HDFS write with replication; replicas cross the network.
        meter.charge_disk_write(None, output_bytes * HDFS_REPLICATION)
        meter.charge_shuffle(output_bytes * (HDFS_REPLICATION - 1))
        meter.end_round()

        return JobResult(output=output, counters=counters)

    # -- batched accounting ------------------------------------------------

    def _records_bytes(self, records: list[tuple[Any, Any]]) -> float:
        """Serialized size of a record batch (fused pass when bulk)."""
        if self.bulk:
            return record_bytes_total(records)
        return sum(record_size(k, v) for k, v in records)

    def _reduce_workers(self, keys: list) -> np.ndarray:
        """Vectorized :func:`reduce_worker` over a batch of keys.

        Integer keys — the common case, vertex ids — reduce in one
        modulo over the array; homogeneous str keys hash in one
        vectorized CRC32 pass; anything else falls back to the scalar
        partitioner per key.
        """
        try:
            key_array = np.asarray(keys, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            str_workers = str_key_workers(keys, self.spec.num_workers)
            if str_workers is not None:
                return str_workers
            return np.fromiter(
                (reduce_worker(key, self.spec.num_workers) for key in keys),
                dtype=np.int64,
                count=len(keys),
            )
        return key_array % self.spec.num_workers

    def _charge_records_bulk(
        self, workers: np.ndarray, records: np.ndarray
    ) -> None:
        """Charge per-record CPU for a batch grouped by worker.

        Integer record counts sum exactly under float64 regardless of
        order, so one bulk charge per worker is bit-identical to the
        scalar per-record accumulation.
        """
        per_worker = np.bincount(
            workers, weights=records, minlength=self.spec.num_workers
        )
        for worker in np.nonzero(per_worker)[0]:
            self.meter.charge_compute_bulk(
                int(worker), float(per_worker[worker]) * RECORD_CPU_OPS
            )
