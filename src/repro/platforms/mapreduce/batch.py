"""Columnar record batches for the MapReduce data plane.

The scalar engine moves ``list[(key, value)]`` records through map/
combine/shuffle/reduce — one Python object per record, one dict
insertion per group. For the vertex-keyed iterative jobs (BFS, CONN)
the whole pipeline is data-parallel over int64 keys, so the same job
can instead flow a :class:`RecordBatch`: a struct-of-arrays layout
holding the key column, the adjacency lists as one flat array plus
offsets (the CSR convention used by :class:`repro.graph.graph.Graph`),
and the per-record scalar state as named numpy columns.

The batch executor in :class:`~repro.platforms.mapreduce.engine.
MapReduceEngine` replaces dict-of-lists grouping with
``np.argsort``/``np.minimum.reduceat``, per-tuple ``record_size`` with
closed-form element counts, and per-key partitioning with one vector
modulo — while charging the :class:`~repro.core.cost.CostMeter`
bit-identically to the scalar path (the charges are integer-valued
floats, so pre-summed bulk totals equal the per-record accumulation
exactly; see ``CostMeter.charge_compute_bulk``).

This module also hosts the vectorized CRC32 used by the reduce
partitioner's string-key fast path: one table-driven pass over an
encoded byte matrix instead of ``zlib.crc32(repr(key))`` per key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "RecordBatch",
    "repr_sort_permutation",
    "crc32_rows",
    "str_key_workers",
]


def repr_sort_permutation(keys: np.ndarray) -> np.ndarray:
    """Permutation ordering int64 keys by ``repr`` (decimal-string) order.

    The scalar reduce phase sorts grouped keys with
    ``sorted(by_key, key=repr)``; for non-negative integers that is
    lexicographic order of their decimal strings, which numpy's
    ``U``-dtype sort reproduces exactly. The batch executor applies
    this permutation to its output so the next job's round-robin map
    splits (``index % num_workers``) assign every record to the same
    worker as the scalar path.
    """
    return np.argsort(keys.astype("U"), kind="stable")


@dataclass
class RecordBatch:
    """Struct-of-arrays batch of vertex-keyed MapReduce records.

    One batch row is the record ``(keys[i], (adj_i, *scalars_i))``
    where ``adj_i`` is the slice
    ``keys[adj_targets[adj_offsets[i]:adj_offsets[i+1]]]`` — adjacency
    targets are stored as *positions into the key column*, so message
    routing and state updates never leave integer-index space.

    Attributes
    ----------
    keys:
        int64 key column (vertex identifiers), in record order.
    adj_offsets:
        int64 ``[n+1]`` offsets into :attr:`adj_targets`.
    adj_targets:
        int64 flat adjacency column; values are row positions.
    columns:
        Named scalar value columns (int64), one entry per record. The
        record's serialized value is the tuple ``(adj, *columns)`` in
        mapping order.
    """

    keys: np.ndarray
    adj_offsets: np.ndarray
    adj_targets: np.ndarray
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def degrees(self) -> np.ndarray:
        """Adjacency-list length per record."""
        return np.diff(self.adj_offsets)

    @property
    def total_adjacency(self) -> int:
        """Total adjacency elements across the batch."""
        return int(self.adj_targets.size)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Mapping[int, Iterable[int]],
        columns: Mapping[str, np.ndarray | Iterable[int]] | None = None,
    ) -> "RecordBatch":
        """Build a batch from a ``{vertex: neighbors}`` mapping.

        Keys must be sortable ascending (they are: the MapReduce
        driver materializes adjacency over ``graph.vertices``, which
        is sorted), because neighbor ids resolve to row positions via
        binary search.
        """
        keys = np.fromiter(adjacency.keys(), dtype=np.int64, count=len(adjacency))
        counts = np.fromiter(
            (len(adj) for adj in adjacency.values()),
            dtype=np.int64,
            count=len(adjacency),
        )
        offsets = np.zeros(len(keys) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if int(offsets[-1]):
            flat = np.concatenate(
                [np.asarray(adj, dtype=np.int64) for adj in adjacency.values()]
            )
        else:
            flat = np.empty(0, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        positions = order[np.searchsorted(sorted_keys, flat)]
        return cls(
            keys=keys,
            adj_offsets=offsets,
            adj_targets=positions,
            columns={
                name: np.asarray(values, dtype=np.int64)
                for name, values in (columns or {}).items()
            },
        )

    def to_pairs(self) -> list[tuple[int, tuple]]:
        """Materialize the scalar record list ``[(key, (adj, *cols))]``.

        The adjacency is rendered as a tuple of vertex ids, matching
        the record shape the scalar jobs consume — used by tests and
        by callers that need to hand a batch to a non-batch job.
        """
        keys = self.keys.tolist()
        offsets = self.adj_offsets.tolist()
        flat = self.keys[self.adj_targets].tolist()
        column_lists = [column.tolist() for column in self.columns.values()]
        return [
            (
                keys[i],
                (tuple(flat[offsets[i]: offsets[i + 1]]),)
                + tuple(column[i] for column in column_lists),
            )
            for i in range(len(keys))
        ]

    def gather_messages(
        self, emitters: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast one scalar per emitting record to all its neighbors.

        Returns ``(targets, payloads)`` where ``targets`` are row
        positions (with multiplicity, grouped by emitting record in
        record order) and ``payloads`` repeats each emitter's value
        once per neighbor — the columnar form of the scalar jobs'
        ``for neighbor in adj: yield neighbor, (tag, value)`` loop.
        """
        rows = np.nonzero(emitters)[0]
        starts = self.adj_offsets[rows]
        counts = self.adj_offsets[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        bounds = np.cumsum(counts)
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - (bounds - counts), counts)
        return self.adj_targets[positions], np.repeat(values[rows], counts)

    def reorder(self, permutation: np.ndarray) -> "RecordBatch":
        """A new batch with rows permuted (adjacency positions remapped).

        Returns ``self`` when the permutation is the identity — after
        the first job every batch is already in repr-sorted key order,
        so the steady-state iteration pays no reordering cost.
        """
        n = len(self.keys)
        if np.array_equal(permutation, np.arange(n, dtype=permutation.dtype)):
            return self
        inverse = np.empty(n, dtype=np.int64)
        inverse[permutation] = np.arange(n, dtype=np.int64)
        counts = self.degrees[permutation]
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        starts = self.adj_offsets[permutation]
        total = self.total_adjacency
        if total:
            bounds = np.cumsum(counts)
            positions = np.arange(total, dtype=np.int64)
            positions += np.repeat(starts - (bounds - counts), counts)
            targets = inverse[self.adj_targets[positions]]
        else:
            targets = self.adj_targets
        return RecordBatch(
            keys=self.keys[permutation],
            adj_offsets=offsets,
            adj_targets=targets,
            columns={
                name: column[permutation]
                for name, column in self.columns.items()
            },
        )


def combine_min_messages(
    num_rows: int, targets: np.ndarray, payloads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row minimum over delivered messages (sort + reduceat).

    Returns ``(min_message, has_message)`` arrays over all rows; rows
    with no message keep an undefined minimum and a ``False`` flag.
    This is the columnar combiner for the min-semantics jobs — the
    same reduction the scalar combine (``min(candidates)``) and reduce
    (``min`` over surviving candidates) apply, fused into one pass.
    """
    minimum = np.zeros(num_rows, dtype=np.int64)
    has_message = np.zeros(num_rows, dtype=bool)
    if targets.size:
        order = np.argsort(targets, kind="stable")
        sorted_targets = targets[order]
        sorted_payloads = payloads[order]
        boundaries = np.nonzero(
            np.r_[True, sorted_targets[1:] != sorted_targets[:-1]]
        )[0]
        group_keys = sorted_targets[boundaries]
        minimum[group_keys] = np.minimum.reduceat(sorted_payloads, boundaries)
        has_message[group_keys] = True
    return minimum, has_message


# -- vectorized CRC32 ----------------------------------------------------

def _crc32_table() -> np.ndarray:
    """The standard reflected CRC-32 (IEEE 802.3) lookup table."""
    table = np.zeros(256, dtype=np.uint32)
    for index in range(256):
        crc = np.uint32(index)
        for _bit in range(8):
            if crc & np.uint32(1):
                crc = np.uint32(0xEDB88320) ^ (crc >> np.uint32(1))
            else:
                crc = crc >> np.uint32(1)
        table[index] = crc
    return table


_CRC32_TABLE = _crc32_table()


def crc32_rows(data: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """CRC32 of each row of a padded uint8 matrix, vectorized.

    ``data`` is ``[n, width]`` with each row's payload in its first
    ``lengths[i]`` bytes; padding bytes are ignored. Matches
    ``zlib.crc32`` on every row (tested in
    ``tests/platforms/test_mapreduce_batch.py``). The loop is over the
    *width* (key length, a handful of bytes), not the row count, so a
    million keys cost ``width`` table gathers.
    """
    crc = np.full(len(data), 0xFFFFFFFF, dtype=np.uint32)
    for column in range(data.shape[1]):
        active = lengths > column
        if not active.any():
            break
        byte = data[active, column].astype(np.uint32)
        current = crc[active]
        crc[active] = _CRC32_TABLE[(current ^ byte) & np.uint32(0xFF)] ^ (
            current >> np.uint32(8)
        )
    return crc ^ np.uint32(0xFFFFFFFF)


def str_key_workers(keys: list, num_workers: int) -> np.ndarray | None:
    """Vectorized reduce-worker assignment for plain-ASCII str keys.

    Reproduces ``zlib.crc32(repr(key).encode()) % num_workers`` for
    every key in one encoded-array pass: for a printable-ASCII string
    without quotes or backslashes, ``repr`` is exactly
    ``"'" + key + "'"``, so the whole batch encodes into one padded
    byte matrix and hashes through :func:`crc32_rows`. Returns
    ``None`` when any key needs Python's general ``repr`` (non-str,
    non-ASCII, embedded quote/backslash/control characters) — the
    caller falls back to the scalar partitioner.
    """
    if not keys or not all(type(key) is str for key in keys):
        return None
    unicode_keys = np.asarray(keys, dtype="U")
    try:
        encoded = unicode_keys.astype("S")
    except UnicodeEncodeError:
        return None
    width = encoded.dtype.itemsize
    if width == 0:
        # All keys empty: repr is '' for each.
        matrix = np.zeros((len(keys), 0), dtype=np.uint8)
        lengths = np.zeros(len(keys), dtype=np.int64)
    else:
        matrix = encoded.view(np.uint8).reshape(len(keys), width)
        lengths = np.char.str_len(unicode_keys).astype(np.int64)
        payload = (matrix >= 0x20) & (matrix <= 0x7E)
        clean = payload | (matrix == 0)
        quoteless = (matrix != 0x27) & (matrix != 0x5C)
        # Interior NULs would alias with padding; the length check
        # rejects them along with any non-printable byte.
        if not (
            bool((clean & quoteless).all())
            and bool((payload.sum(axis=1) == lengths).all())
        ):
            return None
    quoted = np.zeros((len(keys), matrix.shape[1] + 2), dtype=np.uint8)
    quoted[:, 0] = 0x27
    if matrix.shape[1]:
        quoted[:, 1:-1] = matrix
    np.put_along_axis(
        quoted, (lengths + 1)[:, None], np.uint8(0x27), axis=1
    )
    hashes = crc32_rows(quoted, lengths + 2)
    return (hashes.astype(np.int64)) % num_workers
