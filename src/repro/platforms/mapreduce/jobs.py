"""The Graphalytics algorithms as MapReduce job chains.

Each algorithm follows the classic Hadoop formulation: the adjacency
list is a value in every record, so *every iteration re-reads and
re-writes the whole graph* — the structural reason the paper finds
MapReduce "two orders of magnitude slower" than the in-memory
platforms, while also never running out of memory.

Record shapes (tags distinguish record kinds within a job):

* BFS:   ``(vertex, (adj, dist))`` + ``('D', dist)`` messages;
* CONN:  ``(vertex, (adj, label))`` + ``('L', label)`` messages;
* CD:    ``(vertex, (adj, label, score))`` + ``('M', ...)`` votes;
* STATS: adjacency broadcast + aggregation job;
* EVO:   ``(vertex, (adj, burned, fresh))`` + ``('B', ...)`` burns;
* PR:    ``(vertex, (adj, rank))`` + ``('R', share)`` contributions;
* SSSP:  ``(vertex, (wadj, dist, changed))`` + ``('D', dist)`` offers;
* LCC:   adjacency broadcast, per-vertex coefficients out.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.algorithms import evo as evo_ref
from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.lcc import lcc_value
from repro.platforms.mapreduce.engine import MapReduceJob

__all__ = [
    "BFSIterationJob",
    "ConnIterationJob",
    "CDIterationJob",
    "StatsTriangleJob",
    "StatsAggregationJob",
    "EvoHopJob",
    "PageRankIterationJob",
    "SSSPIterationJob",
    "LCCJob",
]


class BFSIterationJob(MapReduceJob):
    """One BFS level expansion.

    The frontier (vertices whose distance equals ``iteration - 1``)
    emits candidate distances to its neighbors; the reducer keeps the
    adjacency record and adopts the smallest candidate if the vertex
    is still unreached, bumping the ``changed`` counter.
    """

    supports_batch = True

    def __init__(self, iteration: int):
        self.iteration = iteration
        self.name = f"bfs-{iteration}"

    def batch_emitters(self, batch) -> np.ndarray:
        """Frontier mask: vertices reached in the previous iteration."""
        return batch.columns["dist"] == self.iteration - 1

    def batch_message_values(self, batch) -> np.ndarray:
        """Candidate distance every frontier vertex offers: dist + 1."""
        return batch.columns["dist"] + 1

    def batch_apply(
        self,
        batch,
        minimum: np.ndarray,
        has_message: np.ndarray,
        counters: dict,
    ) -> dict[str, np.ndarray]:
        """Adopt the smallest candidate where still unreached."""
        dist = batch.columns["dist"]
        newly = (dist == UNREACHABLE) & has_message
        changed = int(newly.sum())
        if changed:
            counters["changed"] = counters.get("changed", 0) + changed
        return {"dist": np.where(newly, minimum, dist)}

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        adj, dist = value
        yield key, ("A", adj, dist)
        if dist == self.iteration - 1:
            for neighbor in adj:
                yield neighbor, ("D", dist + 1)

    def combine(self, key: Any, values: list) -> list:
        """Map-side pre-aggregation (see :class:`MapReduceJob`)."""
        # Keep the adjacency record; combine candidate distances to one.
        kept = [v for v in values if v[0] == "A"]
        candidates = [v[1] for v in values if v[0] == "D"]
        if candidates:
            kept.append(("D", min(candidates)))
        return kept

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        adj, dist = (), UNREACHABLE
        candidate = None
        for value in values:
            if value[0] == "A":
                adj, dist = value[1], value[2]
            else:
                candidate = value[1] if candidate is None else min(candidate, value[1])
        if dist == UNREACHABLE and candidate is not None:
            dist = candidate
            counters["changed"] = counters.get("changed", 0) + 1
        yield key, (adj, dist)


class ConnIterationJob(MapReduceJob):
    """One HashMin label-propagation iteration for CONN."""

    supports_batch = True

    def __init__(self, iteration: int):
        self.iteration = iteration
        self.name = f"conn-{iteration}"

    def batch_emitters(self, batch) -> np.ndarray:
        """Every vertex broadcasts its label each iteration."""
        return np.ones(len(batch), dtype=bool)

    def batch_message_values(self, batch) -> np.ndarray:
        """The broadcast payload is the current label."""
        return batch.columns["label"]

    def batch_apply(
        self,
        batch,
        minimum: np.ndarray,
        has_message: np.ndarray,
        counters: dict,
    ) -> dict[str, np.ndarray]:
        """HashMin: adopt a strictly smaller received label."""
        label = batch.columns["label"]
        improved = has_message & (minimum < label)
        changed = int(improved.sum())
        if changed:
            counters["changed"] = counters.get("changed", 0) + changed
        return {"label": np.where(improved, minimum, label)}

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        adj, label = value
        yield key, ("A", adj, label)
        for neighbor in adj:
            yield neighbor, ("L", label)

    def combine(self, key: Any, values: list) -> list:
        """Map-side pre-aggregation (see :class:`MapReduceJob`)."""
        kept = [v for v in values if v[0] == "A"]
        labels = [v[1] for v in values if v[0] == "L"]
        if labels:
            kept.append(("L", min(labels)))
        return kept

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        adj, label = (), None
        smallest = None
        for value in values:
            if value[0] == "A":
                adj, label = value[1], value[2]
            else:
                smallest = value[1] if smallest is None else min(smallest, value[1])
        if smallest is not None and smallest < label:
            label = smallest
            counters["changed"] = counters.get("changed", 0) + 1
        yield key, (adj, label)


class CDIterationJob(MapReduceJob):
    """One synchronous Leung et al. propagation step for CD."""

    def __init__(self, iteration: int, hop_attenuation: float, node_preference: float):
        self.iteration = iteration
        self.hop_attenuation = hop_attenuation
        self.node_preference = node_preference
        self.name = f"cd-{iteration}"

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        adj, label, score = value
        yield key, ("S", adj, label, score)
        degree = len(adj)
        for neighbor in adj:
            yield neighbor, ("M", label, score, degree)

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        adj, label, score = (), None, 1.0
        weight_by_label: dict[int, float] = {}
        best_score_by_label: dict[int, float] = {}
        for value in values:
            if value[0] == "S":
                adj, label, score = value[1], value[2], value[3]
            else:
                _tag, other_label, other_score, other_degree = value
                vote = other_score * other_degree ** self.node_preference
                weight_by_label[other_label] = (
                    weight_by_label.get(other_label, 0.0) + vote
                )
                best = best_score_by_label.get(other_label, float("-inf"))
                if other_score > best:
                    best_score_by_label[other_label] = other_score
        if weight_by_label:
            best_label = min(
                weight_by_label, key=lambda lbl: (-weight_by_label[lbl], lbl)
            )
            if best_label != label:
                label = best_label
                score = best_score_by_label[best_label] - self.hop_attenuation
                counters["changed"] = counters.get("changed", 0) + 1
        yield key, (adj, label, score)


class StatsTriangleJob(MapReduceJob):
    """STATS phase 1: adjacency broadcast and local clustering.

    Every vertex ships its adjacency list to each neighbor; the
    reducer intersects received lists with the vertex's own list and
    emits the per-vertex local clustering coefficient along with the
    global count contributions.
    """

    name = "stats-triangles"

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        adj = value
        yield key, ("A", adj)
        if len(adj) >= 2:
            for neighbor in adj:
                yield neighbor, ("N", adj)

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        own: tuple = ()
        neighbor_lists = []
        for value in values:
            if value[0] == "A":
                own = value[1]
            else:
                neighbor_lists.append(value[1])
        degree = len(own)
        yield "vertices", 1
        yield "edges", degree
        if degree >= 2 and neighbor_lists:
            own_set = set(own)
            links_twice = sum(
                1
                for neighbor_list in neighbor_lists
                for w in neighbor_list
                if w in own_set
            )
            yield "clustering_sum", links_twice / (degree * (degree - 1))


class StatsAggregationJob(MapReduceJob):
    """STATS phase 2: global sums of the per-vertex contributions."""

    name = "stats-aggregate"

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        yield key, value

    def combine(self, key: Any, values: list) -> list:
        """Map-side pre-aggregation (see :class:`MapReduceJob`)."""
        return [sum(values)]

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        yield key, sum(values)


class PageRankIterationJob(MapReduceJob):
    """One PageRank update round.

    Every vertex re-emits its adjacency record and sends its
    ``rank / degree`` share to each neighbor; the combiner pre-sums
    shares per (map task, target); the reducer applies the damped
    update. Runs a fixed number of rounds — no ``changed`` counter,
    matching the all-active LDBC semantics.

    Records stay non-columnar (float ranks ride in the value tuple),
    so both bulk modes take the identical scalar record path.
    """

    def __init__(self, iteration: int, num_vertices: int, damping: float):
        self.num_vertices = num_vertices
        self.damping = damping
        self.name = f"pagerank-{iteration}"

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        adj, rank = value
        yield key, ("A", adj)
        if adj:
            share = rank / len(adj)
            for neighbor in adj:
                yield neighbor, ("R", share)

    def combine(self, key: Any, values: list) -> list:
        """Map-side pre-aggregation (see :class:`MapReduceJob`)."""
        kept = [v for v in values if v[0] == "A"]
        total = 0.0
        shares = False
        for value in values:
            if value[0] == "R":
                total += value[1]
                shares = True
        if shares:
            kept.append(("R", total))
        return kept

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        adj = ()
        total = 0.0
        for value in values:
            if value[0] == "A":
                adj = value[1]
            else:
                total += value[1]
        base = (1.0 - self.damping) / self.num_vertices
        yield key, (adj, base + self.damping * total)


class SSSPIterationJob(MapReduceJob):
    """One weighted label-correcting relaxation round.

    Records carry ``(wadj, dist, changed)`` where ``wadj`` is the
    weighted adjacency as ``(neighbor, weight)`` pairs. Vertices whose
    distance improved last round offer ``dist + weight`` along every
    edge; the reducer adopts a strictly smaller minimum offer and
    bumps the ``changed`` counter the driver loops on.
    """

    def __init__(self, iteration: int):
        self.name = f"sssp-{iteration}"

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        wadj, dist, changed = value
        yield key, ("A", wadj, dist)
        if changed:
            for neighbor, weight in wadj:
                yield neighbor, ("D", dist + weight)

    def combine(self, key: Any, values: list) -> list:
        """Map-side pre-aggregation (see :class:`MapReduceJob`)."""
        kept = [v for v in values if v[0] == "A"]
        offers = [v[1] for v in values if v[0] == "D"]
        if offers:
            kept.append(("D", min(offers)))
        return kept

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        wadj, dist = (), None
        best = None
        for value in values:
            if value[0] == "A":
                wadj, dist = value[1], value[2]
            else:
                best = value[1] if best is None else min(best, value[1])
        changed = best is not None and best < dist
        if changed:
            dist = best
            counters["changed"] = counters.get("changed", 0) + 1
        yield key, (wadj, dist, changed)


class LCCJob(MapReduceJob):
    """Per-vertex local clustering coefficients in one job.

    The STATS triangle pass, but the reducer emits every vertex's
    coefficient (via the shared :func:`~repro.algorithms.lcc.
    lcc_value` expression) instead of global sum contributions.
    """

    name = "lcc-triangles"

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        adj = value
        yield key, ("A", adj)
        if len(adj) >= 2:
            for neighbor in adj:
                yield neighbor, ("N", adj)

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        own: tuple = ()
        neighbor_lists = []
        for value in values:
            if value[0] == "A":
                own = value[1]
            else:
                neighbor_lists.append(value[1])
        degree = len(own)
        if degree < 2 or not neighbor_lists:
            yield key, 0.0
            return
        own_set = set(own)
        links_twice = sum(
            1
            for neighbor_list in neighbor_lists
            for w in neighbor_list
            if w in own_set
        )
        yield key, lcc_value(links_twice // 2, degree)


class EvoHopJob(MapReduceJob):
    """One fire-propagation hop of EVO.

    Records carry ``(adj, burned, fresh)`` where ``burned`` maps
    arrival → burn depth and ``fresh`` holds the arrivals that burned
    this vertex in the previous hop (and therefore spread now, via the
    shared deterministic kernel).
    """

    def __init__(self, p_forward: float, max_hops: int, seed: int, hop: int):
        self.p_forward = p_forward
        self.max_hops = max_hops
        self.seed = seed
        self.name = f"evo-hop-{hop}"

    def map(self, key: Any, value: Any, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Emit intermediate records (see :class:`MapReduceJob`)."""
        adj, burned, fresh = value
        yield key, ("S", adj, burned)
        for arrival, depth in sorted(fresh.items()):
            if depth >= self.max_hops:
                continue
            candidates = sorted(adj)
            budget = evo_ref.burn_budget(self.seed, arrival, key, self.p_forward)
            victims = evo_ref.burn_victims(
                candidates, budget, self.seed, arrival, key
            )
            for victim in victims:
                yield victim, ("B", arrival, depth + 1)

    def reduce(self, key: Any, values: list, counters: dict) -> Iterable[tuple[Any, Any]]:
        """Reduce one grouped key (see :class:`MapReduceJob`)."""
        adj, burned = (), {}
        attempts: list[tuple[int, int]] = []
        for value in values:
            if value[0] == "S":
                adj, burned = value[1], dict(value[2])
            else:
                attempts.append((value[1], value[2]))
        fresh: dict[int, int] = {}
        for arrival, depth in sorted(attempts):
            if arrival not in burned:
                burned[arrival] = depth
                fresh[arrival] = depth
                counters["burned"] = counters.get("burned", 0) + 1
        yield key, (adj, burned, fresh)
