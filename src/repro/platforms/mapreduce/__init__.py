"""Hadoop MapReduce platform.

The paper: "Hadoop MapReduce is an Apache open-source project
implementing the MapReduce programming model introduced by Google.
Specifically, we use Hadoop MapReduce version 2, which runs on top of
the Hadoop YARN resource manager." And, on its benchmark behaviour:
"MapReduce can be two orders of magnitude slower than Giraph and
GraphX [...] However, MapReduce does not need to keep graph data in
memory during processing and thus does not crash even when processing
the largest workload."

:mod:`repro.platforms.mapreduce.engine` implements the execution model
(map → combine → partition/sort/shuffle → reduce, with HDFS-style
replicated storage between jobs), and
:mod:`repro.platforms.mapreduce.jobs` expresses the five Graphalytics
algorithms as (chains of) MapReduce jobs driven by counters.
"""

from repro.platforms.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.platforms.mapreduce.driver import MapReducePlatform

__all__ = ["MapReduceEngine", "MapReduceJob", "MapReducePlatform"]
