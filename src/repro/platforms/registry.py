"""Platform registry: create drivers by name.

The Benchmark Core resolves configured platform names through this
registry, which is also the extension point for third-party drivers
(the paper's "API that will enable third party developers to port our
benchmark to their graph processing platforms"): call
:func:`register_platform` with a new driver class.
"""

from __future__ import annotations

from typing import Callable

from repro.core.cost import ClusterSpec
from repro.core.errors import ConfigurationError
from repro.core.platform_api import Platform

__all__ = [
    "available_platforms",
    "create_platform",
    "create_platform_fleet",
    "is_single_machine",
    "register_platform",
]

_REGISTRY: dict[str, Callable[..., Platform]] = {}
_BUILTINS_LOADED = False


def register_platform(name: str, factory: Callable[..., Platform]) -> None:
    """Register a platform driver factory under a configuration name."""
    if not name:
        raise ConfigurationError("platform name must be non-empty")
    _REGISTRY[name] = factory


def available_platforms() -> list[str]:
    """Names of all registered platform drivers."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def create_platform(name: str, cluster: ClusterSpec | None = None) -> Platform:
    """Instantiate a registered platform driver.

    ``cluster=None`` uses the driver's built-in default spec
    (single-machine platforms have one; cluster platforms require an
    explicit spec).
    """
    _ensure_builtins()
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown platform {name!r}; available: {sorted(_REGISTRY)}"
        )
    factory = _REGISTRY[name]
    try:
        return factory() if cluster is None else factory(cluster)
    except TypeError as exc:
        raise ConfigurationError(
            f"platform {name!r} requires an explicit cluster spec"
        ) from exc


def is_single_machine(name: str) -> bool:
    """Whether a registered platform runs on a single machine."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise ConfigurationError(f"unknown platform {name!r}")
    return bool(getattr(_REGISTRY[name], "single_machine", False))


def create_platform_fleet(
    distributed: ClusterSpec,
    overrides: dict[str, ClusterSpec] | None = None,
    names: list[str] | None = None,
) -> list[Platform]:
    """One driver per registered platform, with sensible specs.

    Cluster platforms get ``distributed``; single-machine platforms
    get their built-in default machine. ``overrides`` pins a specific
    spec per platform name (e.g. a scaled Neo4j machine).
    """
    overrides = overrides or {}
    fleet = []
    for name in names if names is not None else available_platforms():
        if name in overrides:
            fleet.append(create_platform(name, overrides[name]))
        elif is_single_machine(name):
            fleet.append(create_platform(name))
        else:
            fleet.append(create_platform(name, distributed))
    return fleet


def _ensure_builtins() -> None:
    """Lazily register the built-in drivers (avoids import cycles)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.platforms.columnar.driver import VirtuosoPlatform
    from repro.platforms.dataflow.driver import StratospherePlatform
    from repro.platforms.gas.driver import GraphLabPlatform
    from repro.platforms.gpu.driver import MedusaPlatform
    from repro.platforms.graphdb.driver import Neo4jPlatform
    from repro.platforms.mapreduce.driver import MapReducePlatform
    from repro.platforms.pregel.driver import GiraphPlatform
    from repro.platforms.rddgraph.driver import GraphXPlatform

    _REGISTRY.update(
        {
            GiraphPlatform.name: GiraphPlatform,
            MapReducePlatform.name: MapReducePlatform,
            GraphXPlatform.name: GraphXPlatform,
            Neo4jPlatform.name: Neo4jPlatform,
            GraphLabPlatform.name: GraphLabPlatform,
            VirtuosoPlatform.name: VirtuosoPlatform,
            MedusaPlatform.name: MedusaPlatform,
            StratospherePlatform.name: StratospherePlatform,
        }
    )
