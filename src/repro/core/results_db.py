"""The Results database (paper Figure 2).

"The design also includes a database for Results that is hosted by us
online and accepts results submissions from Graphalytics users." This
reproduction implements the database as a local JSON-lines store with
the submission/query API such a service exposes; the online hosting is
out of scope (it is infrastructure, not benchmark behaviour).
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.benchmark import BenchmarkResult, BenchmarkSuiteResult
from repro.core.chokepoints import analyze_profile
from repro.core.stats import RuntimeStats

__all__ = ["ResultsDatabase", "StoredResult"]


@dataclass(frozen=True)
class StoredResult:
    """One submitted measurement (the database's row format).

    The choke-point columns (``dominant_chokepoint`` through
    ``max_skew``) and the repetition-statistics columns
    (``runtime_mean`` through ``num_repetitions``) were added after
    the first schema; they default to ``None`` so rows written by
    older versions still parse.
    """

    submitted_at: float
    platform: str
    graph: str
    algorithm: str
    status: str
    runtime_seconds: float | None
    kteps: float | None
    failure_reason: str | None
    cluster: str | None
    # Per-cell choke-point indicators (paper Section 2.1).
    dominant_chokepoint: str | None = None
    num_rounds: int | None = None
    remote_bytes: float | None = None
    max_skew: float | None = None
    # Repetition statistics (the SoK statistical-rigor columns):
    # ``runtime_seconds`` stays the headline mean for compatibility;
    # these columns carry the spread behind it.
    runtime_mean: float | None = None
    runtime_std: float | None = None
    num_repetitions: int | None = None

    def runtime_stats(self) -> RuntimeStats | None:
        """The row's repetition statistics, when recorded."""
        if (
            self.runtime_mean is None
            or self.runtime_std is None
            or self.num_repetitions is None
            or self.num_repetitions < 1
        ):
            return None
        return RuntimeStats.from_moments(
            self.runtime_mean, self.runtime_std, self.num_repetitions
        )

    @classmethod
    def from_result(cls, result: BenchmarkResult) -> "StoredResult":
        """Convert a benchmark result into a database row."""
        cluster = None
        chokepoints = result.chokepoints
        num_rounds = None
        remote_bytes = None
        if result.run is not None:
            profile = result.run.profile
            cluster = profile.cluster.name
            num_rounds = profile.num_rounds
            remote_bytes = profile.total_remote_bytes
            if chokepoints is None:
                chokepoints = analyze_profile(profile)
        stats = result.runtime_stats
        return cls(
            # Real submission timestamp of the archived result row.
            submitted_at=time.time(),  # quality: ignore[determinism]
            platform=result.platform,
            graph=result.graph_name,
            algorithm=result.algorithm.value,
            status=result.status,
            runtime_seconds=result.runtime_seconds,
            kteps=result.kteps,
            failure_reason=result.failure_reason,
            cluster=cluster,
            dominant_chokepoint=(
                chokepoints.dominant() if chokepoints is not None else None
            ),
            num_rounds=num_rounds,
            remote_bytes=remote_bytes,
            max_skew=(
                chokepoints.max_skew if chokepoints is not None else None
            ),
            runtime_mean=stats.mean if stats is not None else None,
            runtime_std=stats.std if stats is not None else None,
            num_repetitions=stats.n if stats is not None else None,
        )


class ResultsDatabase:
    """Append-only JSON-lines store of benchmark results."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Malformed rows skipped by the most recent :meth:`query`.
        self.skipped_rows = 0

    def submit(self, suite: BenchmarkSuiteResult) -> int:
        """Append every result of a suite; returns the rows written."""
        written = 0
        with open(self.path, "a", encoding="utf-8") as handle:
            for result in suite.results:
                row = asdict(StoredResult.from_result(result))
                handle.write(json.dumps(row) + "\n")
                written += 1
        return written

    def query(
        self,
        platform: str | None = None,
        graph: str | None = None,
        algorithm: str | None = None,
        status: str | None = None,
    ) -> list[StoredResult]:
        """All stored rows matching the given filters.

        Rows that do not parse into :class:`StoredResult` — unknown
        keys from a *newer* schema, missing required keys from a
        truncated write, or invalid JSON — are skipped, counted in
        :attr:`skipped_rows`, and reported once per query as a
        ``UserWarning``; one bad row never poisons the archive.
        """
        self.skipped_rows = 0
        if not self.path.exists():
            return []
        rows: list[StoredResult] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = StoredResult(**json.loads(line))
                except (TypeError, ValueError):
                    self.skipped_rows += 1
                    continue
                if platform is not None and record.platform != platform:
                    continue
                if graph is not None and record.graph != graph:
                    continue
                if algorithm is not None and record.algorithm != algorithm:
                    continue
                if status is not None and record.status != status:
                    continue
                rows.append(record)
        if self.skipped_rows:
            warnings.warn(
                f"{self.path}: skipped {self.skipped_rows} malformed "
                "result row(s) from an incompatible schema",
                stacklevel=2,
            )
        return rows

    def best_runtime(
        self, platform: str, graph: str, algorithm: str
    ) -> float | None:
        """Fastest successful runtime recorded for a combination."""
        runtimes = [
            row.runtime_seconds
            for row in self.query(platform, graph, algorithm, status="success")
            if row.runtime_seconds is not None
        ]
        return min(runtimes, default=None)

    def leaderboard(self, graph: str, algorithm: str) -> list[tuple[str, float]]:
        """Platforms ranked by best runtime for one workload.

        The paper's Results database "hosted by us online" exists to
        compare submissions; this is that comparison, over everything
        submitted locally.
        """
        best: dict[str, float] = {}
        for row in self.query(graph=graph, algorithm=algorithm, status="success"):
            if row.runtime_seconds is None:
                continue
            current = best.get(row.platform)
            if current is None or row.runtime_seconds < current:
                best[row.platform] = row.runtime_seconds
        return sorted(best.items(), key=lambda item: item[1])

    # -- submissions ------------------------------------------------------

    #: Version tag of the submission document format.
    SUBMISSION_SCHEMA = "graphalytics-results-v1"

    @staticmethod
    def export_submission(
        suite: BenchmarkSuiteResult, system_info: dict | None = None
    ) -> dict:
        """Package a suite as a submission document.

        This is the payload a user would upload to the online results
        service: schema-versioned, with the system description the
        paper's reports require ("includes all relevant configuration
        information").
        """
        return {
            "schema": ResultsDatabase.SUBMISSION_SCHEMA,
            "system": dict(system_info or {}),
            "results": [
                asdict(StoredResult.from_result(result))
                for result in suite.results
            ],
        }

    def import_submission(self, document: dict) -> int:
        """Validate and store a submission document; returns rows added."""
        if document.get("schema") != self.SUBMISSION_SCHEMA:
            raise ValueError(
                f"unsupported submission schema {document.get('schema')!r}; "
                f"expected {self.SUBMISSION_SCHEMA!r}"
            )
        rows = document.get("results")
        if not isinstance(rows, list):
            raise ValueError("submission has no 'results' list")
        parsed = []
        for index, row in enumerate(rows):
            try:
                parsed.append(StoredResult(**row))
            except TypeError as exc:
                raise ValueError(f"results[{index}] is malformed: {exc}") from exc
        with open(self.path, "a", encoding="utf-8") as handle:
            for record in parsed:
                handle.write(json.dumps(asdict(record)) + "\n")
        return len(parsed)
