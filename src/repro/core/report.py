"""The Report Generator (paper Figure 2).

"The Report Generator produces the main outcome of Graphalytics, a
detailed report on the performance of the SUT during the benchmark,
which includes all relevant configuration information."

Reports are plain text (rendered to the console or a file): a runtime
matrix in the layout of the paper's Figure 4 (algorithms × graphs ×
platforms, failures shown as missing), a kTEPS table (Figure 5), and
per-run detail sections with choke-point indicators.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.benchmark import BenchmarkSuiteResult
from repro.core.chokepoints import ChokePointReport, analyze_profile
from repro.core.workload import Algorithm

__all__ = ["ReportGenerator"]

_MISSING = "—"

#: Failure-reason prefixes mapped to short matrix-cell labels; checked
#: in order, first match wins. Reasons with an ``ETL: `` prefix match
#: the same labels (an ETL out-of-memory is still an OOM cell).
_FAILURE_LABELS = (
    ("out-of-memory", "OOM"),
    ("timeout", "T/O"),
    ("time-limit", "T/O"),
    ("worker-crash", "CRASH"),
    ("message-loss", "LOST"),
)


def _failure_label(result) -> str:
    """Short matrix-cell label for a failed/invalid result.

    The paper's Figure 4 leaves failed cells blank; the labels keep
    the matrix compact while still telling OOM apart from timeouts
    ("—" is reserved for combinations that were never run).
    """
    if result.status == "invalid":
        return "INV"
    reason = result.failure_reason or ""
    if reason.startswith("ETL: "):
        reason = reason[len("ETL: "):]
    for prefix, label in _FAILURE_LABELS:
        if reason.startswith(prefix):
            return label
    return "FAIL"


def _cell_chokepoints(result) -> ChokePointReport | None:
    """The choke-point indicators behind one matrix cell, if any.

    Results produced by the Benchmark Core carry them directly;
    hand-built results with a run profile get them computed on the
    fly, and profile-less results render without a choke-point label.
    """
    if result.chokepoints is not None:
        return result.chokepoints
    if result.run is not None:
        return analyze_profile(result.run.profile)
    return None


def _format_runtime(seconds: float | None) -> str:
    if seconds is None:
        return _MISSING
    if seconds >= 100:
        return f"{seconds:.0f}"
    return f"{seconds:.1f}"


def _cell_stats(result):
    """Repetition statistics behind one matrix cell, if recorded.

    Only multi-repetition cells carry a meaningful spread; single
    runs render as a bare mean (and the audit's ``missing-variance``
    rule exists precisely to flag that situation in archived rows).
    """
    stats = getattr(result, "runtime_stats", None)
    if stats is not None and stats.has_spread:
        return stats
    return None


def _format_runtime_cell(result) -> str:
    """Matrix cell text: mean runtime plus ``±std`` when repeated."""
    cell = _format_runtime(result.runtime_seconds)
    stats = _cell_stats(result)
    if stats is not None:
        cell = f"{cell}±{stats.std:.2g}"
    return cell


class ReportGenerator:
    """Renders benchmark suite results into a human-readable report."""

    def __init__(self, configuration: dict | None = None):
        #: Configuration information echoed into the report header.
        self.configuration = configuration or {}

    # -- tables ----------------------------------------------------------

    def runtime_matrix(self, suite: BenchmarkSuiteResult) -> str:
        """Figure 4-style matrix: rows algorithm×graph, columns platforms."""
        platforms = sorted({r.platform for r in suite.results})
        graphs = sorted({r.graph_name for r in suite.results})
        lines = []
        header = f"{'algorithm':<8} {'graph':<16}" + "".join(
            f"{p:>12}" for p in platforms
        )
        lines.append(header)
        lines.append("-" * len(header))
        for algorithm in Algorithm:
            for graph in graphs:
                cells = []
                any_cell = False
                for platform in platforms:
                    result = suite.lookup(platform, graph, algorithm)
                    if result is None:
                        cells.append(f"{_MISSING:>12}")
                        continue
                    any_cell = True
                    if result.succeeded:
                        cell = _format_runtime_cell(result)
                        chokepoints = _cell_chokepoints(result)
                        if chokepoints is not None:
                            # Figure 4 plus the Section 2.1 lens: every
                            # cell names its dominant choke point.
                            cell = f"{cell} {chokepoints.dominant_letter()}"
                        cells.append(f"{cell:>12}")
                    else:
                        cells.append(f"{_failure_label(result):>12}")
                if any_cell:
                    lines.append(
                        f"{algorithm.value:<8} {graph:<16}" + "".join(cells)
                    )
        return "\n".join(lines)

    def kteps_matrix(self, suite: BenchmarkSuiteResult, algorithm: Algorithm) -> str:
        """Figure 5-style kTEPS table for one algorithm."""
        platforms = sorted({r.platform for r in suite.results})
        graphs = sorted({r.graph_name for r in suite.results})
        lines = []
        header = f"{'graph':<16}" + "".join(f"{p:>12}" for p in platforms)
        lines.append(f"kTEPS for {algorithm.value}")
        lines.append(header)
        lines.append("-" * len(header))
        for graph in graphs:
            cells = []
            for platform in platforms:
                result = suite.lookup(platform, graph, algorithm)
                if result is None or not result.succeeded or result.kteps is None:
                    cells.append(f"{_MISSING:>12}")
                else:
                    cells.append(f"{result.kteps:>12.1f}")
            lines.append(f"{graph:<16}" + "".join(cells))
        return "\n".join(lines)

    def failure_section(self, suite: BenchmarkSuiteResult) -> str:
        """List of failures with reasons (the 'missing values')."""
        failures = suite.failures()
        if not failures:
            return "No failures."
        lines = ["Failures:"]
        for result in failures:
            lines.append(
                f"  {result.platform:<12} {result.algorithm.value:<6} "
                f"{result.graph_name:<16} {result.failure_reason}"
            )
        return "\n".join(lines)

    def detail_section(self, suite: BenchmarkSuiteResult) -> str:
        """Per-run choke-point indicators for successful runs."""
        lines = ["Run details (choke-point indicators):"]
        for result in suite.successes():
            profile = result.run.profile
            max_skew = max((r.skew for r in profile.rounds), default=1.0)
            chokepoints = _cell_chokepoints(result)
            dominant = ""
            if chokepoints is not None:
                dominant = f" dominant={chokepoints.dominant()}"
                if chokepoints.network_overhead_share:
                    dominant += (
                        " net-overhead="
                        f"{chokepoints.network_overhead_share:.0%}"
                    )
            lines.append(
                f"  {result.platform:<12} {result.algorithm.value:<6} "
                f"{result.graph_name:<16} rounds={profile.num_rounds:<4} "
                f"net={profile.total_remote_bytes / 2**20:8.2f} MiB "
                f"peak-mem={profile.peak_memory / 2**20:8.2f} MiB "
                f"max-skew={max_skew:5.2f}{dominant}"
            )
        return "\n".join(lines)

    def activity_timeline(self, result, width: int = 40) -> str:
        """ASCII sparkline of active vertices per round for one run.

        Visualizes the convergence-tail choke point ("iterative
        algorithms often have a varying workload in the diverse
        iterations"): a long flat tail after the peak is exactly the
        regime where barriers dominate.
        """
        if result.run is None:
            return "(no run profile)"
        activity = [r.active_vertices for r in result.run.profile.rounds]
        if not activity or max(activity) == 0:
            return "(no activity recorded)"
        levels = " ▁▂▃▄▅▆▇█"
        peak = max(activity)
        bars = "".join(
            levels[min(int(value / peak * (len(levels) - 1)), len(levels) - 1)]
            if peak
            else levels[0]
            for value in activity[:width]
        )
        suffix = "…" if len(activity) > width else ""
        return (
            f"{bars}{suffix} rounds={len(activity)} peak-active={peak}"
        )

    def quality_section(self, quality) -> str:
        """Section 3.5 code-quality summary for one analysis report.

        ``quality`` is a :class:`repro.analysis.QualityReport`; the
        paper ships benchmark results together with code-quality
        reports of the reference implementations, so the benchmark
        report embeds the analyzer's aggregate view.
        """
        lines = ["Code quality (Section 3.5):", f"  {quality.summary()}"]
        severities = quality.findings_by_severity()
        lines.append(
            "  findings: "
            + " ".join(f"{sev}={count}" for sev, count in severities.items())
            + f" suppressed={quality.total_suppressed}"
        )
        for file_report, finding in quality.iter_findings():
            lines.append(
                f"  {file_report.path}:{finding.line}: {finding.severity} "
                f"[{finding.rule}] {finding.message}"
            )
        return "\n".join(lines)

    # -- full report --------------------------------------------------------

    def render(self, suite: BenchmarkSuiteResult, quality=None) -> str:
        """The complete benchmark report as text.

        ``quality`` optionally embeds a code-quality analysis
        (:class:`repro.analysis.QualityReport`) as its own section.
        """
        sections = ["Graphalytics benchmark report", "=" * 31]
        if self.configuration:
            sections.append("Configuration:")
            for key in sorted(self.configuration):
                sections.append(f"  {key} = {self.configuration[key]}")
            sections.append("")
        sections.append("Runtime [s] per algorithm, graph, and platform")
        sections.append(
            "(missing values indicate failures; failed cells are "
            "labeled OOM / T/O / CRASH / LOST / INV / FAIL by cause)"
        )
        sections.append(
            "(cell letters mark the dominant choke point: "
            "N=network, M=memory, L=locality, S=skew)"
        )
        sections.append(self.runtime_matrix(suite))
        sections.append("")
        sections.append(self.kteps_matrix(suite, Algorithm.CONN))
        sections.append("")
        sections.append(self.failure_section(suite))
        sections.append("")
        sections.append(self.detail_section(suite))
        if quality is not None:
            sections.append("")
            sections.append(self.quality_section(quality))
        return "\n".join(sections)

    def write(
        self, suite: BenchmarkSuiteResult, path: str | Path, quality=None
    ) -> Path:
        """Render and save the report; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(suite, quality=quality), encoding="utf-8")
        return path

    # -- HTML ----------------------------------------------------------------

    def render_html(self, suite: BenchmarkSuiteResult) -> str:
        """The report as a self-contained HTML page.

        The paper's harness produces "a detailed report on the
        performance of the SUT"; the HTML rendering is what lands in
        the local file system for browsing.
        """
        platforms = sorted({r.platform for r in suite.results})
        graphs = sorted({r.graph_name for r in suite.results})

        def runtime_rows() -> str:
            rows = []
            for algorithm in Algorithm:
                for graph in graphs:
                    cells = []
                    relevant = False
                    for platform in platforms:
                        result = suite.lookup(platform, graph, algorithm)
                        if result is None:
                            cells.append("<td></td>")
                            continue
                        relevant = True
                        if result.succeeded:
                            runtime = _format_runtime_cell(result)
                            stats = _cell_stats(result)
                            hints = []
                            if stats is not None:
                                hints.append(
                                    f"n={stats.n} CI95=[{stats.ci95_low:.2f}, "
                                    f"{stats.ci95_high:.2f}]"
                                )
                            chokepoints = _cell_chokepoints(result)
                            if chokepoints is not None:
                                dominant = chokepoints.dominant()
                                hints.append(
                                    f"dominant choke point: {dominant}"
                                )
                                title = _escape("; ".join(hints))
                                cells.append(
                                    f'<td title="{title}">{runtime} '
                                    f"<sup>{chokepoints.dominant_letter()}"
                                    "</sup></td>"
                                )
                            elif hints:
                                title = _escape("; ".join(hints))
                                cells.append(
                                    f'<td title="{title}">{runtime}</td>'
                                )
                            else:
                                cells.append(f"<td>{runtime}</td>")
                        else:
                            reason = _escape(result.failure_reason or "failed")
                            cells.append(
                                f'<td class="failure" title="{reason}">'
                                f"{_failure_label(result)}</td>"
                            )
                    if relevant:
                        rows.append(
                            f"<tr><td>{algorithm.value}</td>"
                            f"<td>{_escape(graph)}</td>{''.join(cells)}</tr>"
                        )
            return "\n".join(rows)

        config_rows = "\n".join(
            f"<tr><td>{_escape(str(key))}</td><td>{_escape(str(value))}</td></tr>"
            for key, value in sorted(self.configuration.items())
        )
        header_cells = "".join(f"<th>{_escape(p)}</th>" for p in platforms)
        failures = "\n".join(
            f"<li>{_escape(r.platform)} / {r.algorithm.value} / "
            f"{_escape(r.graph_name)}: {_escape(r.failure_reason or '')}</li>"
            for r in suite.failures()
        ) or "<li>none</li>"

        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Graphalytics benchmark report</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; margin-bottom: 1.5em; }}
th, td {{ border: 1px solid #999; padding: 0.3em 0.8em; text-align: right; }}
th {{ background: #eee; }}
td.failure {{ background: #fdd; text-align: center; }}
</style>
</head>
<body>
<h1>Graphalytics benchmark report</h1>
<h2>Configuration</h2>
<table><tbody>{config_rows}</tbody></table>
<h2>Runtime [s] per algorithm, graph, and platform</h2>
<p>Failed cells (highlighted) are labeled by cause; hover for the
full failure reason. Superscript letters mark each cell's dominant
choke point (N=network, M=memory, L=locality, S=skew).</p>
<table>
<thead><tr><th>algorithm</th><th>graph</th>{header_cells}</tr></thead>
<tbody>
{runtime_rows()}
</tbody>
</table>
<h2>Failures</h2>
<ul>{failures}</ul>
</body>
</html>
"""

    def write_html(self, suite: BenchmarkSuiteResult, path: str | Path) -> Path:
        """Render and save the HTML report; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_html(suite), encoding="utf-8")
        return path


def _escape(text: str) -> str:
    """Minimal HTML escaping for report cells."""
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
