"""Code-quality reporting for the reference implementations (Section 3.5).

The paper: "in Graphalytics, the code for the reference
implementations is accompanied by code quality reports, such as code
complexity, bugs discovered through static analysis, etc. [...] all
code commits are statically analyzed by SonarQube, which automatically
signals regressions, such as an increase in the number of potential
bugs."

This module is that analyzer for the reproduction itself: an AST-based
static analysis producing per-file and aggregate metrics (cyclomatic
complexity, function length, documentation coverage) and potential-bug
findings (bare excepts, mutable default arguments, ``== None``
comparisons), plus SonarQube-style regression detection between two
reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FunctionMetrics",
    "Finding",
    "FileReport",
    "QualityReport",
    "analyze_source",
    "analyze_file",
    "analyze_tree",
    "detect_regressions",
]

_BRANCH_NODES = (
    ast.If,
    ast.For,
    ast.While,
    ast.ExceptHandler,
    ast.With,
    ast.Assert,
    ast.BoolOp,
    ast.IfExp,
)


@dataclass(frozen=True)
class FunctionMetrics:
    """Static metrics of one function or method."""

    name: str
    line: int
    complexity: int
    length: int
    has_docstring: bool
    #: True for closures defined inside another function; excluded
    #: from documentation coverage (they are not API surface).
    nested: bool = False


@dataclass(frozen=True)
class Finding:
    """One potential bug discovered by static analysis."""

    rule: str
    message: str
    line: int


@dataclass
class FileReport:
    """Metrics and findings for one source file."""

    path: str
    lines_of_code: int = 0
    functions: list[FunctionMetrics] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def max_complexity(self) -> int:
        """Highest cyclomatic complexity in the file."""
        return max((f.complexity for f in self.functions), default=0)

    @property
    def documented_share(self) -> float:
        """Fraction of public top-level functions with docstrings."""
        public = [
            f
            for f in self.functions
            if not f.name.startswith("_") and not f.nested
        ]
        if not public:
            return 1.0
        return sum(1 for f in public if f.has_docstring) / len(public)


@dataclass
class QualityReport:
    """Aggregate report over a source tree."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def total_lines(self) -> int:
        """Non-blank, non-comment lines over all files."""
        return sum(f.lines_of_code for f in self.files)

    @property
    def total_functions(self) -> int:
        """Function definitions over all files."""
        return sum(len(f.functions) for f in self.files)

    @property
    def total_findings(self) -> int:
        """Potential bugs over all files."""
        return sum(len(f.findings) for f in self.files)

    @property
    def mean_complexity(self) -> float:
        """Mean cyclomatic complexity over all functions."""
        metrics = [m.complexity for f in self.files for m in f.functions]
        return sum(metrics) / len(metrics) if metrics else 0.0

    @property
    def documented_share(self) -> float:
        """Fraction of public top-level functions with docstrings."""
        public = [
            m
            for f in self.files
            for m in f.functions
            if not m.name.startswith("_") and not m.nested
        ]
        if not public:
            return 1.0
        return sum(1 for m in public if m.has_docstring) / len(public)

    def summary(self) -> str:
        """One-line aggregate summary (the report header)."""
        return (
            f"files={len(self.files)} loc={self.total_lines} "
            f"functions={self.total_functions} "
            f"mean-complexity={self.mean_complexity:.2f} "
            f"documented={self.documented_share:.0%} "
            f"potential-bugs={self.total_findings}"
        )


class _Analyzer(ast.NodeVisitor):
    """Collects function metrics and bug-pattern findings."""

    def __init__(self):
        self.functions: list[FunctionMetrics] = []
        self.findings: list[Finding] = []
        self._function_depth = 0

    # -- functions -------------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        complexity = 1 + sum(
            isinstance(child, _BRANCH_NODES) for child in ast.walk(node)
        )
        end = getattr(node, "end_lineno", node.lineno)
        self.functions.append(
            FunctionMetrics(
                name=node.name,
                line=node.lineno,
                complexity=complexity,
                length=end - node.lineno + 1,
                has_docstring=ast.get_docstring(node) is not None,
                nested=self._function_depth > 0,
            )
        )
        self._check_mutable_defaults(node)
        self._function_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Collect metrics for a function definition."""
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Collect metrics for an async function definition."""
        self._visit_function(node)

    def _check_mutable_defaults(self, node) -> None:
        for default in list(node.args.defaults) + list(node.args.kw_defaults):
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.findings.append(
                    Finding(
                        rule="mutable-default",
                        message=f"function {node.name!r} has a mutable default",
                        line=default.lineno,
                    )
                )

    # -- bug patterns ------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag bare except clauses."""
        if node.type is None:
            self.findings.append(
                Finding(
                    rule="bare-except",
                    message="bare 'except:' swallows all errors",
                    line=node.lineno,
                )
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag equality comparisons against None."""
        for op, comparator in zip(node.ops, node.comparators):
            is_none = isinstance(comparator, ast.Constant) and comparator.value is None
            if is_none and isinstance(op, (ast.Eq, ast.NotEq)):
                self.findings.append(
                    Finding(
                        rule="eq-none",
                        message="compare to None with 'is', not '=='",
                        line=node.lineno,
                    )
                )
        self.generic_visit(node)


def analyze_source(source: str, path: str = "<string>") -> FileReport:
    """Analyze one Python source string."""
    tree = ast.parse(source, filename=path)
    analyzer = _Analyzer()
    analyzer.visit(tree)
    lines_of_code = sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
    return FileReport(
        path=path,
        lines_of_code=lines_of_code,
        functions=analyzer.functions,
        findings=analyzer.findings,
    )


def analyze_file(path: str | Path) -> FileReport:
    """Analyze one Python file."""
    path = Path(path)
    return analyze_source(path.read_text(encoding="utf-8"), str(path))


def analyze_tree(root: str | Path) -> QualityReport:
    """Analyze every ``*.py`` file under a directory."""
    root = Path(root)
    report = QualityReport()
    for file_path in sorted(root.rglob("*.py")):
        report.files.append(analyze_file(file_path))
    return report


def detect_regressions(before: QualityReport, after: QualityReport) -> list[str]:
    """SonarQube-style regression signals between two reports."""
    signals: list[str] = []
    if after.total_findings > before.total_findings:
        signals.append(
            f"potential bugs increased: {before.total_findings} -> "
            f"{after.total_findings}"
        )
    if after.mean_complexity > before.mean_complexity * 1.10:
        signals.append(
            f"mean complexity increased: {before.mean_complexity:.2f} -> "
            f"{after.mean_complexity:.2f}"
        )
    if after.documented_share < before.documented_share - 0.05:
        signals.append(
            f"documentation coverage dropped: {before.documented_share:.0%} -> "
            f"{after.documented_share:.0%}"
        )
    return signals
