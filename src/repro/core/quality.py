"""Code-quality reporting for the reference implementations (Section 3.5).

Compatibility shim: the analyzer grew into the pluggable, domain-aware
rule engine in :mod:`repro.analysis` (determinism lint,
cost-accounting lint, BSP race detector, baseline quality gate). This
module re-exports the original API — ``analyze_source``/``analyze_file``
/``analyze_tree`` producing :class:`QualityReport` objects, and
``detect_regressions`` producing SonarQube-style signal strings — so
existing callers keep working unchanged.
"""

from repro.analysis import (
    FileReport,
    Finding,
    FunctionMetrics,
    QualityReport,
    analyze_file,
    analyze_source,
    analyze_tree,
    detect_regressions,
)

__all__ = [
    "FunctionMetrics",
    "Finding",
    "FileReport",
    "QualityReport",
    "analyze_source",
    "analyze_file",
    "analyze_tree",
    "detect_regressions",
]
