"""Simulated-hardware cost model shared by all platform simulations.

The paper benchmarks JVM platforms on a real cluster (Section 3.3: 10
compute machines with 24 GiB RAM and dual Xeon E5620 CPUs for the
distributed platforms; one 192 GiB machine for Neo4j). This
reproduction replaces the testbed with a cost model: every platform
simulation *really executes* its algorithm, and while doing so charges
a :class:`CostMeter` for compute operations, network messages, disk
transfers, random memory accesses, and synchronization barriers. The
meter converts those charges into simulated seconds under a
:class:`ClusterSpec`, and records a per-round :class:`RunProfile` that
the choke-point analysis (Section 2.1) consumes:

* *excessive network utilization* → remote bytes per round;
* *large graph memory footprint* → tracked peak memory per worker,
  with a hard budget whose violation platforms surface as failures
  (Figure 4's missing values);
* *poor access locality* → random accesses charged at cache-miss cost
  versus sequential operations at pipeline cost;
* *skewed execution intensity* → per-worker compute distribution per
  round (time per round is the *maximum* over workers, so stragglers
  dominate, exactly as with real BSP barriers).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field

from repro.hardware.models import CpuModel, DiskModel, HardwareProfile, NicModel

__all__ = [
    "ClusterSpec",
    "MemoryBudgetExceeded",
    "RoundRecord",
    "RunProfile",
    "CostMeter",
]


class MemoryBudgetExceeded(Exception):
    """Raised by the meter when a worker exceeds its memory budget.

    The platform driver API catches this and converts it into a typed
    :class:`~repro.core.errors.SimulatedOOM` so the Benchmark Core
    records a failure instead of crashing. ``round_name`` pins *where*
    the budget broke (e.g. ``superstep-12``); the charge sequence is
    deterministic, so the same configuration breaks at the same round
    with the same message on every run.
    """

    def __init__(
        self, worker: int, used: float, budget: float,
        round_name: str | None = None,
    ):
        self.worker = worker
        self.used = used
        self.budget = budget
        self.round_name = round_name
        where = f" during {round_name}" if round_name else ""
        super().__init__(
            f"worker {worker} needs {used / 2**30:.2f} GiB, "
            f"budget is {budget / 2**30:.2f} GiB{where}"
        )


#: Flat spec field -> (hardware sub-model attribute, model field name);
#: sub-model ``None`` means a direct :class:`HardwareProfile` field.
_FLAT_HARDWARE_FIELDS: dict[str, tuple[str | None, str]] = {
    "cores_per_worker": ("cpu", "cores"),
    "cpu_ops_per_second": ("cpu", "ops_per_second"),
    "random_access_seconds": ("cpu", "random_access_seconds"),
    "network_bandwidth": ("nic", "bandwidth"),
    "nic_message_latency_seconds": ("nic", "message_latency_seconds"),
    "nic_queueing_factor": ("nic", "queueing_factor"),
    "disk_bandwidth": ("disk", "seq_bandwidth"),
    "disk_random_bandwidth": ("disk", "random_bandwidth"),
    "memory_bytes_per_worker": (None, "memory_bytes_per_worker"),
    "memory_pressure_factor": (None, "memory_pressure_factor"),
    "barrier_seconds": (None, "barrier_seconds"),
    "startup_seconds": (None, "startup_seconds"),
}

#: Trailing scale suffix appended by :meth:`ClusterSpec.scaled`.
_SCALE_SUFFIX = re.compile(r"^(?P<base>.*)/s(?P<factor>[0-9.eE+-]+)$")


@dataclass(frozen=True)
class ClusterSpec:
    """The (simulated) machines a platform runs on.

    A deployment shape (``num_workers`` identical machines) bound to a
    :class:`~repro.hardware.models.HardwareProfile` describing each
    machine's devices. The historical flat constants
    (``cpu_ops_per_second``, ``network_bandwidth``, ...) remain
    available as read-only properties delegating into the profile, so
    cost formulas and engine code read exactly as before; construction
    sites that used the flat field list use :meth:`flat`, and
    field-level overrides go through :meth:`replace`.
    """

    name: str
    num_workers: int
    hardware: HardwareProfile

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")

    # -- legacy flat views ------------------------------------------------

    @property
    def cores_per_worker(self) -> int:
        """Cores used per machine."""
        return self.hardware.cpu.cores

    @property
    def cpu_ops_per_second(self) -> float:
        """Simple-operation throughput per core."""
        return self.hardware.cpu.ops_per_second

    @property
    def random_access_seconds(self) -> float:
        """Cost of one cache-missing random memory access."""
        return self.hardware.cpu.random_access_seconds

    @property
    def memory_bytes_per_worker(self) -> float:
        """RAM budget per machine; exceeding it is a platform failure."""
        return self.hardware.memory_bytes_per_worker

    @property
    def network_bandwidth(self) -> float:
        """Per-machine network bandwidth, bytes/second."""
        return self.hardware.nic.bandwidth

    @property
    def barrier_seconds(self) -> float:
        """Cost of one global synchronization barrier."""
        return self.hardware.barrier_seconds

    @property
    def disk_bandwidth(self) -> float:
        """Per-machine sequential disk bandwidth, bytes/second."""
        return self.hardware.disk.seq_bandwidth

    @property
    def startup_seconds(self) -> float:
        """Fixed job submission/scheduling overhead per run."""
        return self.hardware.startup_seconds

    @property
    def worker_ops_per_second(self) -> float:
        """Aggregate simple-operation throughput of one worker."""
        return self.hardware.cpu.worker_ops_per_second

    # -- construction -----------------------------------------------------

    @classmethod
    def flat(
        cls,
        name: str,
        num_workers: int,
        cores_per_worker: int,
        cpu_ops_per_second: float,
        random_access_seconds: float,
        memory_bytes_per_worker: float,
        network_bandwidth: float,
        barrier_seconds: float,
        disk_bandwidth: float,
        startup_seconds: float,
        nic_message_latency_seconds: float = 0.0,
        nic_queueing_factor: float = 0.0,
        disk_random_bandwidth: float | None = None,
        memory_pressure_factor: float = 0.0,
    ) -> "ClusterSpec":
        """Build a spec from the historical flat constant list.

        The positional order matches the pre-profile ``ClusterSpec``
        fields; the keyword tail exposes the new component parameters
        (defaults reproduce the old physics: no per-message latency,
        no queueing, random I/O at sequential rate, no memory
        pressure).
        """
        hardware = HardwareProfile(
            name=name,
            cpu=CpuModel(
                cores=cores_per_worker,
                ops_per_second=cpu_ops_per_second,
                random_access_seconds=random_access_seconds,
            ),
            nic=NicModel(
                bandwidth=network_bandwidth,
                message_latency_seconds=nic_message_latency_seconds,
                queueing_factor=nic_queueing_factor,
            ),
            disk=DiskModel(
                seq_bandwidth=disk_bandwidth,
                random_bandwidth=(
                    disk_bandwidth
                    if disk_random_bandwidth is None
                    else disk_random_bandwidth
                ),
            ),
            memory_bytes_per_worker=memory_bytes_per_worker,
            memory_pressure_factor=memory_pressure_factor,
            barrier_seconds=barrier_seconds,
            startup_seconds=startup_seconds,
        )
        return cls(name=name, num_workers=num_workers, hardware=hardware)

    @classmethod
    def from_profile(
        cls,
        profile: HardwareProfile | str,
        num_workers: int | None = None,
        name: str | None = None,
    ) -> "ClusterSpec":
        """A cluster of ``num_workers`` machines of a (named) profile.

        String profiles resolve through the registry, defaulting
        ``num_workers`` to the profile's reference testbed size.
        """
        from repro.hardware.registry import default_workers, get_profile

        if isinstance(profile, str):
            if num_workers is None:
                num_workers = default_workers(profile)
            profile = get_profile(profile)
        elif num_workers is None:
            num_workers = 1
        if name is None:
            name = (
                profile.name
                if num_workers == 1
                else f"{profile.name}/w{num_workers}"
            )
        return cls(name=name, num_workers=num_workers, hardware=profile)

    def replace(self, **changes) -> "ClusterSpec":
        """`dataclasses.replace` that also accepts flat field names.

        ``spec.replace(memory_bytes_per_worker=2048.0)`` routes the
        override into the nested hardware profile; ``name``,
        ``num_workers`` and ``hardware`` replace directly.
        """
        name = changes.pop("name", self.name)
        num_workers = changes.pop("num_workers", self.num_workers)
        hardware = changes.pop("hardware", self.hardware)
        if changes:
            grouped: dict[str | None, dict[str, object]] = {}
            for key, value in changes.items():
                if key not in _FLAT_HARDWARE_FIELDS:
                    raise TypeError(f"unknown ClusterSpec field {key!r}")
                model, attribute = _FLAT_HARDWARE_FIELDS[key]
                grouped.setdefault(model, {})[attribute] = value
            profile_changes = grouped.pop(None, {})
            for model, model_changes in grouped.items():
                profile_changes[model] = dataclasses.replace(
                    getattr(hardware, model), **model_changes
                )
            hardware = dataclasses.replace(hardware, **profile_changes)
        return ClusterSpec(
            name=name, num_workers=num_workers, hardware=hardware
        )

    # -- transformation ---------------------------------------------------

    def scaled(self, throughput: float, memory: float | None = None) -> "ClusterSpec":
        """Scale the testbed down alongside scaled-down graphs.

        Dividing every throughput (CPU, network, disk) and the memory
        budget by the same factor as the graph sizes preserves the
        paper's *relative* platform behaviour while keeping runs cheap:
        simulated times stay comparable to the paper's absolute
        numbers. Latency-like constants (barriers, startup) are left
        untouched — they do not shrink when data does.

        ``memory`` may differ from ``throughput`` so that benchmark
        configurations can place the out-of-memory failure thresholds
        at their scaled graph sizes.

        Repeated scaling composes in the name: ``spec.scaled(2)
        .scaled(2)`` is named ``.../s4``, not ``.../s2/s2``, and
        ``scaled(1)`` round-trips to an equal spec.
        """
        if throughput <= 0:
            raise ValueError("throughput scale must be positive")
        memory = throughput if memory is None else memory
        if memory <= 0:
            raise ValueError("memory scale must be positive")
        base_name, factor = self.name, throughput
        suffix = _SCALE_SUFFIX.match(self.name)
        if suffix:
            try:
                previous = float(suffix.group("factor"))
            except ValueError:
                previous = 0.0
            if previous > 0:
                base_name = suffix.group("base")
                factor = previous * throughput
        name = base_name if factor == 1 else f"{base_name}/s{factor:g}"
        return ClusterSpec(
            name=name,
            num_workers=self.num_workers,
            hardware=self.hardware.scaled(throughput, memory),
        )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain nested dict (JSON-safe; traces embed it)."""
        return {
            "name": self.name,
            "num_workers": self.num_workers,
            "hardware": self.hardware.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        """Inverse of :meth:`to_dict`; accepts legacy flat dicts too."""
        if "hardware" in data:
            return cls(
                name=data["name"],
                num_workers=data["num_workers"],
                hardware=HardwareProfile.from_dict(data["hardware"]),
            )
        return cls.flat(**data)

    # -- paper testbeds ---------------------------------------------------

    @classmethod
    def paper_distributed(cls) -> "ClusterSpec":
        """The paper's 10-worker cluster (24 GiB, dual Xeon E5620)."""
        return cls.from_profile("paper-1gbe", name="cluster-10")

    @classmethod
    def paper_single_node(cls) -> "ClusterSpec":
        """The paper's Neo4j machine (192 GiB, dual Xeon E5-2450 v2)."""
        return cls.from_profile("paper-single-node", name="single-192g")


@dataclass
class RoundRecord:
    """Charges accumulated during one synchronization round.

    A "round" is a Pregel superstep, a MapReduce job phase, an RDD
    stage, or — for single-node platforms — the whole traversal.
    """

    name: str
    ops_per_worker: list[float]
    random_accesses_per_worker: list[float]
    local_messages: int = 0
    remote_messages: int = 0
    remote_bytes: float = 0.0
    #: Round totals over *all* disk traffic (striped + attributed);
    #: kept as the stable reporting/trace fields.
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    #: Declared-balanced (``worker=None``) disk bytes, costed at
    #: aggregate sequential bandwidth.
    striped_disk_read_bytes: float = 0.0
    striped_disk_write_bytes: float = 0.0
    #: Worker-attributed sequential disk bytes (read + write); the
    #: round pays the max over workers.
    disk_bytes_per_worker: list[float] = field(default_factory=list)
    #: Worker-attributed seek-dominated bytes, paid at the disk's
    #: random bandwidth.
    disk_random_bytes_per_worker: list[float] = field(default_factory=list)
    active_vertices: int = 0
    barrier: bool = True
    #: Live-memory high-water mark across workers when the round
    #: closed (feeds the memory-pressure model).
    live_memory_bytes: float = 0.0
    compute_seconds: float = 0.0
    network_seconds: float = 0.0
    #: Network breakdown: transfer + latency + queueing sums to
    #: ``network_seconds``.
    network_transfer_seconds: float = 0.0
    network_latency_seconds: float = 0.0
    network_queueing_seconds: float = 0.0
    disk_seconds: float = 0.0
    barrier_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        """Total simulated time of this round."""
        return (
            self.compute_seconds
            + self.network_seconds
            + self.disk_seconds
            + self.barrier_seconds
        )

    @property
    def total_ops(self) -> float:
        """Sequential operations summed over workers."""
        return sum(self.ops_per_worker)

    @property
    def skew(self) -> float:
        """max/mean per-worker compute — 1.0 is perfectly balanced."""
        total = self.total_ops + sum(self.random_accesses_per_worker)
        workers = len(self.ops_per_worker)
        if total == 0 or workers == 0:
            return 1.0
        per_worker = [
            ops + rand
            for ops, rand in zip(self.ops_per_worker, self.random_accesses_per_worker)
        ]
        mean = total / workers
        return max(per_worker) / mean if mean > 0 else 1.0


@dataclass
class RunProfile:
    """Everything one algorithm run cost, round by round."""

    cluster: ClusterSpec
    rounds: list[RoundRecord] = field(default_factory=list)
    peak_memory_per_worker: list[float] = field(default_factory=list)
    startup_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        """Total simulated runtime, startup included."""
        return self.startup_seconds + sum(record.seconds for record in self.rounds)

    @property
    def total_remote_bytes(self) -> float:
        """Network traffic summed over rounds."""
        return sum(record.remote_bytes for record in self.rounds)

    @property
    def total_messages(self) -> int:
        """Messages (local + remote) summed over rounds."""
        return sum(
            record.local_messages + record.remote_messages for record in self.rounds
        )

    @property
    def total_random_accesses(self) -> float:
        """Cache-missing accesses summed over rounds."""
        return sum(
            sum(record.random_accesses_per_worker) for record in self.rounds
        )

    @property
    def peak_memory(self) -> float:
        """Highest per-worker memory peak of the run."""
        return max(self.peak_memory_per_worker, default=0.0)

    @property
    def num_rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self.rounds)


class CostMeter:
    """Accumulates charges and converts them into simulated time.

    Typical engine usage::

        meter = CostMeter(spec)
        meter.charge_startup()
        meter.begin_round("superstep-0")
        meter.charge_compute(worker, ops)
        meter.charge_message(src_worker, dst_worker, payload_bytes)
        meter.end_round(active_vertices=n)
        profile = meter.profile

    Observability: ``sinks`` is a tuple of
    :class:`repro.observability.TraceSink`-shaped observers that
    receive structured events — round begin/end, message/shuffle/
    disk/memory charges, and fault annotations. The contract is
    *zero overhead when no sink is attached*: every emission site is
    guarded by ``if self.sinks`` and sinks never mutate charges, so
    with ``sinks=()`` the charge path is the exact pre-hook code and
    recorded profiles are bit-identical with or without observers
    (enforced by ``tests/observability/``). Per-``charge_compute``
    events are deliberately not emitted — the hot path stays clean and
    round-end spans carry the full per-worker breakdown instead.
    """

    #: Serialized bytes per message envelope on top of the payload.
    MESSAGE_OVERHEAD_BYTES = 16.0

    def __init__(
        self,
        spec: ClusterSpec,
        enforce_memory: bool = True,
        faults=None,
        sinks=(),
    ):
        self.spec = spec
        self.enforce_memory = enforce_memory
        #: Optional :class:`repro.robustness.faults.FaultInjector`; the
        #: meter consults it when rounds open (worker crashes), when
        #: remote messages or shuffles are charged (channel loss), and
        #: when rounds close (straggler slowdown) — which is what makes
        #: fault injection uniform across every engine that charges a
        #: meter.
        self.faults = faults
        #: Attached trace sinks (observe-only; may be empty).
        self.sinks = tuple(sinks) if sinks else ()
        self.profile = RunProfile(
            cluster=spec,
            peak_memory_per_worker=[0.0] * spec.num_workers,
        )
        self._current: RoundRecord | None = None
        self._memory = [0.0] * spec.num_workers

    # -- event emission ---------------------------------------------------

    def _emit_charge(self, kind: str, **fields) -> None:
        round_index = len(self.profile.rounds)
        for sink in self.sinks:
            sink.on_charge(kind, round_index, fields)

    def _emit_fault(self, kind: str, detail: str) -> None:
        for sink in self.sinks:
            sink.on_fault(kind, len(self.profile.rounds), detail)

    def _consult_faults(self, hook, *args) -> None:
        """Call a fault-injector hook, annotating raised faults.

        The injector communicates by raising typed failures; when
        sinks are attached the raised fault is emitted as a trace
        event before it propagates, so traces record *why* a run died.
        """
        try:
            hook(*args)
        except Exception as fault:
            if self.sinks:
                self._emit_fault(
                    getattr(fault, "reason", type(fault).__name__), str(fault)
                )
            raise

    # -- rounds ----------------------------------------------------------

    def charge_startup(self) -> None:
        """Fixed job-submission overhead (charged once per run)."""
        self.profile.startup_seconds += self.spec.startup_seconds
        if self.sinks:
            self._emit_charge("startup", seconds=self.spec.startup_seconds)

    @property
    def in_round(self) -> bool:
        """Whether a round is currently open (charges are accepted)."""
        return self._current is not None

    def begin_round(self, name: str, barrier: bool = True) -> None:
        """Open a new round; charges accumulate until end_round."""
        if self._current is not None:
            raise RuntimeError("previous round not ended")
        if self.faults is not None:
            self._consult_faults(
                self.faults.on_round_begin, len(self.profile.rounds)
            )
        if self.sinks:
            index = len(self.profile.rounds)
            for sink in self.sinks:
                sink.on_round_begin(index, name, barrier)
        self._current = RoundRecord(
            name=name,
            ops_per_worker=[0.0] * self.spec.num_workers,
            random_accesses_per_worker=[0.0] * self.spec.num_workers,
            disk_bytes_per_worker=[0.0] * self.spec.num_workers,
            disk_random_bytes_per_worker=[0.0] * self.spec.num_workers,
            barrier=barrier,
        )

    def end_round(
        self, active_vertices: int = 0, barrier_seconds: float | None = None
    ) -> RoundRecord:
        """Close the round, converting charges into simulated time.

        ``barrier_seconds`` overrides the cluster's barrier cost for
        this round (e.g. a GPU kernel launch + host sync standing in
        for a cluster-wide barrier). Overriding here — rather than
        patching the returned record — keeps the closed record
        immutable, which the trace sinks rely on: the emitted span is
        the final word on the round. The quality gate's
        ``cost-protocol`` rule enforces this statically: writes to a
        record obtained from ``end_round`` are findings.
        """
        record = self._require_round()
        spec = self.spec
        record.active_vertices = active_vertices
        record.live_memory_bytes = max(self._memory)
        straggler_penalty = 0.0
        if self.faults is not None:
            # An injected straggler repeats the round's barrier
            # physics: the slowest worker extends the whole round.
            straggler_penalty = self.faults.straggler_penalty_seconds(
                record.ops_per_worker,
                record.random_accesses_per_worker,
                spec.worker_ops_per_second,
                spec.random_access_seconds,
            )
        # All per-round seconds derive from the active hardware
        # profile; see HardwareProfile.round_times for the physics
        # (BSP max-over-workers compute, NIC transfer + per-message
        # latency + queueing, striped/attributed/random disk). The
        # what-if re-coster calls the same function on the recorded
        # charges, so re-costed profiles cannot drift from fresh runs.
        times = spec.hardware.round_times(
            record,
            spec.num_workers,
            straggler_penalty_seconds=straggler_penalty,
            barrier_override=barrier_seconds,
        )
        record.compute_seconds = times.compute_seconds
        record.network_transfer_seconds = times.network_transfer_seconds
        record.network_latency_seconds = times.network_latency_seconds
        record.network_queueing_seconds = times.network_queueing_seconds
        record.network_seconds = times.network_seconds
        record.disk_seconds = times.disk_seconds
        record.barrier_seconds = times.barrier_seconds
        self.profile.rounds.append(record)
        self._current = None
        if self.sinks:
            index = len(self.profile.rounds) - 1
            for sink in self.sinks:
                sink.on_round_end(index, record, straggler_penalty)
        return record

    def _require_round(self) -> RoundRecord:
        if self._current is None:
            raise RuntimeError("no round in progress; call begin_round first")
        return self._current

    # -- charges ---------------------------------------------------------

    def charge_compute(self, worker: int, ops: float) -> None:
        """Sequential/pipelined work (edge scans, message handling)."""
        self._require_round().ops_per_worker[worker] += ops

    def charge_random_access(self, worker: int, count: float) -> None:
        """Cache-missing accesses (pointer chasing, hash probes)."""
        self._require_round().random_accesses_per_worker[worker] += count

    def charge_compute_bulk(
        self, worker: int, ops: float, random_accesses: float = 0.0
    ) -> None:
        """Batched equivalent of many :meth:`charge_compute` /
        :meth:`charge_random_access` calls against one worker.

        All charges in this codebase are integer-valued (operation
        counts, access counts), and float64 addition of integers below
        2**53 is exact, so one bulk charge of a pre-summed total is
        bit-identical to the equivalent scalar call sequence. Bulk
        engine paths rely on that exactness; see
        ``tests/core/test_cost.py``.
        """
        record = self._require_round()
        record.ops_per_worker[worker] += ops
        if random_accesses:
            record.random_accesses_per_worker[worker] += random_accesses

    def charge_messages_bulk(
        self, src_worker: int, dst_worker: int, count: int, payload_bytes: float
    ) -> None:
        """Batched equivalent of ``count`` :meth:`charge_message` calls
        between one (src, dst) worker pair with a common payload size.

        Local delivery (``src == dst``) costs no network, exactly as in
        the scalar API; remote delivery charges
        ``count * (payload_bytes + MESSAGE_OVERHEAD_BYTES)`` bytes,
        which is exact for the integer-valued payloads the engines use.
        """
        record = self._require_round()
        if src_worker == dst_worker:
            record.local_messages += count
        else:
            if self.faults is not None:
                self._consult_faults(
                    self.faults.on_messages,
                    src_worker, dst_worker, len(self.profile.rounds), count,
                )
            record.remote_messages += count
            record.remote_bytes += count * (
                payload_bytes + self.MESSAGE_OVERHEAD_BYTES
            )
        if self.sinks:
            self._emit_charge(
                "message",
                src_worker=src_worker,
                dst_worker=dst_worker,
                count=count,
                payload_bytes=payload_bytes,
            )

    def charge_message(
        self, src_worker: int, dst_worker: int, payload_bytes: float, count: int = 1
    ) -> None:
        """A message between workers; local delivery costs no network."""
        record = self._require_round()
        if src_worker == dst_worker:
            record.local_messages += count
        else:
            if self.faults is not None:
                self._consult_faults(
                    self.faults.on_messages,
                    src_worker, dst_worker, len(self.profile.rounds), count,
                )
            record.remote_messages += count
            record.remote_bytes += count * (payload_bytes + self.MESSAGE_OVERHEAD_BYTES)
        if self.sinks:
            self._emit_charge(
                "message",
                src_worker=src_worker,
                dst_worker=dst_worker,
                count=count,
                payload_bytes=payload_bytes,
            )

    def charge_shuffle(self, num_bytes: float, count: int = 0) -> None:
        """Bulk data redistribution between workers (MapReduce shuffle,
        RDD wide dependency). The bytes are charged as remote traffic
        without per-message envelopes — engines that shuffle serialize
        in bulk.

        Shuffle traffic crosses worker boundaries exactly like
        per-message remote delivery, so it consults the fault
        injector's channel-loss decision too — ``--inject`` message
        loss is uniform across BSP messaging *and* MapReduce/dataflow/
        RDD shuffles. Empty shuffles (no bytes) and single-worker
        clusters stay on the lossless local path: with one worker
        nothing crosses a machine boundary, so the records count as
        local messages and no remote traffic is charged (mirroring
        ``charge_message`` with ``src == dst``).
        """
        record = self._require_round()
        if self.spec.num_workers == 1:
            record.local_messages += count
        else:
            if self.faults is not None and num_bytes:
                # Byte-only shuffles (count=0) still move at least one
                # record's worth of remote traffic for the loss decision.
                self._consult_faults(
                    self.faults.on_messages,
                    0, 1, len(self.profile.rounds), max(count, 1),
                )
            record.remote_messages += count
            record.remote_bytes += num_bytes
        if self.sinks:
            self._emit_charge("shuffle", num_bytes=num_bytes, count=count)

    def charge_disk_read(self, worker: int | None, num_bytes: float) -> None:
        """Bytes read from disk during this round.

        ``worker=None`` declares evenly striped I/O (HDFS-style block
        placement), costed at the cluster's aggregate sequential
        bandwidth. An integer attributes the bytes to that worker;
        worker-attributed disk time is max-over-workers in
        ``end_round``, so skewed I/O creates a straggler exactly like
        skewed compute.
        """
        record = self._require_round()
        record.disk_read_bytes += num_bytes
        if worker is None:
            record.striped_disk_read_bytes += num_bytes
        else:
            record.disk_bytes_per_worker[worker] += num_bytes
        if self.sinks:
            self._emit_charge("disk-read", worker=worker, num_bytes=num_bytes)

    def charge_disk_write(self, worker: int | None, num_bytes: float) -> None:
        """Bytes written to disk during this round.

        Same worker semantics as :meth:`charge_disk_read`.
        """
        record = self._require_round()
        record.disk_write_bytes += num_bytes
        if worker is None:
            record.striped_disk_write_bytes += num_bytes
        else:
            record.disk_bytes_per_worker[worker] += num_bytes
        if self.sinks:
            self._emit_charge("disk-write", worker=worker, num_bytes=num_bytes)

    def charge_disk_random(
        self, worker: int, num_bytes: float, write: bool = False
    ) -> None:
        """Seek-dominated I/O, paid at the disk's *random* bandwidth.

        Always worker-attributed (seek storms are inherently local to
        one spindle); the bytes also land in the round's read/write
        totals so traces and reports see all disk traffic.
        """
        record = self._require_round()
        if write:
            record.disk_write_bytes += num_bytes
        else:
            record.disk_read_bytes += num_bytes
        record.disk_random_bytes_per_worker[worker] += num_bytes
        if self.sinks:
            self._emit_charge(
                "disk-random", worker=worker, num_bytes=num_bytes, write=write
            )

    # -- memory ----------------------------------------------------------

    def allocate_memory(self, worker: int, num_bytes: float) -> None:
        """Raise the worker's live memory; raises on budget violation."""
        self._memory[worker] += num_bytes
        peak = self.profile.peak_memory_per_worker
        peak[worker] = max(peak[worker], self._memory[worker])
        if self.sinks:
            self._emit_charge(
                "memory",
                worker=worker,
                delta_bytes=num_bytes,
                in_use_bytes=self._memory[worker],
            )
        if self.enforce_memory and self._memory[worker] > self.spec.memory_bytes_per_worker:
            budget_violation = MemoryBudgetExceeded(
                worker,
                self._memory[worker],
                self.spec.memory_bytes_per_worker,
                round_name=self._current.name if self._current else None,
            )
            if self.sinks:
                self._emit_fault("out-of-memory", str(budget_violation))
            raise budget_violation

    def release_memory(self, worker: int, num_bytes: float) -> None:
        """Lower the worker's live memory (floors at zero)."""
        self._memory[worker] = max(0.0, self._memory[worker] - num_bytes)
        if self.sinks:
            self._emit_charge(
                "memory",
                worker=worker,
                delta_bytes=-num_bytes,
                in_use_bytes=self._memory[worker],
            )

    def memory_in_use(self, worker: int) -> float:
        """The worker's current live memory in bytes."""
        return self._memory[worker]
