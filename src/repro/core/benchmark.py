"""The Benchmark Core (paper Figure 2).

"The Benchmark Core module implements the benchmark harness that binds
together Graphalytics." It executes every selected (platform, graph,
algorithm) combination, catches platform failures (reported as
Figure 4's missing values), validates outputs, applies the configured
time limit (the paper's MapReduce runs on Graph500 hit exactly such a
limit), gathers monitor samples, and hands results to the report
generator and results database.
"""

from __future__ import annotations

import concurrent.futures
import random
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.chokepoints import ChokePointReport, analyze_profile
from repro.core.errors import PlatformFailure, SuiteWorkerError, ValidationFailure
from repro.core.metrics import edges_traversed_for, kteps
from repro.core.monitor import SystemMonitor, UtilizationSample
from repro.core.platform_api import Platform, PlatformRun
from repro.core.stats import RuntimeStats
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec
from repro.graph.graph import Graph
from repro.observability.sinks import JsonlTraceWriter
from repro.robustness.faults import FaultInjector, FaultPlan

__all__ = [
    "BenchmarkResult",
    "BenchmarkSuiteResult",
    "BenchmarkCore",
    "combo_seed",
]

#: Result status values.
SUCCESS = "success"
FAILED = "failed"
INVALID = "invalid"


def combo_seed(platform_name: str, graph_name: str) -> int:
    """Deterministic RNG seed for one (platform, graph) combination.

    Derived with CRC32 (not the salted builtin ``hash``) so every
    interpreter process — sequential run, or any worker of the
    parallel suite runner — pins the same seed for the same
    combination, making results independent of scheduling and process
    placement.
    """
    return zlib.crc32(f"{platform_name}/{graph_name}".encode("utf-8"))


@dataclass
class BenchmarkResult:
    """Outcome of one (platform, graph, algorithm) execution."""

    platform: str
    graph_name: str
    algorithm: Algorithm
    status: str
    runtime_seconds: float | None = None
    kteps: float | None = None
    failure_reason: str | None = None
    run: PlatformRun | None = None
    samples: list[UtilizationSample] = field(default_factory=list)
    #: Per-repetition runtimes when the run spec asks for several;
    #: ``runtime_seconds`` is then their arithmetic mean.
    repetition_runtimes: list[float] = field(default_factory=list)
    #: Warmup executions run (and discarded) before the measured
    #: repetitions of this cell.
    warmup_runs: int = 0
    #: Algorithm-execution attempts this cell took (> 1 after retries
    #: of injected transient faults).
    attempts: int = 1
    #: Simulated backoff seconds spent between retry attempts (kept
    #: out of ``runtime_seconds``, which measures the successful run).
    backoff_seconds: float = 0.0
    #: Choke-point indicators of the recorded run (paper Section 2.1);
    #: populated whenever a run profile exists, so report matrices and
    #: database rows can show each cell's dominant choke point.
    chokepoints: ChokePointReport | None = None
    #: Where this cell's JSONL trace landed, when tracing was on.
    trace_path: str | None = None

    @property
    def succeeded(self) -> bool:
        """Whether this execution completed and validated."""
        return self.status == SUCCESS

    @property
    def runtime_stats(self) -> RuntimeStats | None:
        """Mean/std/CI95 of the recorded repetition runtimes.

        ``None`` when no repetitions were recorded (failures before
        any repetition completed, or hand-built results carrying only
        ``runtime_seconds``).
        """
        return RuntimeStats.from_samples(self.repetition_runtimes)


@dataclass
class BenchmarkSuiteResult:
    """All results of one benchmark invocation."""

    results: list[BenchmarkResult] = field(default_factory=list)

    def lookup(
        self, platform: str, graph_name: str, algorithm: Algorithm
    ) -> BenchmarkResult | None:
        """The result for one (platform, graph, algorithm), if any."""
        for result in self.results:
            if (
                result.platform == platform
                and result.graph_name == graph_name
                and result.algorithm == algorithm
            ):
                return result
        return None

    def successes(self) -> list[BenchmarkResult]:
        """All successful results."""
        return [r for r in self.results if r.succeeded]

    def failures(self) -> list[BenchmarkResult]:
        """All failed or invalid results."""
        return [r for r in self.results if not r.succeeded]

    def runtime_table(self) -> dict[tuple[str, str, str], float | None]:
        """``{(algorithm, graph, platform): runtime or None}`` (Figure 4)."""
        return {
            (r.algorithm.value, r.graph_name, r.platform): r.runtime_seconds
            if r.succeeded
            else None
            for r in self.results
        }


class BenchmarkCore:
    """Runs the full benchmark matrix.

    Parameters
    ----------
    platforms:
        Platform driver instances (already bound to cluster specs).
    graphs:
        ``{name: Graph}`` — the configured datasets.
    validator:
        Output validator; pass ``None`` to skip validation entirely.
    time_limit_seconds:
        Simulated-runtime budget per execution, checked by the core
        after the run completes; runs exceeding it are recorded as
        ``time-limit`` failures (the paper's "due to time constraints,
        MapReduce was not able to complete some algorithms").
    timeout_seconds:
        Per-run budget enforced *inside* the driver API: exceeding it
        raises a typed :class:`~repro.core.errors.SimulatedTimeout`,
        recorded as a ``timeout`` failure cell.
    fault_plan:
        Optional :class:`~repro.robustness.faults.FaultPlan`; a fresh
        seeded injector is bound per (platform, graph, algorithm)
        combination, so injection is deterministic per cell.
    max_retries:
        Bounded retry budget for *transient* failures (injected
        faults whose plan allows later attempts to succeed).
    retry_backoff_seconds:
        Simulated backoff added per retry attempt (linear backoff:
        attempt *n* waits ``n * retry_backoff_seconds``).
    strict:
        ``False`` (default) records unexpected non-platform errors as
        ``FAILED(error: ...)`` cells — graceful degradation, the
        suite keeps running; ``True`` re-raises them (wrapped with
        their combo metadata).
    trace_dir:
        When set, every (platform, graph, algorithm) cell writes a
        structured JSONL trace
        (``<platform>_<graph>_<algorithm>.jsonl``) into this
        directory via an attached
        :class:`~repro.observability.JsonlTraceWriter`. Tracing is
        observe-only: recorded profiles are bit-identical with or
        without it.
    graph_store:
        When set, parallel runs (``run(parallel=n)``) persist each
        distinct graph once into this directory (content-addressed,
        ``.npy`` arrays) and ship pool workers the *path*; workers
        memory-map the arrays, sharing OS pages instead of each
        unpickling a full copy of the graph. Without it, workers
        receive pickled graphs as before. Results are identical
        either way.
    """

    def __init__(
        self,
        platforms: list[Platform],
        graphs: dict[str, Graph],
        validator: OutputValidator | None = None,
        time_limit_seconds: float | None = None,
        timeout_seconds: float | None = None,
        fault_plan: FaultPlan | None = None,
        max_retries: int = 0,
        retry_backoff_seconds: float = 1.0,
        strict: bool = False,
        trace_dir: str | Path | None = None,
        graph_store: str | Path | None = None,
    ):
        names = [p.name for p in platforms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate platform names: {names}")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.platforms = platforms
        self.graphs = graphs
        self.validator = validator
        self.time_limit_seconds = time_limit_seconds
        self.timeout_seconds = timeout_seconds
        self.fault_plan = fault_plan
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.strict = strict
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.graph_store = Path(graph_store) if graph_store is not None else None
        self.monitor = SystemMonitor()
        # graph -> 2 * undirected edge count, for the TEPS metric; the
        # undirected view itself is cached on the Graph, but the memo
        # also skips re-deriving it per result per repetition.
        self._edges_traversed_memo: dict[tuple[Graph, Algorithm], float] = {}

    def run(
        self, spec: BenchmarkRunSpec | None = None, parallel: int = 1
    ) -> BenchmarkSuiteResult:
        """Execute the benchmark for a run spec (default: everything).

        ``parallel=n`` (n > 1) distributes the selected (platform,
        graph) pairs over a pool of ``n`` worker processes. Each pair
        stays whole — its ETL still happens exactly once, in the
        process that runs its algorithms — and every pair's RNG is
        pinned to :func:`combo_seed` before it executes, so the suite
        result is identical to a sequential run (modulo the real
        wall-clock fields ``wall_seconds``/``etl_seconds``), in the
        same spec order, regardless of worker count or scheduling.
        """
        spec = spec or BenchmarkRunSpec()
        graphs = dict(self.graphs)
        if spec.selects_algorithm(Algorithm.SSSP):
            # SSSP needs edge weights. Datasets that ship without them
            # get deterministic derived weights (the Graphalytics
            # datagen ``wgt`` annotation equivalent) so the default
            # "run everything" matrix works on every catalog graph;
            # the weighted graph is what the platforms *and* the
            # validator see, so the comparison stays consistent. An
            # explicitly weighted dataset is used as-is.
            graphs = {
                name: (
                    graph
                    if graph.is_weighted
                    else graph.with_uniform_weights()
                )
                for name, graph in graphs.items()
            }
        pairs = [
            (platform, graph_name, graph)
            for platform in self.platforms
            if spec.selects_platform(platform.name)
            for graph_name, graph in sorted(graphs.items())
            if spec.selects_graph(graph_name)
        ]
        suite = BenchmarkSuiteResult()
        if parallel <= 1 or len(pairs) <= 1:
            for platform, graph_name, graph in pairs:
                suite.results.extend(
                    self._run_pair(platform, graph_name, graph, spec)
                )
            return suite
        # With a graph store configured, persist each distinct graph
        # once and ship workers the path; they mmap the arrays and
        # share pages instead of unpickling private copies.
        graph_paths: dict[Graph, str] = {}
        if self.graph_store is not None:
            for _platform, _name, graph in pairs:
                if graph not in graph_paths:
                    entry = self.graph_store / graph.content_key()
                    if not (entry / "meta.json").is_file():
                        graph.save(entry)
                    graph_paths[graph] = str(entry)
        tasks = [
            _PairTask(
                platform=platform,
                graph_name=graph_name,
                graph=None if graph in graph_paths else graph,
                graph_path=graph_paths.get(graph),
                validator=self.validator,
                time_limit_seconds=self.time_limit_seconds,
                timeout_seconds=self.timeout_seconds,
                fault_plan=self.fault_plan,
                max_retries=self.max_retries,
                retry_backoff_seconds=self.retry_backoff_seconds,
                strict=self.strict,
                spec=spec,
                trace_dir=self.trace_dir,
            )
            for platform, graph_name, graph in pairs
        ]
        workers = min(parallel, len(tasks))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            # ``map`` yields in submission order: results merge in
            # spec order no matter which worker finishes first.
            for results in pool.map(_run_pair_task, tasks):
                suite.results.extend(results)
        return suite

    def _run_pair(
        self, platform: Platform, graph_name: str, graph: Graph, spec: BenchmarkRunSpec
    ) -> list[BenchmarkResult]:
        """All selected algorithms of one (platform, graph) pair."""
        # Pinning the global RNGs to the per-combo seed is the
        # determinism mechanism here, not a violation of it: every
        # process — sequential or pool worker — replays the same
        # stream for the same (platform, graph).
        seed = combo_seed(platform.name, graph_name)
        random.seed(seed)  # quality: ignore[determinism]
        np.random.seed(seed & 0xFFFFFFFF)  # quality: ignore[determinism]
        # Robustness knobs are (re)bound per pair: fault injection
        # never leaks from one combination into the next, and ETL runs
        # fault-free (faults target algorithm executions).
        platform.faults = None
        if self.timeout_seconds is not None:
            platform.timeout_seconds = self.timeout_seconds
        supported = set(platform.supported_algorithms())
        results: list[BenchmarkResult] = []
        handle = None
        for algorithm in Algorithm:
            if not spec.selects_algorithm(algorithm):
                continue
            if algorithm not in supported:
                continue
            if handle is None:
                # ETL once per (platform, graph); ETL failures
                # fail every algorithm on that combination.
                try:
                    handle = platform.upload_graph(graph_name, graph)
                except PlatformFailure as failure:
                    results.extend(
                        self._etl_failures(
                            platform, graph_name, spec, supported, failure
                        )
                    )
                    break
                except Exception as exc:
                    # Harness bugs during ETL keep their combo context
                    # even across process-pool boundaries; without
                    # strict mode they degrade to FAILED cells.
                    if self.strict:
                        raise SuiteWorkerError(
                            platform.name,
                            graph_name,
                            f"ETL: {type(exc).__name__}: {exc}",
                        ) from exc
                    failure = PlatformFailure(
                        platform.name,
                        f"error: {type(exc).__name__}: {exc}",
                        "unexpected ETL error",
                    )
                    results.extend(
                        self._etl_failures(
                            platform, graph_name, spec, supported, failure
                        )
                    )
                    break
            results.append(
                self._run_one(platform, handle, graph, algorithm, spec)
            )
        if handle is not None:
            platform.delete_graph(handle)
        platform.faults = None
        return results

    def _etl_failures(
        self,
        platform: Platform,
        graph_name: str,
        spec: BenchmarkRunSpec,
        supported: set[Algorithm],
        failure: PlatformFailure,
    ) -> list[BenchmarkResult]:
        return [
            BenchmarkResult(
                platform=platform.name,
                graph_name=graph_name,
                algorithm=algorithm,
                status=FAILED,
                failure_reason=f"ETL: {failure.reason}",
            )
            for algorithm in Algorithm
            if spec.selects_algorithm(algorithm) and algorithm in supported
        ]

    def _run_one(
        self,
        platform: Platform,
        handle,
        graph: Graph,
        algorithm: Algorithm,
        spec: BenchmarkRunSpec,
    ) -> BenchmarkResult:
        """One cell, with the per-cell trace writer attached around it."""
        writer = None
        saved_sinks = platform.sinks
        if self.trace_dir is not None:
            cell = f"{platform.name}_{handle.name}_{algorithm.value}"
            writer = JsonlTraceWriter(
                self.trace_dir / f"{cell.replace('/', '-')}.jsonl"
            )
            platform.sinks = saved_sinks + (writer,)
        try:
            result = self._execute_cell(platform, handle, graph, algorithm, spec)
        finally:
            # Restore whatever sinks the caller had attached; the
            # per-cell writer never leaks into the next cell.
            platform.sinks = saved_sinks
            if writer is not None:
                writer.close()
        if writer is not None:
            result.trace_path = str(writer.path)
        return result

    def _execute_cell(
        self,
        platform: Platform,
        handle,
        graph: Graph,
        algorithm: Algorithm,
        spec: BenchmarkRunSpec,
    ) -> BenchmarkResult:
        base = BenchmarkResult(
            platform=platform.name,
            graph_name=handle.name,
            algorithm=algorithm,
            status=FAILED,
        )
        if self.fault_plan is not None:
            # Fresh injector per combo: the attempt counter advances
            # across retries of this cell only, and the seeded fault
            # schedule is identical on every suite run.
            platform.faults = FaultInjector(self.fault_plan, platform.name)
        repetitions = max(spec.repetitions, 1)
        warmup = max(spec.warmup_runs, 0)
        base.warmup_runs = warmup
        attempts = 0
        runtimes: list[float] = []
        run = None
        while True:
            attempts += 1
            runtimes = []
            try:
                # Warmup executions run first and are discarded: they
                # are part of each attempt's deterministic schedule,
                # so a retried attempt re-warms exactly the same way.
                for _warmup in range(warmup):
                    platform.run_algorithm(handle, algorithm, spec.params)
                for _repetition in range(repetitions):
                    run = platform.run_algorithm(handle, algorithm, spec.params)
                    runtimes.append(run.simulated_seconds)
            except PlatformFailure as failure:
                if failure.transient and attempts <= self.max_retries:
                    # Linear backoff, in simulated seconds; the retry
                    # itself re-executes deterministically.
                    base.backoff_seconds += (
                        attempts * self.retry_backoff_seconds
                    )
                    continue
                base.failure_reason = failure.reason
                base.attempts = attempts
                return base
            except Exception as exc:
                # Graceful degradation: an unexpected (non-platform)
                # error becomes a FAILED cell instead of aborting the
                # suite — unless the core runs strict.
                if self.strict:
                    raise SuiteWorkerError(
                        platform.name,
                        handle.name,
                        f"{algorithm.value}: {type(exc).__name__}: {exc}",
                    ) from exc
                base.failure_reason = f"error: {type(exc).__name__}: {exc}"
                base.attempts = attempts
                return base
            break
        base.attempts = attempts
        base.repetition_runtimes = runtimes
        if run is not None:
            # Choke-point indicators travel with the result so report
            # cells and database rows can label their bottleneck even
            # for time-limit or invalid outcomes.
            base.chokepoints = analyze_profile(run.profile)
        runtime = sum(runtimes) / len(runtimes)
        if self.time_limit_seconds is not None and runtime > self.time_limit_seconds:
            base.failure_reason = "time-limit"
            base.run = run
            return base
        if self.validator is not None and spec.validate_outputs:
            try:
                self.validator.validate(graph, algorithm, spec.params, run.output)
            except ValidationFailure as invalid:
                base.status = INVALID
                base.failure_reason = str(invalid)
                base.run = run
                return base
        base.status = SUCCESS
        base.runtime_seconds = runtime
        base.kteps = kteps(
            self._edges_traversed(graph, algorithm, spec.params), runtime
        )
        base.run = run
        base.samples = self.monitor.samples_from_profile(run.profile)
        return base

    def _edges_traversed(
        self, graph: Graph, algorithm: Algorithm, params
    ) -> float:
        """Edges the algorithm traverses, for the TEPS metrics.

        Delegates to :func:`repro.core.metrics.edges_traversed_for`
        (which scales PR by its iteration count); memoized per
        (graph, algorithm) — graphs hash by identity and are
        immutable, so repeated cells skip re-deriving the undirected
        view.
        """
        key = (graph, algorithm)
        cached = self._edges_traversed_memo.get(key)
        if cached is None:
            cached = edges_traversed_for(graph, algorithm, params)
            self._edges_traversed_memo[key] = cached
        return cached


@dataclass
class _PairTask:
    """One (platform, graph) work unit shipped to a pool worker.

    Everything a child process needs to run the pair exactly as the
    sequential loop would; module-level (with the worker function) so
    the payload pickles under every start method. Exactly one of
    ``graph`` (pickled payload) and ``graph_path`` (mmap-shared store
    entry) is set.
    """

    platform: Platform
    graph_name: str
    graph: Graph | None
    graph_path: str | None
    validator: OutputValidator | None
    time_limit_seconds: float | None
    timeout_seconds: float | None
    fault_plan: FaultPlan | None
    max_retries: int
    retry_backoff_seconds: float
    strict: bool
    spec: BenchmarkRunSpec
    trace_dir: Path | None = None


def _run_pair_task(task: _PairTask) -> list[BenchmarkResult]:
    """Pool-worker entry: rebuild a single-pair core and run it.

    Any exception escaping the pair is re-raised as a picklable
    :class:`~repro.core.errors.SuiteWorkerError` carrying the
    (platform, graph) combo, so a parallel suite failure names the
    work unit instead of surfacing a bare traceback from an anonymous
    worker process.
    """
    graph = task.graph
    if graph is None:
        graph = Graph.load(task.graph_path, mmap=True)
    core = BenchmarkCore(
        [task.platform],
        {task.graph_name: graph},
        validator=task.validator,
        time_limit_seconds=task.time_limit_seconds,
        timeout_seconds=task.timeout_seconds,
        fault_plan=task.fault_plan,
        max_retries=task.max_retries,
        retry_backoff_seconds=task.retry_backoff_seconds,
        strict=task.strict,
        trace_dir=task.trace_dir,
    )
    try:
        return core._run_pair(task.platform, task.graph_name, graph, task.spec)
    except SuiteWorkerError:
        raise
    except Exception as exc:
        raise SuiteWorkerError(
            task.platform.name,
            task.graph_name,
            f"{type(exc).__name__}: {exc}",
        ) from exc
