"""Repetition statistics: mean, spread, and confidence intervals.

"SoK: The Faults in our Graph Benchmarks" catalogs single-run
measurements and variance-free reporting as two of the most common
ways graph benchmarks mislead. This module is the statistical layer
the audit rules check for: every benchmark cell that runs more than
one repetition summarizes its runtimes as a :class:`RuntimeStats` —
sample mean, sample standard deviation, and a two-sided 95%
confidence interval on the mean (Student's t) — which the results
database stores, the reports render as ``mean ±std``, and the
``graphalytics analyze`` regression gate uses instead of a bare
percentage threshold whenever both sides carry repetition stats.

The t critical values are a fixed table (df 1..30, then the normal
asymptote); the math is pure Python so the statistics are exactly
reproducible across platforms and numpy versions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["RuntimeStats", "t_critical_95"]

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)

#: Normal-approximation critical value used beyond the table.
_Z_95 = 1.960


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95% Student-t critical value for a sample mean."""
    if degrees_of_freedom < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if degrees_of_freedom <= len(_T_95):
        return _T_95[degrees_of_freedom - 1]
    return _Z_95


@dataclass(frozen=True)
class RuntimeStats:
    """Summary statistics of one cell's repetition runtimes.

    ``std`` is the sample standard deviation (``ddof=1``); for a
    single repetition it is 0 and the confidence interval collapses
    to the mean — a degenerate interval the audit rules treat as "no
    variance information", not as perfect precision.
    """

    n: int
    mean: float
    std: float
    ci95_low: float
    ci95_high: float

    @classmethod
    def from_samples(cls, samples: Sequence[float] | Iterable[float]) -> "RuntimeStats | None":
        """Statistics of a runtime sample; ``None`` for an empty one."""
        values = [float(value) for value in samples]
        if not values:
            return None
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return cls(n=n, mean=mean, std=0.0, ci95_low=mean, ci95_high=mean)
        variance = sum((value - mean) ** 2 for value in values) / (n - 1)
        return cls.from_moments(mean, math.sqrt(variance), n)

    @classmethod
    def from_moments(cls, mean: float, std: float, n: int) -> "RuntimeStats":
        """Rebuild statistics from stored ``(mean, std, n)`` columns.

        This is how the analyze gate and the audit rules recover the
        confidence interval from a results-database row without the
        raw repetition runtimes.
        """
        if n < 1:
            raise ValueError("sample size must be >= 1")
        mean = float(mean)
        std = float(std)
        if n < 2 or std <= 0.0:
            return cls(n=n, mean=mean, std=max(std, 0.0),
                       ci95_low=mean, ci95_high=mean)
        half_width = t_critical_95(n - 1) * std / math.sqrt(n)
        return cls(
            n=n,
            mean=mean,
            std=std,
            ci95_low=mean - half_width,
            ci95_high=mean + half_width,
        )

    @property
    def half_width(self) -> float:
        """Half-width of the 95% confidence interval."""
        return (self.ci95_high - self.ci95_low) / 2.0

    @property
    def has_spread(self) -> bool:
        """Whether the sample carries real variance information."""
        return self.n >= 2

    def overlaps(self, other: "RuntimeStats") -> bool:
        """Whether the two 95% confidence intervals overlap.

        Overlapping intervals mean the difference between the two
        means is within measurement noise: ranking the two runs
        against each other is not statistically supported.
        """
        return (
            self.ci95_low <= other.ci95_high
            and other.ci95_low <= self.ci95_high
        )

    def describe(self) -> str:
        """Human-readable ``mean ±std (n=..)`` summary."""
        if self.n < 2:
            return f"{self.mean:g} (n=1)"
        return f"{self.mean:g} ±{self.std:.3g} (n={self.n})"
