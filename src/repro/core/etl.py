"""ETL cost building blocks.

The paper excludes ETL from algorithm runtimes and notes "Comparing
ETL times of different platforms is left as future work." This module
implements that future work's cost side: composable terms each
platform driver combines into a simulated load time, reported on the
:class:`~repro.core.platform_api.GraphHandle` and compared by
``benchmarks/test_future_etl_comparison.py``.

All terms take the platform's :class:`~repro.core.cost.ClusterSpec`,
so ETL scales with the same simulated hardware as the algorithms.
"""

from __future__ import annotations

from repro.core.cost import ClusterSpec

__all__ = [
    "edge_file_bytes",
    "distributed_read_seconds",
    "parse_seconds",
    "partition_shuffle_seconds",
    "replicated_write_seconds",
    "sequential_insert_seconds",
    "sort_seconds",
]

#: Bytes per edge in the interchange edge-list file.
EDGE_FILE_BYTES = 16.0


def edge_file_bytes(num_edges: int) -> float:
    """Size of the edge-list file being loaded."""
    return EDGE_FILE_BYTES * num_edges


def distributed_read_seconds(num_bytes: float, spec: ClusterSpec) -> float:
    """Reading the input in parallel from distributed storage."""
    return num_bytes / (spec.num_workers * spec.disk_bandwidth)


def parse_seconds(records: float, ops_per_record: float, spec: ClusterSpec) -> float:
    """Deserializing/parsing records across all cores."""
    return (records * ops_per_record) / (
        spec.num_workers * spec.worker_ops_per_second
    )


def partition_shuffle_seconds(num_bytes: float, spec: ClusterSpec) -> float:
    """Repartitioning loaded data: a (W-1)/W fraction crosses the wire."""
    if spec.num_workers <= 1:
        return 0.0
    remote = num_bytes * (spec.num_workers - 1) / spec.num_workers
    return remote / (spec.num_workers * spec.network_bandwidth)


def replicated_write_seconds(
    num_bytes: float, replication: int, spec: ClusterSpec
) -> float:
    """Writing with N-way replication (replicas also cross the wire)."""
    disk = num_bytes * replication / (spec.num_workers * spec.disk_bandwidth)
    if spec.num_workers <= 1 or replication <= 1:
        return disk
    network = (
        num_bytes * (replication - 1) / (spec.num_workers * spec.network_bandwidth)
    )
    return disk + network


def sequential_insert_seconds(
    records: float, accesses_per_record: float, spec: ClusterSpec
) -> float:
    """Pointer-updating inserts (graph-database store building)."""
    return records * accesses_per_record * spec.random_access_seconds


def sort_seconds(records: float, spec: ClusterSpec) -> float:
    """Sorting records during load (column-store key ordering)."""
    import math

    if records < 2:
        return 0.0
    ops = records * math.log2(records) * 2.0
    return ops / (spec.num_workers * spec.worker_ops_per_second)
