"""Choke-point analysis of run profiles (paper Section 2.1).

The paper's choke-point methodology identifies four low-level
technical challenges; this module quantifies each one from a run's
:class:`~repro.core.cost.RunProfile`, so that workloads can be checked
for actually stressing them ("the technical experts again assess in
how far these scenarios cover the identified choke points"):

* **excessive network utilization** — share of simulated time spent
  moving bytes between workers, and total traffic;
* **large graph memory footprint** — peak worker memory against the
  budget;
* **poor access locality** — random (cache-missing) accesses versus
  sequential operations;
* **skewed execution intensity** — per-round max/mean worker load,
  plus the convergence tail: the fraction of rounds with almost no
  active vertices, where barrier latency dominates useful work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import RoundRecord, RunProfile

__all__ = ["ChokePointReport", "DOMINANT_LETTERS", "analyze_profile"]

#: One-letter labels for report matrix cells (N/M/L/S).
DOMINANT_LETTERS = {
    "network": "N",
    "memory": "M",
    "locality": "L",
    "skew": "S",
}


@dataclass(frozen=True)
class ChokePointReport:
    """Quantified choke-point indicators for one run."""

    # Excessive network utilization
    total_remote_bytes: float
    network_time_share: float
    #: Share of network time that is per-message overhead (NIC latency
    #: plus queueing delay) rather than byte transfer. This is the
    #: hardware-sensitive half of the network choke point: swapping the
    #: profile (1 GbE -> RDMA) collapses it while leaving the charge
    #: counters untouched.
    network_overhead_share: float
    # Large graph memory footprint
    peak_memory_bytes: float
    memory_budget_share: float
    # Poor access locality
    random_accesses: float
    sequential_ops: float
    random_access_share: float
    # Skewed execution intensity
    mean_skew: float
    max_skew: float
    #: Skew of the round doing the most work — robust to the noisy
    #: near-empty tail rounds, it isolates the hub-concentration
    #: effect ("skewed execution intensity").
    busiest_round_skew: float
    tail_rounds: int
    tail_round_share: float
    barrier_time_share: float

    def dominant(self) -> str:
        """The single most-stressed choke point for this run."""
        scores = {
            "network": self.network_time_share,
            "memory": self.memory_budget_share,
            "locality": self.random_access_share,
            "skew": max(self.mean_skew - 1.0, 0.0) + self.barrier_time_share,
        }
        return max(scores, key=scores.get)

    def dominant_letter(self) -> str:
        """One-letter label of :meth:`dominant` for matrix cells."""
        return DOMINANT_LETTERS[self.dominant()]


def _combined_work(record: RoundRecord) -> float:
    """Sequential ops plus random accesses, summed over workers."""
    return record.total_ops + sum(record.random_accesses_per_worker)


def analyze_profile(
    profile: RunProfile, tail_threshold: float = 0.01
) -> ChokePointReport:
    """Compute the choke-point indicators of one run profile.

    Parameters
    ----------
    profile:
        The run's cost profile.
    tail_threshold:
        A round belongs to the convergence tail when its active-vertex
        count is below this fraction of the run's maximum (the paper's
        "many of such final iterations with little work").
    """
    rounds = profile.rounds
    total_time = profile.simulated_seconds
    network_time = sum(r.network_seconds for r in rounds)
    network_overhead = sum(
        r.network_latency_seconds + r.network_queueing_seconds
        for r in rounds
    )
    barrier_time = sum(r.barrier_seconds for r in rounds)

    sequential_ops = sum(sum(r.ops_per_worker) for r in rounds)
    random_accesses = profile.total_random_accesses
    accesses = sequential_ops + random_accesses

    # Skew is defined over *combined* per-worker work (RoundRecord.skew
    # counts sequential ops plus random accesses), so the sample filter
    # and the busiest-round pick must use the same measure — filtering
    # on total_ops alone dropped rounds whose work is purely random
    # accesses (e.g. pointer-chasing traversal rounds).
    skews = [r.skew for r in rounds if _combined_work(r) > 0]
    busiest = max(rounds, key=_combined_work, default=None)
    busiest_skew = busiest.skew if busiest is not None else 1.0
    max_active = max((r.active_vertices for r in rounds), default=0)
    tail_rounds = sum(
        1
        for r in rounds
        if max_active > 0 and r.active_vertices < tail_threshold * max_active
    )

    budget = profile.cluster.memory_bytes_per_worker

    return ChokePointReport(
        total_remote_bytes=profile.total_remote_bytes,
        network_time_share=network_time / total_time if total_time else 0.0,
        network_overhead_share=(
            network_overhead / network_time if network_time else 0.0
        ),
        peak_memory_bytes=profile.peak_memory,
        memory_budget_share=profile.peak_memory / budget if budget else 0.0,
        random_accesses=random_accesses,
        sequential_ops=sequential_ops,
        random_access_share=random_accesses / accesses if accesses else 0.0,
        mean_skew=sum(skews) / len(skews) if skews else 1.0,
        max_skew=max(skews, default=1.0),
        busiest_round_skew=busiest_skew,
        tail_rounds=tail_rounds,
        tail_round_share=tail_rounds / len(rounds) if rounds else 0.0,
        barrier_time_share=barrier_time / total_time if total_time else 0.0,
    )
