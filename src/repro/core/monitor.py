"""The System Monitor (paper Figure 2).

"The System Monitor is responsible for gathering resource utilization
statistics from the SUT." For the simulated platforms the SUT's
resource usage is fully described by the run's
:class:`~repro.core.cost.RunProfile`; the monitor turns it into a
per-round utilization time series (CPU, network, memory) like the one
a real monitor would sample, plus real-process statistics (wall time,
resident memory of the benchmarking process itself).
"""

from __future__ import annotations

import csv
import resource
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.cost import RunProfile

__all__ = ["UtilizationSample", "SystemMonitor"]


@dataclass(frozen=True)
class UtilizationSample:
    """Resource utilization during one round of a run."""

    round_name: str
    timestamp: float
    cpu_utilization: float
    network_bytes: float
    active_vertices: int
    skew: float


class SystemMonitor:
    """Collects utilization samples from run profiles and the host."""

    def __init__(self):
        # The monitor measures the *host*, not the simulation; real
        # wall/CPU clocks are its whole point.
        self._start_wall = time.perf_counter()  # quality: ignore[determinism]
        self._start_cpu = time.process_time()  # quality: ignore[determinism]

    # -- simulated SUT ---------------------------------------------------

    def samples_from_profile(self, profile: RunProfile) -> list[UtilizationSample]:
        """One utilization sample per round of a simulated run.

        CPU utilization is the mean worker busy fraction within the
        round: with BSP barriers, stragglers leave other workers idle,
        so utilization is (mean work) / (max work) — directly exposing
        the skewed-execution-intensity choke point.
        """
        samples: list[UtilizationSample] = []
        clock = 0.0
        for record in profile.rounds:
            per_worker = [
                ops + rand
                for ops, rand in zip(
                    record.ops_per_worker, record.random_accesses_per_worker
                )
            ]
            busiest = max(per_worker) if per_worker else 0.0
            mean = sum(per_worker) / len(per_worker) if per_worker else 0.0
            utilization = (mean / busiest) if busiest > 0 else 0.0
            clock += record.seconds
            samples.append(
                UtilizationSample(
                    round_name=record.name,
                    timestamp=clock,
                    cpu_utilization=utilization,
                    network_bytes=record.remote_bytes,
                    active_vertices=record.active_vertices,
                    skew=record.skew,
                )
            )
        return samples

    def write_csv(
        self, samples: list[UtilizationSample], path: str | Path
    ) -> Path:
        """Export a utilization time series as CSV (for plotting).

        This is the monitor's report artifact: one row per round with
        the columns a resource-utilization plot needs.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "round",
                    "timestamp_s",
                    "cpu_utilization",
                    "network_bytes",
                    "active_vertices",
                    "skew",
                ]
            )
            for sample in samples:
                writer.writerow(
                    [
                        sample.round_name,
                        f"{sample.timestamp:.6f}",
                        f"{sample.cpu_utilization:.4f}",
                        f"{sample.network_bytes:.0f}",
                        sample.active_vertices,
                        f"{sample.skew:.4f}",
                    ]
                )
        return path

    # -- real host ---------------------------------------------------------

    def host_statistics(self) -> dict[str, float]:
        """Wall/CPU time and peak RSS of the benchmarking process."""
        usage = resource.getrusage(resource.RUSAGE_SELF)
        return {
            "wall_seconds": time.perf_counter()  # quality: ignore[determinism]
            - self._start_wall,
            "cpu_seconds": time.process_time()  # quality: ignore[determinism]
            - self._start_cpu,
            "max_rss_bytes": float(usage.ru_maxrss * 1024),
        }
