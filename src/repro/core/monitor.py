"""The System Monitor (paper Figure 2).

"The System Monitor is responsible for gathering resource utilization
statistics from the SUT." For the simulated platforms the SUT's
resource usage is fully described by the run's
:class:`~repro.core.cost.RunProfile`; the monitor turns it into a
per-round utilization time series (CPU, network, memory) like the one
a real monitor would sample, plus real-process statistics (wall time,
resident memory of the benchmarking process itself).
"""

from __future__ import annotations

import csv
import resource
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.cost import RoundRecord, RunProfile

__all__ = ["UtilizationSample", "SystemMonitor", "sample_from_record"]


@dataclass(frozen=True)
class UtilizationSample:
    """Resource utilization during one round of a run."""

    round_name: str
    timestamp: float
    cpu_utilization: float
    network_bytes: float
    active_vertices: int
    skew: float


def sample_from_record(record: RoundRecord, clock: float) -> UtilizationSample:
    """One utilization sample from one round record.

    CPU utilization is the mean worker busy fraction within the
    round: with BSP barriers, stragglers leave other workers idle,
    so utilization is (mean work) / (max work) — directly exposing
    the skewed-execution-intensity choke point. ``clock`` is the
    simulated time at which the round *ends*.

    This is the single sample-construction path: the profile-based
    :meth:`SystemMonitor.samples_from_profile` and the live
    :class:`repro.observability.MonitorSink` both build their series
    here, so the CSV export cannot drift from the trace stream.
    """
    per_worker = [
        ops + rand
        for ops, rand in zip(
            record.ops_per_worker, record.random_accesses_per_worker
        )
    ]
    busiest = max(per_worker) if per_worker else 0.0
    mean = sum(per_worker) / len(per_worker) if per_worker else 0.0
    utilization = (mean / busiest) if busiest > 0 else 0.0
    return UtilizationSample(
        round_name=record.name,
        timestamp=clock,
        cpu_utilization=utilization,
        network_bytes=record.remote_bytes,
        active_vertices=record.active_vertices,
        skew=record.skew,
    )


class SystemMonitor:
    """Collects utilization samples from run profiles and the host."""

    def __init__(self):
        # The monitor measures the *host*, not the simulation; real
        # wall/CPU clocks are its whole point.
        self._start_wall = time.perf_counter()  # quality: ignore[determinism]
        self._start_cpu = time.process_time()  # quality: ignore[determinism]

    # -- simulated SUT ---------------------------------------------------

    def samples_from_profile(self, profile: RunProfile) -> list[UtilizationSample]:
        """One utilization sample per round of a simulated run.

        Rebased on the observability layer: a
        :class:`~repro.observability.MonitorSink` replays the profile's
        rounds through the same ``on_round_end`` hook a live tracing
        run feeds, so this path and the streaming path produce
        identical series by construction.
        """
        # Imported here: the sink module builds on this module's
        # sample format, so the top-level dependency points the other
        # way (observability -> monitor).
        from repro.observability.sinks import MonitorSink

        sink = MonitorSink()
        sink.replay_profile(profile)
        return sink.samples

    def write_csv(
        self, samples: list[UtilizationSample], path: str | Path
    ) -> Path:
        """Export a utilization time series as CSV (for plotting).

        This is the monitor's report artifact: one row per round with
        the columns a resource-utilization plot needs.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "round",
                    "timestamp_s",
                    "cpu_utilization",
                    "network_bytes",
                    "active_vertices",
                    "skew",
                ]
            )
            for sample in samples:
                writer.writerow(
                    [
                        sample.round_name,
                        f"{sample.timestamp:.6f}",
                        f"{sample.cpu_utilization:.4f}",
                        f"{sample.network_bytes:.0f}",
                        sample.active_vertices,
                        f"{sample.skew:.4f}",
                    ]
                )
        return path

    # -- real host ---------------------------------------------------------

    def host_statistics(self) -> dict[str, float]:
        """Wall/CPU time and peak RSS of the benchmarking process."""
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # getrusage reports ru_maxrss in kilobytes on Linux (and most
        # BSDs) but in *bytes* on macOS; scaling unconditionally would
        # overstate Darwin peaks by 1024x.
        maxrss_unit = 1 if sys.platform == "darwin" else 1024
        return {
            "wall_seconds": time.perf_counter()  # quality: ignore[determinism]
            - self._start_wall,
            "cpu_seconds": time.process_time()  # quality: ignore[determinism]
            - self._start_cpu,
            "max_rss_bytes": float(usage.ru_maxrss * maxrss_unit),
        }
