"""The Output Validator (paper Figure 2).

"The Output Validator checks the outcome of the benchmark to ensure
correctness." Every platform's output is compared against the
single-threaded reference implementations in :mod:`repro.algorithms`:

* BFS, CONN, CD, EVO are deterministic under the benchmark's
  specifications, so outputs must match *exactly*;
* STATS counts must match exactly and the mean local clustering
  coefficient must match within floating-point tolerance;
* SSSP distances and LCC coefficients are floats but still compare
  *exactly*: the min-plus shortest-path fixpoint is insensitive to
  relaxation order, and every LCC implementation derives its float
  from integer triangle counts through the shared ``lcc_value``
  helper;
* PR ranks are compared per vertex within a relative tolerance —
  platforms sum rank shares in different orders, so bitwise equality
  is not achievable (nor required by LDBC Graphalytics).
"""

from __future__ import annotations

import math

from repro.algorithms import (
    bfs,
    community_detection,
    connected_components,
    forest_fire_links,
    lcc,
    pagerank,
    sssp,
    stats,
)
from repro.algorithms.stats import GraphStats
from repro.core.errors import ValidationFailure
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph

__all__ = ["OutputValidator"]


class OutputValidator:
    """Validates platform outputs against reference implementations."""

    def __init__(
        self,
        clustering_tolerance: float = 1e-9,
        pagerank_tolerance: float = 1e-9,
    ):
        self.clustering_tolerance = clustering_tolerance
        #: Per-vertex relative tolerance for PR scores.
        self.pagerank_tolerance = pagerank_tolerance

    def reference_output(
        self, graph: Graph, algorithm: Algorithm, params: AlgorithmParams
    ):
        """Compute the ground-truth output for a workload."""
        if algorithm is Algorithm.STATS:
            return stats(graph)
        if algorithm is Algorithm.BFS:
            return bfs(graph, params.resolve_bfs_source(graph))
        if algorithm is Algorithm.CONN:
            return connected_components(graph)
        if algorithm is Algorithm.CD:
            return community_detection(
                graph,
                max_iterations=params.cd_max_iterations,
                hop_attenuation=params.cd_hop_attenuation,
                node_preference=params.cd_node_preference,
            )
        if algorithm is Algorithm.EVO:
            return forest_fire_links(
                graph,
                params.evo_new_vertices,
                p_forward=params.evo_p_forward,
                max_hops=params.evo_max_hops,
                seed=params.evo_seed,
            )
        if algorithm is Algorithm.PR:
            return pagerank(
                graph,
                damping=params.pagerank_damping,
                iterations=params.pagerank_iterations,
            )
        if algorithm is Algorithm.SSSP:
            return sssp(graph, params.resolve_sssp_source(graph))
        if algorithm is Algorithm.LCC:
            return lcc(graph)
        raise ValueError(f"unknown algorithm {algorithm}")

    def validate(
        self,
        graph: Graph,
        algorithm: Algorithm,
        params: AlgorithmParams,
        output,
    ) -> None:
        """Raise :class:`ValidationFailure` if output is incorrect."""
        reference = self.reference_output(graph, algorithm, params)
        if algorithm is Algorithm.STATS:
            self._validate_stats(output, reference)
            return
        if algorithm is Algorithm.PR:
            self._validate_pagerank(output, reference)
            return
        if output != reference:
            difference = self._describe_difference(output, reference)
            raise ValidationFailure(
                f"{algorithm.value} output disagrees with reference: {difference}"
            )

    def _validate_pagerank(self, output, reference: dict) -> None:
        """Per-vertex tolerance comparison for PR rank maps."""
        if not isinstance(output, dict):
            raise ValidationFailure(
                f"PR output must be a dict, got {type(output).__name__}"
            )
        if set(output) != set(reference):
            difference = self._describe_difference(output, reference)
            raise ValidationFailure(
                f"PR output disagrees with reference: {difference}"
            )
        wrong = {
            vertex: (output[vertex], expected)
            for vertex, expected in reference.items()
            if not math.isclose(
                output[vertex],
                expected,
                rel_tol=self.pagerank_tolerance,
                abs_tol=self.pagerank_tolerance,
            )
        }
        if wrong:
            sample = dict(sorted(wrong.items())[:3])
            raise ValidationFailure(
                f"PR output disagrees with reference beyond tolerance "
                f"{self.pagerank_tolerance}: {len(wrong)} vertices "
                f"(got, expected): {sample}"
            )

    def _validate_stats(self, output, reference: GraphStats) -> None:
        if not isinstance(output, GraphStats):
            raise ValidationFailure(
                f"STATS output must be GraphStats, got {type(output).__name__}"
            )
        if output.num_vertices != reference.num_vertices:
            raise ValidationFailure(
                f"STATS vertex count {output.num_vertices} != "
                f"{reference.num_vertices}"
            )
        if output.num_edges != reference.num_edges:
            raise ValidationFailure(
                f"STATS edge count {output.num_edges} != {reference.num_edges}"
            )
        if not math.isclose(
            output.mean_local_clustering,
            reference.mean_local_clustering,
            rel_tol=self.clustering_tolerance,
            abs_tol=self.clustering_tolerance,
        ):
            raise ValidationFailure(
                f"STATS mean clustering {output.mean_local_clustering} != "
                f"{reference.mean_local_clustering}"
            )

    @staticmethod
    def _describe_difference(output, reference) -> str:
        """Short human-readable diff for the failure message."""
        if not isinstance(output, dict) or not isinstance(reference, dict):
            return f"got {type(output).__name__}"
        missing = set(reference) - set(output)
        extra = set(output) - set(reference)
        if missing:
            return f"{len(missing)} keys missing (e.g. {sorted(missing)[:3]})"
        if extra:
            return f"{len(extra)} unexpected keys (e.g. {sorted(extra)[:3]})"
        wrong = [k for k in reference if output[k] != reference[k]]
        sample = {k: (output[k], reference[k]) for k in sorted(wrong)[:3]}
        return f"{len(wrong)} wrong values (got, expected): {sample}"
