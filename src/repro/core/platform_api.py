"""The platform driver API.

The paper: "From a high-level perspective, adding a new platform to
Graphalytics consists of implementing the algorithms, adding a dataset
loading method, providing a workload processing interface, and logging
the information required for results reporting."

This module defines that contract. A platform driver implements:

* :meth:`Platform.upload_graph` — the dataset loading method (ETL);
  its cost is reported separately and *not* included in algorithm
  runtimes ("The runtime measures the complete execution of an
  algorithm, from job submission to result availability, but does not
  include ETL");
* :meth:`Platform.run_algorithm` — the workload processing interface;
* the returned :class:`PlatformRun` — the logged information
  (simulated runtime, per-round profile, output).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.core.cost import ClusterSpec, MemoryBudgetExceeded, RunProfile
from repro.core.errors import PlatformFailure, SimulatedOOM, SimulatedTimeout
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph

__all__ = ["GraphHandle", "PlatformRun", "Platform"]


@dataclass
class GraphHandle:
    """A graph as loaded into a platform (the result of ETL)."""

    name: str
    platform: str
    graph: Graph
    #: Wall-clock seconds the (real) load took.
    etl_seconds: float = 0.0
    #: Simulated seconds the load costs on the platform's cluster —
    #: the paper's "Comparing ETL times of different platforms is
    #: left as future work", implemented (see benchmarks).
    etl_simulated_seconds: float = 0.0
    storage_bytes: float = 0.0
    detail: dict = field(default_factory=dict)


@dataclass
class PlatformRun:
    """Everything a driver logs about one algorithm execution."""

    platform: str
    graph_name: str
    algorithm: Algorithm
    output: object
    profile: RunProfile
    wall_seconds: float

    @property
    def simulated_seconds(self) -> float:
        """The benchmark's "runtime" metric (simulated makespan)."""
        return self.profile.simulated_seconds


class Platform(abc.ABC):
    """Base class of all platform drivers.

    Subclasses set :attr:`name` and implement :meth:`_load` and
    :meth:`_execute`; the base class wraps them with timing, converts
    memory-budget violations into typed
    :class:`~repro.core.errors.SimulatedOOM` failures, and enforces
    the per-run :attr:`timeout_seconds` budget as a typed
    :class:`~repro.core.errors.SimulatedTimeout` — so the Benchmark
    Core records failures as Figure 4's "missing values" instead of
    crashing, and never sees a bare ``Exception`` for a simulated
    platform limit.
    """

    #: Registry name, e.g. ``"giraph"``.
    name: str = ""
    #: Whether the platform runs on one machine (its driver then has a
    #: built-in default cluster spec and rejects multi-worker specs).
    single_machine: bool = False

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster
        #: Optional :class:`repro.robustness.faults.FaultInjector`;
        #: drivers hand it to every cost meter they build, and the
        #: base class advances its attempt counter per execution (the
        #: mechanism behind transient faults and bounded retry).
        self.faults = None
        #: Attached :class:`repro.observability.TraceSink` observers;
        #: drivers hand them to every algorithm cost meter they build,
        #: and the base class brackets each execution with
        #: run-begin/run-end events. Empty by default (zero overhead).
        self.sinks: tuple = ()
        #: Simulated-seconds budget per algorithm run; exceeding it
        #: raises a typed :class:`SimulatedTimeout`.
        self.timeout_seconds: float | None = None

    # -- public API --------------------------------------------------

    def upload_graph(self, name: str, graph: Graph) -> GraphHandle:
        """ETL a graph into the platform's storage representation."""
        # Harness-overhead measurement (real seconds spent simulating),
        # reported alongside — never mixed into — simulated time.
        start = time.perf_counter()  # quality: ignore[determinism]
        try:
            handle = self._load(name, graph)
        except MemoryBudgetExceeded as exc:
            raise SimulatedOOM(self.name, str(exc)) from exc
        handle.etl_seconds = time.perf_counter() - start  # quality: ignore[determinism]
        return handle

    def run_algorithm(
        self,
        handle: GraphHandle,
        algorithm: Algorithm,
        params: AlgorithmParams | None = None,
    ) -> PlatformRun:
        """Execute one algorithm; returns the logged run record."""
        if handle.platform != self.name:
            raise ValueError(
                f"graph {handle.name!r} was loaded into {handle.platform!r}, "
                f"not {self.name!r}"
            )
        params = params or AlgorithmParams()
        if self.faults is not None:
            self.faults.begin_attempt()
        if self.sinks:
            for sink in self.sinks:
                sink.on_run_begin(
                    self.name, handle.name, algorithm.value, self.cluster
                )
        # Harness-overhead measurement, as above.
        start = time.perf_counter()  # quality: ignore[determinism]
        try:
            output, profile = self._execute(handle, algorithm, params)
        except MemoryBudgetExceeded as exc:
            self._emit_run_end(None, "out-of-memory")
            raise SimulatedOOM(self.name, str(exc)) from exc
        except PlatformFailure as exc:
            self._emit_run_end(None, exc.reason)
            raise
        wall = time.perf_counter() - start  # quality: ignore[determinism]
        if (
            self.timeout_seconds is not None
            and profile.simulated_seconds > self.timeout_seconds
        ):
            timeout = SimulatedTimeout(
                self.name, profile.simulated_seconds, self.timeout_seconds
            )
            self._emit_run_end(profile, timeout.reason)
            raise timeout
        self._emit_run_end(profile, "success")
        return PlatformRun(
            platform=self.name,
            graph_name=handle.name,
            algorithm=algorithm,
            output=output,
            profile=profile,
            wall_seconds=wall,
        )

    def _emit_run_end(self, profile: RunProfile | None, status: str) -> None:
        if self.sinks:
            for sink in self.sinks:
                sink.on_run_end(profile, status)

    def delete_graph(self, handle: GraphHandle) -> None:
        """Release platform storage for a graph (default: no-op)."""

    def supported_algorithms(self) -> list[Algorithm]:
        """Algorithms this driver implements (default: all five)."""
        return list(Algorithm)

    # -- driver hooks -------------------------------------------------

    @abc.abstractmethod
    def _load(self, name: str, graph: Graph) -> GraphHandle:
        """Build the platform-specific graph representation."""

    @abc.abstractmethod
    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        """Run one algorithm, returning (output, cost profile)."""
