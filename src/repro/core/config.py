"""Configuration files for graphs and benchmark runs (Section 2.3).

The paper's user workflow: "We also provide configuration files
associated with these graphs. Alternatively, users can generate
synthetic graphs using Datagen. In this case, users must write their
own configuration files. [...] If users want to run a subset of the
algorithms, they must define a run."

Graph configuration (INI format)::

    [graph]
    name = patents
    edge_file = graphs/patents.e
    vertex_file = graphs/patents.v   ; optional
    directed = false
    weights = uniform                ; optional: derive edge weights
                                    ; (SSSP needs a weighted graph)

    [bfs]
    source = 420

    [sssp]
    source = 420

Preconfigured catalog graphs reference the generator instead of a
file (the repository ships these under ``configs/``)::

    [graph]
    name = patents
    catalog = patents

Benchmark configuration::

    [benchmark]
    platforms = giraph, mapreduce
    graphs = patents, snb-1000
    algorithms = BFS, CONN
    time_limit_seconds = 10000
    validate = true
    repetitions = 5
    warmup = 1

``repetitions``/``warmup`` are the statistical-rigor knobs the
``graphalytics audit`` command checks for; unknown or misspelled keys
in either file kind raise a ``UserWarning`` naming the nearest valid
key instead of being silently ignored.
"""

from __future__ import annotations

import configparser
import dataclasses
import difflib
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import ConfigurationError
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec

__all__ = ["GraphConfig", "HardwareSettings", "load_graph_config",
           "load_benchmark_config", "load_hardware_settings",
           "save_graph_config", "unknown_config_keys",
           "GRAPH_CONFIG_SECTIONS", "BENCHMARK_CONFIG_SECTIONS"]

#: Known sections and keys of a graph configuration file.
GRAPH_CONFIG_SECTIONS: dict[str, frozenset[str]] = {
    "graph": frozenset(
        {
            "name",
            "edge_file",
            "vertex_file",
            "catalog",
            "directed",
            "seed",
            "weights",
        }
    ),
    "bfs": frozenset({"source"}),
    "sssp": frozenset({"source"}),
}

#: Known sections and keys of a benchmark configuration file.
BENCHMARK_CONFIG_SECTIONS: dict[str, frozenset[str]] = {
    "benchmark": frozenset(
        {
            "platforms",
            "graphs",
            "algorithms",
            "time_limit_seconds",
            "validate",
            "repetitions",
            "warmup",
        }
    ),
    "hardware": frozenset({"profile", "workers"}),
}


def unknown_config_keys(
    parser: configparser.ConfigParser,
    known_sections: dict[str, frozenset[str]],
) -> list[tuple[str, str, str | None]]:
    """Sections/keys the schema does not know, with spelling hints.

    Returns ``(section, key, nearest_valid)`` triples — ``key`` is
    empty for an unknown section. Misspelled configuration keys are a
    classic silent benchmark fault (``repetition = 5`` quietly runs a
    single repetition); both the loaders (as warnings) and the
    ``config-unknown-key`` audit rule (as findings) report them.
    """
    unknown: list[tuple[str, str, str | None]] = []
    for section in parser.sections():
        if section not in known_sections:
            nearest = difflib.get_close_matches(
                section, list(known_sections), n=1
            )
            unknown.append((section, "", nearest[0] if nearest else None))
            continue
        known_keys = known_sections[section]
        for key in parser[section]:
            if key not in known_keys:
                nearest = difflib.get_close_matches(
                    key, sorted(known_keys), n=1
                )
                unknown.append(
                    (section, key, nearest[0] if nearest else None)
                )
    return unknown


def _warn_unknown_keys(
    parser: configparser.ConfigParser,
    known_sections: dict[str, frozenset[str]],
    path: Path,
) -> int:
    """Emit one counted ``UserWarning`` per unknown section/key."""
    entries = unknown_config_keys(parser, known_sections)
    for section, key, nearest in entries:
        if key:
            message = f"{path}: unknown key '{key}' in [{section}]"
        else:
            message = f"{path}: unknown section [{section}]"
        if nearest:
            message += f"; did you mean '{nearest}'?"
        warnings.warn(message, UserWarning, stacklevel=3)
    return len(entries)


@dataclass
class GraphConfig:
    """One dataset's configuration file."""

    name: str
    #: Edge-list file, or ``None`` for catalog-backed graphs.
    edge_file: str | None = None
    vertex_file: str | None = None
    #: Catalog name (e.g. ``graph500-12``) for generator-backed graphs.
    catalog: str | None = None
    directed: bool = False
    #: Explicit generator seed for catalog-backed graphs; ``None``
    #: keeps each catalog entry's built-in seed.
    seed: int | None = None
    #: ``"uniform"`` derives deterministic edge weights (the SSSP
    #: workload requirement); ``None`` leaves the graph unweighted.
    weights: str | None = None
    params: AlgorithmParams = field(default_factory=AlgorithmParams)

    def load(self, base_dir: str | Path | None = None):
        """Materialize the configured graph.

        File-backed configs read their edge (and optional vertex)
        files, resolved against ``base_dir``; catalog-backed configs
        generate deterministically. ``weights = uniform`` derives
        deterministic edge weights from the graph seed.
        """
        from repro.datasets.catalog import load_dataset
        from repro.graph.io import read_edge_list

        if self.catalog is not None:
            graph = load_dataset(self.catalog, seed=self.seed)
        else:
            base = Path(base_dir) if base_dir is not None else Path(".")
            vertex_path = (
                base / self.vertex_file if self.vertex_file else None
            )
            graph = read_edge_list(
                base / self.edge_file,
                directed=self.directed,
                vertex_path=vertex_path,
            )
        if self.weights == "uniform":
            graph = graph.with_uniform_weights(
                self.seed if self.seed is not None else 0
            )
        return graph


def _parse_bool(value: str, context: str) -> bool:
    lowered = value.strip().lower()
    if lowered in ("true", "yes", "1"):
        return True
    if lowered in ("false", "no", "0"):
        return False
    raise ConfigurationError(f"{context}: expected a boolean, got {value!r}")


def load_graph_config(path: str | Path) -> GraphConfig:
    """Parse a graph configuration file."""
    path = Path(path)
    parser = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
    read = parser.read(path)
    if not read:
        raise ConfigurationError(f"cannot read graph config {path}")
    if "graph" not in parser:
        raise ConfigurationError(f"{path}: missing [graph] section")
    section = parser["graph"]
    if "name" not in section:
        raise ConfigurationError(f"{path}: [graph] needs 'name'")
    if ("edge_file" in section) == ("catalog" in section):
        raise ConfigurationError(
            f"{path}: [graph] needs exactly one of 'edge_file' or 'catalog'"
        )
    _warn_unknown_keys(parser, GRAPH_CONFIG_SECTIONS, path)

    params = AlgorithmParams()
    if "bfs" in parser and "source" in parser["bfs"]:
        try:
            params = params.with_source(int(parser["bfs"]["source"]))
        except ValueError as exc:
            raise ConfigurationError(f"{path}: invalid BFS source") from exc
    if "sssp" in parser and "source" in parser["sssp"]:
        try:
            params = dataclasses.replace(
                params, sssp_source=int(parser["sssp"]["source"])
            )
        except ValueError as exc:
            raise ConfigurationError(f"{path}: invalid SSSP source") from exc

    seed = None
    if "seed" in section:
        try:
            seed = int(section["seed"])
        except ValueError as exc:
            raise ConfigurationError(f"{path}: invalid seed") from exc

    weights = section.get("weights") or None
    if weights is not None:
        weights = weights.strip().lower()
        if weights in ("", "none"):
            weights = None
        elif weights != "uniform":
            raise ConfigurationError(
                f"{path}: weights must be 'uniform' or 'none', "
                f"got {weights!r}"
            )

    return GraphConfig(
        name=section["name"],
        edge_file=section.get("edge_file") or None,
        vertex_file=section.get("vertex_file") or None,
        catalog=section.get("catalog") or None,
        directed=_parse_bool(section.get("directed", "false"), str(path)),
        seed=seed,
        weights=weights,
        params=params,
    )


def save_graph_config(config: GraphConfig, path: str | Path) -> Path:
    """Write a graph configuration file."""
    parser = configparser.ConfigParser()
    parser["graph"] = {
        "name": config.name,
        "directed": str(config.directed).lower(),
    }
    if config.edge_file:
        parser["graph"]["edge_file"] = config.edge_file
    if config.catalog:
        parser["graph"]["catalog"] = config.catalog
    if config.vertex_file:
        parser["graph"]["vertex_file"] = config.vertex_file
    if config.seed is not None:
        parser["graph"]["seed"] = str(config.seed)
    if config.weights is not None:
        parser["graph"]["weights"] = config.weights
    if config.params.bfs_source is not None:
        parser["bfs"] = {"source": str(config.params.bfs_source)}
    if config.params.sssp_source is not None:
        parser["sssp"] = {"source": str(config.params.sssp_source)}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        parser.write(handle)
    return path


def load_benchmark_config(path: str | Path) -> tuple[BenchmarkRunSpec, float | None]:
    """Parse a benchmark run configuration.

    Returns the run spec plus the optional time limit (which the
    Benchmark Core takes as a separate argument).
    """
    path = Path(path)
    parser = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
    read = parser.read(path)
    if not read:
        raise ConfigurationError(f"cannot read benchmark config {path}")
    if "benchmark" not in parser:
        raise ConfigurationError(f"{path}: missing [benchmark] section")
    _warn_unknown_keys(parser, BENCHMARK_CONFIG_SECTIONS, path)
    section = parser["benchmark"]

    def split_list(key: str) -> list[str] | None:
        raw = section.get(key)
        if raw is None or not raw.strip():
            return None
        return [item.strip() for item in raw.split(",") if item.strip()]

    algorithms = None
    algorithm_names = split_list("algorithms")
    if algorithm_names is not None:
        try:
            algorithms = [Algorithm.from_name(name) for name in algorithm_names]
        except ValueError as exc:
            raise ConfigurationError(f"{path}: {exc}") from exc

    time_limit = None
    if "time_limit_seconds" in section:
        try:
            time_limit = float(section["time_limit_seconds"])
        except ValueError as exc:
            raise ConfigurationError(f"{path}: invalid time limit") from exc

    def parse_int(key: str, default: int, minimum: int) -> int:
        raw = section.get(key)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError as exc:
            raise ConfigurationError(f"{path}: invalid {key}") from exc
        if value < minimum:
            raise ConfigurationError(
                f"{path}: {key} must be >= {minimum}, got {value}"
            )
        return value

    spec = BenchmarkRunSpec(
        platforms=split_list("platforms"),
        graphs=split_list("graphs"),
        algorithms=algorithms,
        validate_outputs=_parse_bool(section.get("validate", "true"), str(path)),
        repetitions=parse_int("repetitions", 1, 1),
        warmup_runs=parse_int("warmup", 0, 0),
    )
    return spec, time_limit


@dataclass(frozen=True)
class HardwareSettings:
    """The optional ``[hardware]`` section of a benchmark config.

    ``profile`` names a registered hardware profile for the
    distributed platforms; ``workers`` overrides the profile's
    reference worker count. Both ``None`` means the CLI falls back to
    its flag values or the paper-default cluster.
    """

    profile: str | None = None
    workers: int | None = None


def load_hardware_settings(path: str | Path) -> HardwareSettings:
    """Parse the ``[hardware]`` section of a benchmark config.

    Validates the profile name against the registry and the worker
    count's positivity; a config without the section (the common case)
    yields empty settings. Warnings for unknown keys are already
    emitted by :func:`load_benchmark_config` — this reader only pulls
    the two known keys.
    """
    path = Path(path)
    parser = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
    if not parser.read(path):
        raise ConfigurationError(f"cannot read benchmark config {path}")
    if "hardware" not in parser:
        return HardwareSettings()
    section = parser["hardware"]
    profile = section.get("profile")
    if profile is not None:
        profile = profile.strip() or None
    if profile is not None:
        from repro.hardware.registry import available_profiles

        if profile not in available_profiles():
            raise ConfigurationError(
                f"{path}: unknown hardware profile {profile!r}; "
                f"registered: {', '.join(available_profiles())}"
            )
    workers = None
    raw_workers = section.get("workers")
    if raw_workers is not None and raw_workers.strip():
        try:
            workers = int(raw_workers)
        except ValueError as exc:
            raise ConfigurationError(f"{path}: invalid workers") from exc
        if workers < 1:
            raise ConfigurationError(
                f"{path}: workers must be >= 1, got {workers}"
            )
    return HardwareSettings(profile=profile, workers=workers)
