"""Workload definitions: algorithms, parameters, and runs.

Mirrors the paper's Section 2.3 user workflow: "By default,
Graphalytics runs all the algorithms implemented on all configured
graphs. If users want to run a subset of the algorithms, they must
define a run that includes only the algorithms and graphs of
interest."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigurationError
from repro.graph.graph import Graph

__all__ = ["Algorithm", "AlgorithmParams", "Workload", "BenchmarkRunSpec"]


class Algorithm(enum.Enum):
    """The Graphalytics algorithms.

    STATS, BFS, CONN, CD, and EVO are the paper's original workload
    (Section 3.2); PR, SSSP, and LCC close the gap to the
    six-algorithm LDBC Graphalytics v1.0 workload (PAPERS.md).
    """

    STATS = "STATS"
    BFS = "BFS"
    CONN = "CONN"
    CD = "CD"
    EVO = "EVO"
    PR = "PR"
    SSSP = "SSSP"
    LCC = "LCC"

    @classmethod
    def from_name(cls, name: str) -> "Algorithm":
        """Resolve an algorithm by (case-insensitive) name."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {name!r}; choose from "
                f"{[a.name for a in cls]}"
            ) from None


@dataclass(frozen=True)
class AlgorithmParams:
    """Parameters for the algorithms that take any.

    Attributes
    ----------
    bfs_source:
        Seed vertex for BFS; ``None`` selects the smallest vertex id.
    cd_max_iterations, cd_hop_attenuation, cd_node_preference:
        Community-detection (Leung et al.) knobs.
    evo_new_vertices, evo_p_forward, evo_max_hops, evo_seed:
        Forest-fire evolution knobs.
    pagerank_damping, pagerank_iterations:
        The PR damping factor and its fixed iteration count.
    sssp_source:
        Seed vertex for SSSP; ``None`` selects the smallest vertex id.
    """

    bfs_source: int | None = None
    cd_max_iterations: int = 10
    cd_hop_attenuation: float = 0.1
    cd_node_preference: float = 0.1
    evo_new_vertices: int = 100
    evo_p_forward: float = 0.3
    evo_max_hops: int = 2
    evo_seed: int = 0
    pagerank_damping: float = 0.85
    pagerank_iterations: int = 10
    sssp_source: int | None = None

    def resolve_bfs_source(self, graph: Graph) -> int:
        """The effective BFS seed vertex for a graph."""
        if self.bfs_source is not None:
            if not graph.has_vertex(self.bfs_source):
                raise ValueError(f"BFS source {self.bfs_source} not in graph")
            return self.bfs_source
        return int(graph.vertices[0])

    def resolve_sssp_source(self, graph: Graph) -> int:
        """The effective SSSP seed vertex for a graph.

        Also where the workload's weight requirement is enforced:
        running SSSP on an unweighted graph raises a clear
        :class:`ConfigurationError` here, at workload-resolution time,
        instead of a ``KeyError`` deep inside a platform engine.
        """
        if graph.weights is None:
            raise ConfigurationError(
                "SSSP requires a weighted graph; this graph has no edge "
                "weights (generate them with Graph.with_uniform_weights, "
                "or set 'weights = uniform' in the graph config)"
            )
        if self.sssp_source is not None:
            if not graph.has_vertex(self.sssp_source):
                raise ValueError(
                    f"SSSP source {self.sssp_source} not in graph"
                )
            return self.sssp_source
        return int(graph.vertices[0])

    def with_source(self, source: int) -> "AlgorithmParams":
        """Copy of these params with an explicit BFS source."""
        return replace(self, bfs_source=source)


@dataclass(frozen=True)
class Workload:
    """One (graph, algorithm, parameters) combination."""

    graph_name: str
    algorithm: Algorithm
    params: AlgorithmParams = field(default_factory=AlgorithmParams)

    @property
    def label(self) -> str:
        """Human-readable workload identifier."""
        return f"{self.algorithm.value}@{self.graph_name}"


@dataclass
class BenchmarkRunSpec:
    """A user-defined run: which platforms, graphs, and algorithms.

    ``algorithms=None`` / ``graphs=None`` means "all configured",
    matching the harness default.
    """

    platforms: list[str] | None = None
    graphs: list[str] | None = None
    algorithms: list[Algorithm] | None = None
    params: AlgorithmParams = field(default_factory=AlgorithmParams)
    validate_outputs: bool = True
    repetitions: int = 1
    #: Unmeasured executions before the measured repetitions of each
    #: cell (the warmup the SoK fault taxonomy asks benchmarks to
    #: declare); their runtimes are discarded.
    warmup_runs: int = 0

    def selects_platform(self, name: str) -> bool:
        """Whether the run includes this platform."""
        return self.platforms is None or name in self.platforms

    def selects_graph(self, name: str) -> bool:
        """Whether the run includes this graph."""
        return self.graphs is None or name in self.graphs

    def selects_algorithm(self, algorithm: Algorithm) -> bool:
        """Whether the run includes this algorithm."""
        return self.algorithms is None or algorithm in self.algorithms
