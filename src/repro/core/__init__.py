"""Benchmark harness core (the paper's Figure 2 architecture).

The modules here implement the Benchmark Core and its satellites:

* :mod:`repro.core.platform_api` — the driver API platforms implement
  ("an API that will enable third party developers to port our
  benchmark to their graph processing platforms");
* :mod:`repro.core.workload` — algorithms, graphs, and runs;
* :mod:`repro.core.benchmark` — the Benchmark Core that executes all
  (platform, graph, algorithm) combinations;
* :mod:`repro.core.validation` — the Output Validator;
* :mod:`repro.core.monitor` — the System Monitor;
* :mod:`repro.core.report` — the Report Generator;
* :mod:`repro.core.results_db` — the Results database;
* :mod:`repro.core.metrics` — runtime and (k)TEPS metrics;
* :mod:`repro.core.chokepoints` — choke-point analysis of run profiles;
* :mod:`repro.core.quality` — code-quality reporting (Section 3.5);
* :mod:`repro.core.cost` — the simulated-hardware cost model shared by
  every platform simulation;
* :mod:`repro.core.config` — configuration files for graphs and runs.
"""

from repro.core.errors import (
    ConfigurationError,
    GraphalyticsError,
    PlatformFailure,
    ValidationFailure,
)
from repro.core.cost import ClusterSpec, CostMeter, RoundRecord, RunProfile
from repro.core.platform_api import GraphHandle, Platform, PlatformRun
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec, Workload
from repro.core.metrics import kteps, teps
from repro.core.validation import OutputValidator
from repro.core.monitor import SystemMonitor, UtilizationSample
from repro.core.benchmark import BenchmarkCore, BenchmarkResult, BenchmarkSuiteResult
from repro.core.report import ReportGenerator
from repro.core.results_db import ResultsDatabase

__all__ = [
    "GraphalyticsError",
    "PlatformFailure",
    "ValidationFailure",
    "ConfigurationError",
    "ClusterSpec",
    "CostMeter",
    "RoundRecord",
    "RunProfile",
    "GraphHandle",
    "Platform",
    "PlatformRun",
    "Algorithm",
    "AlgorithmParams",
    "Workload",
    "BenchmarkRunSpec",
    "teps",
    "kteps",
    "OutputValidator",
    "SystemMonitor",
    "UtilizationSample",
    "BenchmarkCore",
    "BenchmarkResult",
    "BenchmarkSuiteResult",
    "ReportGenerator",
    "ResultsDatabase",
]
