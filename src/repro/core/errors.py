"""Exception hierarchy of the benchmark harness."""

from __future__ import annotations

__all__ = [
    "GraphalyticsError",
    "PlatformFailure",
    "SimulatedOOM",
    "SimulatedTimeout",
    "SuiteWorkerError",
    "ValidationFailure",
    "ConfigurationError",
]


class GraphalyticsError(Exception):
    """Base class for all benchmark errors."""


class PlatformFailure(GraphalyticsError):
    """A platform failed to process a workload.

    Figure 4 of the paper reports such failures as missing values
    ("Missing values indicate failures"); the Benchmark Core catches
    this exception and records the failure rather than aborting the
    whole benchmark.

    Parameters
    ----------
    platform:
        Name of the failing platform.
    reason:
        Failure category, e.g. ``out-of-memory`` or ``timeout``.
    detail:
        Human-readable explanation for the report.
    """

    #: Whether a retry may succeed (set by injected transient faults);
    #: the Benchmark Core only retries transient failures.
    transient: bool = False

    def __init__(self, platform: str, reason: str, detail: str = ""):
        self.platform = platform
        self.reason = reason
        self.detail = detail
        message = f"{platform}: {reason}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class SimulatedOOM(PlatformFailure):
    """A platform exceeded its (simulated) per-worker memory budget.

    The typed form of the paper's out-of-memory failure cells
    (Figure 4: Giraph/GraphX dying on the large Graph500 scales,
    Neo4j's single-machine memory wall). The cost model is
    deterministic, so a given (platform, graph, ``--mem-limit``)
    combination raises this at the same superstep — with the same
    detail string — on every run.
    """

    def __init__(self, platform: str, detail: str = ""):
        super().__init__(platform, "out-of-memory", detail)


class SimulatedTimeout(PlatformFailure):
    """An algorithm run exceeded its simulated-runtime budget.

    The typed form of the paper's time-limit failures ("due to time
    constraints, MapReduce was not able to complete some algorithms").
    """

    def __init__(
        self, platform: str, simulated_seconds: float, budget_seconds: float
    ):
        self.simulated_seconds = simulated_seconds
        self.budget_seconds = budget_seconds
        super().__init__(
            platform,
            "timeout",
            f"simulated {simulated_seconds:.1f} s exceeds the "
            f"{budget_seconds:.1f} s budget",
        )


class SuiteWorkerError(GraphalyticsError):
    """An unexpected (non-platform) error while running one combo.

    Raised by the suite runner when harness code — not the simulated
    platform — fails, so the (platform, graph) combination that broke
    is never lost, even when the error crossed a process-pool boundary
    where the original traceback context would otherwise vanish.
    """

    def __init__(self, platform: str, graph_name: str, detail: str):
        self.platform = platform
        self.graph_name = graph_name
        self.detail = detail
        super().__init__(f"{platform}/{graph_name}: {detail}")

    def __reduce__(self):
        # Exceptions with multi-argument constructors need an explicit
        # recipe to survive the process-pool pickle round trip.
        return (SuiteWorkerError, (self.platform, self.graph_name, self.detail))


class ValidationFailure(GraphalyticsError):
    """A platform produced output that disagrees with the reference."""


class ConfigurationError(GraphalyticsError):
    """Invalid benchmark, graph, or platform configuration."""
