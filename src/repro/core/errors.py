"""Exception hierarchy of the benchmark harness."""

from __future__ import annotations

__all__ = [
    "GraphalyticsError",
    "PlatformFailure",
    "ValidationFailure",
    "ConfigurationError",
]


class GraphalyticsError(Exception):
    """Base class for all benchmark errors."""


class PlatformFailure(GraphalyticsError):
    """A platform failed to process a workload.

    Figure 4 of the paper reports such failures as missing values
    ("Missing values indicate failures"); the Benchmark Core catches
    this exception and records the failure rather than aborting the
    whole benchmark.

    Parameters
    ----------
    platform:
        Name of the failing platform.
    reason:
        Failure category, e.g. ``out-of-memory`` or ``timeout``.
    detail:
        Human-readable explanation for the report.
    """

    def __init__(self, platform: str, reason: str, detail: str = ""):
        self.platform = platform
        self.reason = reason
        self.detail = detail
        message = f"{platform}: {reason}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class ValidationFailure(GraphalyticsError):
    """A platform produced output that disagrees with the reference."""


class ConfigurationError(GraphalyticsError):
    """Invalid benchmark, graph, or platform configuration."""
