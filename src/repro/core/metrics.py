"""Performance metrics: runtime and traversed edges per second.

Figure 5 of the paper reports CONN performance in kTEPS (thousands of
traversed edges per second): "The size of the processed graph is
included in this metric, which reveals the influence of the graph
characteristics on performance." Section 3.4 reports the DBMS BFS
rate in MTEPS.

Following Graphalytics (and Graph500) practice, TEPS divides the
number of edges the algorithm traversed by the measured runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.workload import Algorithm, AlgorithmParams
    from repro.graph.graph import Graph

__all__ = ["teps", "kteps", "mteps", "edges_traversed_for"]


def edges_traversed_for(
    graph: "Graph", algorithm: "Algorithm", params: "AlgorithmParams"
) -> float:
    """Edges an algorithm traverses on a graph, for the TEPS metrics.

    Following the paper's usage ("the size of the processed graph is
    included in this metric"), single-pass and frontier algorithms are
    normalized by the full undirected arc count ``2 * E`` — every edge
    in both directions once. The all-active PR workload is the one
    exception: it provably traverses every arc *in every iteration*,
    so its count is ``iterations * 2 * E`` (otherwise its TEPS would
    be deflated by the iteration count relative to BFS, hiding exactly
    the per-round message-volume choke point it exists to measure).
    """
    from repro.core.workload import Algorithm

    arcs = 2.0 * graph.to_undirected().num_edges
    if algorithm is Algorithm.PR:
        return max(1, params.pagerank_iterations) * arcs
    return arcs


def teps(edges_traversed: float, seconds: float) -> float:
    """Traversed edges per second.

    Raises ``ValueError`` for non-positive runtimes — a zero runtime
    means the measurement is broken, not that the platform is
    infinitely fast.
    """
    if seconds <= 0:
        raise ValueError(f"runtime must be positive, got {seconds}")
    if edges_traversed < 0:
        raise ValueError("edges_traversed must be non-negative")
    return edges_traversed / seconds


def kteps(edges_traversed: float, seconds: float) -> float:
    """Thousands of traversed edges per second (Figure 5's unit)."""
    return teps(edges_traversed, seconds) / 1e3


def mteps(edges_traversed: float, seconds: float) -> float:
    """Millions of traversed edges per second (Section 3.4's unit)."""
    return teps(edges_traversed, seconds) / 1e6
