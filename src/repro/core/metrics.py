"""Performance metrics: runtime and traversed edges per second.

Figure 5 of the paper reports CONN performance in kTEPS (thousands of
traversed edges per second): "The size of the processed graph is
included in this metric, which reveals the influence of the graph
characteristics on performance." Section 3.4 reports the DBMS BFS
rate in MTEPS.

Following Graphalytics (and Graph500) practice, TEPS divides the
number of edges the algorithm traversed by the measured runtime.
"""

from __future__ import annotations

__all__ = ["teps", "kteps", "mteps"]


def teps(edges_traversed: float, seconds: float) -> float:
    """Traversed edges per second.

    Raises ``ValueError`` for non-positive runtimes — a zero runtime
    means the measurement is broken, not that the platform is
    infinitely fast.
    """
    if seconds <= 0:
        raise ValueError(f"runtime must be positive, got {seconds}")
    if edges_traversed < 0:
        raise ValueError("edges_traversed must be non-negative")
    return edges_traversed / seconds


def kteps(edges_traversed: float, seconds: float) -> float:
    """Thousands of traversed edges per second (Figure 5's unit)."""
    return teps(edges_traversed, seconds) / 1e3


def mteps(edges_traversed: float, seconds: float) -> float:
    """Millions of traversed edges per second (Section 3.4's unit)."""
    return teps(edges_traversed, seconds) / 1e6
