"""Registry of named hardware profiles.

Two kinds of entries:

* **Paper testbeds** — ``paper-1gbe`` (the Section 3.3 ten-machine
  cluster), ``paper-single-node`` (the 192 GiB Neo4j machine),
  ``paper-dbms`` (the Virtuoso machine), and ``gpu-k20`` (the Medusa
  device). Their constants are exactly the flat ``ClusterSpec``
  numbers the repository has always used, so the default profile
  reproduces historical simulated seconds bit-for-bit (the NIC latency
  and queueing parameters are the deliberate exception: charging
  ``remote_messages`` nothing was a physics bug).
* **What-if variants** — ``10gbe``, ``rdma``, ``hdd``, ``nvme``:
  single-axis upgrades of the paper cluster for ``graphalytics
  whatif`` sweeps. ``hdd`` is the explicit alias of the paper
  cluster's disk axis, so ``hdd`` vs ``nvme`` isolates storage.

Free parameters here are *calibrated*, not measured: ``graphalytics
calibrate`` tunes them against the paper's Figure 4/5 runtimes (see
:mod:`repro.hardware.calibrate`).
"""

from __future__ import annotations

from repro.hardware.models import CpuModel, DiskModel, HardwareProfile, NicModel

__all__ = [
    "DEFAULT_PROFILE",
    "available_profiles",
    "default_workers",
    "get_profile",
    "register_profile",
]

#: Profile `graphalytics run` uses when none is configured.
DEFAULT_PROFILE = "paper-1gbe"

#: The paper cluster's Xeon E5620 worker CPU (8 cores used).
_PAPER_CPU = CpuModel(cores=8, ops_per_second=25e6, random_access_seconds=1e-7)
#: The paper cluster's spinning disks: ~130 MB/s streaming, ~100 IOPS
#: seek-bound (~1.3 MB/s at benchmark record sizes).
_PAPER_DISK = DiskModel(seq_bandwidth=130e6, random_bandwidth=1.3e6)
_PAPER_MEMORY = 24 * 2**30

#: No-network device: single-machine platforms never pay NIC time.
_NO_NIC = NicModel(
    bandwidth=float("inf"), message_latency_seconds=0.0, queueing_factor=0.0
)


def _paper_cluster_profile(
    name: str, nic: NicModel, disk: DiskModel, barrier_seconds: float
) -> HardwareProfile:
    """A variant of the paper's ten-machine cluster testbed."""
    return HardwareProfile(
        name=name,
        cpu=_PAPER_CPU,
        nic=nic,
        disk=disk,
        memory_bytes_per_worker=_PAPER_MEMORY,
        memory_pressure_factor=0.0,
        barrier_seconds=barrier_seconds,
        startup_seconds=10.0,
    )


_PROFILES: dict[str, HardwareProfile] = {}

#: Worker count each profile's reference testbed uses.
_DEFAULT_WORKERS: dict[str, int] = {}


def register_profile(profile: HardwareProfile, workers: int) -> HardwareProfile:
    """Add a profile to the registry (name must be unused)."""
    if profile.name in _PROFILES:
        raise ValueError(f"hardware profile {profile.name!r} already registered")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    _PROFILES[profile.name] = profile
    _DEFAULT_WORKERS[profile.name] = workers
    return profile


# -- paper testbeds -----------------------------------------------------

register_profile(
    _paper_cluster_profile(
        "paper-1gbe",
        # ~1 GbE: full TCP stack per message; software-switch fabric
        # congests under all-to-all shuffles (M/M/1 factor 0.25).
        nic=NicModel(
            bandwidth=117e6,
            message_latency_seconds=2e-6,
            queueing_factor=0.25,
        ),
        disk=_PAPER_DISK,
        barrier_seconds=0.3,
    ),
    workers=10,
)

register_profile(
    HardwareProfile(
        name="paper-single-node",
        cpu=CpuModel(cores=16, ops_per_second=40e6, random_access_seconds=1e-7),
        nic=_NO_NIC,
        disk=DiskModel(seq_bandwidth=500e6, random_bandwidth=5e6),
        memory_bytes_per_worker=192 * 2**30,
        barrier_seconds=0.0,
        startup_seconds=2.0,
    ),
    workers=1,
)

register_profile(
    HardwareProfile(
        name="paper-dbms",
        # 12-core/24-thread Xeon E5-2630 (the paper counts 2400% max).
        cpu=CpuModel(cores=24, ops_per_second=30e6, random_access_seconds=1e-7),
        nic=_NO_NIC,
        disk=DiskModel(seq_bandwidth=500e6, random_bandwidth=5e6),
        memory_bytes_per_worker=256 * 2**30,
        barrier_seconds=0.0,
        startup_seconds=0.5,  # a SQL statement, not a YARN job
    ),
    workers=1,
)

register_profile(
    HardwareProfile(
        name="gpu-k20",
        # Tesla K20-class: 2496 CUDA cores, modest scalar rate,
        # uncoalesced device accesses at 4e-7 s.
        cpu=CpuModel(
            cores=2496, ops_per_second=0.7e6, random_access_seconds=4e-7
        ),
        nic=_NO_NIC,
        # PCIe gen2 x16 DMA: transfers stream either way.
        disk=DiskModel(seq_bandwidth=6e9, random_bandwidth=6e9),
        memory_bytes_per_worker=5 * 2**30,
        barrier_seconds=0.0,
        startup_seconds=1.0,  # context + module load
    ),
    workers=1,
)

# -- what-if variants of the paper cluster ------------------------------

register_profile(
    _paper_cluster_profile(
        "10gbe",
        # 10 GbE with kernel-bypass-free stack: 10x the bandwidth,
        # about half the per-message overhead, same congestion factor.
        nic=NicModel(
            bandwidth=1.17e9,
            message_latency_seconds=1e-6,
            queueing_factor=0.25,
        ),
        disk=_PAPER_DISK,
        barrier_seconds=0.15,
    ),
    workers=10,
)

register_profile(
    _paper_cluster_profile(
        "rdma",
        # 40 Gb RDMA: kernel bypass cuts per-message cost an order of
        # magnitude; lossless fabric barely queues.
        nic=NicModel(
            bandwidth=4.7e9,
            message_latency_seconds=2e-7,
            queueing_factor=0.05,
        ),
        disk=_PAPER_DISK,
        barrier_seconds=0.05,
    ),
    workers=10,
)

register_profile(
    # The explicit storage-axis baseline: identical to paper-1gbe
    # (whose disks *are* HDDs), so hdd-vs-nvme sweeps isolate storage.
    _paper_cluster_profile(
        "hdd",
        nic=NicModel(
            bandwidth=117e6,
            message_latency_seconds=2e-6,
            queueing_factor=0.25,
        ),
        disk=_PAPER_DISK,
        barrier_seconds=0.3,
    ),
    workers=10,
)

register_profile(
    _paper_cluster_profile(
        "nvme",
        nic=NicModel(
            bandwidth=117e6,
            message_latency_seconds=2e-6,
            queueing_factor=0.25,
        ),
        # Datacenter NVMe: streaming and random rates converge.
        disk=DiskModel(seq_bandwidth=3e9, random_bandwidth=2.5e9),
        barrier_seconds=0.3,
    ),
    workers=10,
)


def get_profile(name: str) -> HardwareProfile:
    """Look up a registered profile by name."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(
            f"unknown hardware profile {name!r}; registered: {known}"
        ) from None


def available_profiles() -> list[str]:
    """Registered profile names, sorted."""
    return sorted(_PROFILES)


def default_workers(name: str) -> int:
    """The worker count of the profile's reference testbed."""
    get_profile(name)  # raise the helpful KeyError on unknown names
    return _DEFAULT_WORKERS[name]
