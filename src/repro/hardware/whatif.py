"""What-if hardware sweeps: re-cost one recorded workload under many
profiles.

The cost layer's *charge invariance* makes this exact: the per-round
charge tensors (ops per worker, messages, bytes) depend only on the
algorithm, the graph, and ``num_workers`` — never on the hardware
constants — so a suite executed **once** under a base profile can be
re-costed under any other profile by replaying its charges through
:meth:`~repro.hardware.models.HardwareProfile.round_times`, the same
single costing function ``CostMeter.end_round`` uses. Re-costing the
base profile therefore reproduces the fresh run bit-for-bit (a test
pins that), and sweeping N profiles costs one execution, not N.

Two caveats, both enforced here:

* Only fault-free runs re-cost exactly — straggler penalties from
  injected faults are folded into recorded compute seconds and carry
  hardware-dependent retry timing. :func:`run_whatif` runs its own
  fault-free suite, so the caveat never bites the CLI path.
* Single-machine platforms pin their own device models (a GPU's
  kernel-launch barrier is platform physics, not cluster physics), so
  the default sweep covers the distributed platforms only.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.cost import ClusterSpec, RunProfile
from repro.hardware.models import HardwareProfile
from repro.hardware.registry import (
    DEFAULT_PROFILE,
    default_workers,
    get_profile,
)

__all__ = [
    "COMPONENTS",
    "WhatIfCell",
    "WhatIfReport",
    "recost",
    "component_seconds",
    "dominant_component",
    "run_whatif",
]

#: Per-round time components attributed by the sweep, in tie-break
#: order. Startup is excluded — it is per-run scheduling overhead, not
#: a choke point any round's physics can shift.
COMPONENTS = ("compute", "network", "disk", "barrier")

#: One-letter cell tags: Compute, Network, Disk, Barrier.
_COMPONENT_LETTERS = {c: c[0].upper() for c in COMPONENTS}


def recost(
    profile: RunProfile,
    hardware: HardwareProfile,
    name: str | None = None,
) -> RunProfile:
    """Re-derive a run's seconds under different hardware.

    Returns a new :class:`~repro.core.cost.RunProfile` with identical
    charges but every derived time (per-round seconds and startup)
    recomputed from ``hardware``. The barrier is recomputed from the
    profile too, so sweeps see cheaper synchronization on faster
    fabrics — which is why GPU-style per-round barrier overrides are
    out of scope (see module docstring).

    Platforms may charge startup more than once (MapReduce pays it per
    chained job), so the recorded total is *rescaled* by the ratio of
    the profiles' startup constants rather than replaced — and kept
    bit-identical when the constants agree.
    """
    num_workers = profile.cluster.num_workers
    old_startup = profile.cluster.startup_seconds
    if hardware.startup_seconds == old_startup or not old_startup:
        startup = profile.startup_seconds
    else:
        startup = (
            profile.startup_seconds / old_startup
        ) * hardware.startup_seconds
    spec = ClusterSpec.from_profile(hardware, num_workers=num_workers, name=name)
    rounds = []
    for record in profile.rounds:
        times = hardware.round_times(record, num_workers)
        updated = dataclasses.replace(
            record,
            ops_per_worker=list(record.ops_per_worker),
            random_accesses_per_worker=list(record.random_accesses_per_worker),
            disk_bytes_per_worker=list(record.disk_bytes_per_worker),
            disk_random_bytes_per_worker=list(
                record.disk_random_bytes_per_worker
            ),
            compute_seconds=times.compute_seconds,
            network_seconds=times.network_seconds,
            network_transfer_seconds=times.network_transfer_seconds,
            network_latency_seconds=times.network_latency_seconds,
            network_queueing_seconds=times.network_queueing_seconds,
            disk_seconds=times.disk_seconds,
            barrier_seconds=times.barrier_seconds,
        )
        rounds.append(updated)
    return RunProfile(
        cluster=spec,
        rounds=rounds,
        peak_memory_per_worker=list(profile.peak_memory_per_worker),
        startup_seconds=startup,
    )


def component_seconds(profile: RunProfile) -> dict[str, float]:
    """Run totals of the four per-round time components."""
    return {
        "compute": sum(r.compute_seconds for r in profile.rounds),
        "network": sum(r.network_seconds for r in profile.rounds),
        "disk": sum(r.disk_seconds for r in profile.rounds),
        "barrier": sum(r.barrier_seconds for r in profile.rounds),
    }


def dominant_component(profile: RunProfile) -> str:
    """The component the run spends the most simulated time in."""
    totals = component_seconds(profile)
    return max(COMPONENTS, key=lambda c: totals[c])


@dataclass(frozen=True)
class WhatIfCell:
    """One (platform, graph, algorithm) cell costed under one profile."""

    platform: str
    graph: str
    algorithm: str
    profile: str
    simulated_seconds: float
    compute_seconds: float
    network_seconds: float
    disk_seconds: float
    barrier_seconds: float
    #: Dominant per-round component (``compute``/``network``/``disk``/
    #: ``barrier``).
    dominant: str
    #: Whether the run's peak live set fits the profile's per-worker
    #: RAM; ``False`` cells would OOM on the swept machine.
    fits_memory: bool

    @property
    def dominant_letter(self) -> str:
        """One-letter dominant tag for compact tables."""
        return _COMPONENT_LETTERS[self.dominant]


@dataclass(frozen=True)
class WhatIfReport:
    """A full profile sweep over one executed suite."""

    base_profile: str
    num_workers: int
    profiles: list[str]
    cells: list[WhatIfCell] = field(default_factory=list)

    def cell(self, platform: str, graph: str, algorithm: str, profile: str):
        """Look up one cell (raises ``KeyError`` if absent)."""
        for c in self.cells:
            if (c.platform, c.graph, c.algorithm, c.profile) == (
                platform,
                graph,
                algorithm,
                profile,
            ):
                return c
        raise KeyError((platform, graph, algorithm, profile))

    def render(self) -> str:
        """Text table: rows are cells, one column per swept profile."""
        rows = sorted(
            {(c.platform, c.graph, c.algorithm) for c in self.cells}
        )
        header = ["platform", "graph", "algorithm"] + list(self.profiles)
        table = [header]
        for platform, graph, algorithm in rows:
            line = [platform, graph, algorithm]
            for profile in self.profiles:
                c = self.cell(platform, graph, algorithm, profile)
                text = f"{c.simulated_seconds:.3f}s {c.dominant_letter}"
                if not c.fits_memory:
                    text += " OOM"
                line.append(text)
            table.append(line)
        widths = [
            max(len(row[i]) for row in table) for i in range(len(header))
        ]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in table
        ]
        lines.insert(1, "-" * len(lines[0]))
        lines.append(
            "dominant per-round component: C=compute N=network D=disk "
            "B=barrier; OOM = peak memory exceeds the profile's RAM"
        )
        return "\n".join(lines)


def _make_cell(
    platform: str,
    graph: str,
    algorithm: str,
    profile_name: str,
    recosted: RunProfile,
    hardware: HardwareProfile,
) -> WhatIfCell:
    totals = component_seconds(recosted)
    return WhatIfCell(
        platform=platform,
        graph=graph,
        algorithm=algorithm,
        profile=profile_name,
        simulated_seconds=recosted.simulated_seconds,
        compute_seconds=totals["compute"],
        network_seconds=totals["network"],
        disk_seconds=totals["disk"],
        barrier_seconds=totals["barrier"],
        dominant=dominant_component(recosted),
        fits_memory=recosted.peak_memory
        <= hardware.memory_bytes_per_worker,
    )


def run_whatif(
    graphs,
    algorithms=None,
    platforms: list[str] | None = None,
    profiles: list[str] | None = None,
    workers: int | None = None,
    params=None,
) -> WhatIfReport:
    """Execute one suite and sweep it across hardware profiles.

    The suite runs once under ``profiles[0]`` (the base); every other
    profile is an exact re-cost of the recorded charges. ``platforms``
    defaults to the distributed drivers — single-machine platforms pin
    their own device models and are skipped with the default selection
    (requesting one explicitly raises ``ValueError``).
    """
    from repro.api import run_benchmark
    from repro.platforms.registry import available_platforms, is_single_machine

    profile_names = list(profiles) if profiles else [DEFAULT_PROFILE]
    resolved = [get_profile(name) for name in profile_names]
    base_name = profile_names[0]
    if platforms is None:
        platforms = [
            name
            for name in available_platforms()
            if not is_single_machine(name)
        ]
    else:
        rejected = [n for n in platforms if is_single_machine(n)]
        if rejected:
            raise ValueError(
                "what-if sweeps cover cluster platforms only; "
                f"single-machine platforms pin their own hardware: {rejected}"
            )
    num_workers = workers if workers is not None else default_workers(base_name)
    base_spec = ClusterSpec.from_profile(base_name, num_workers=num_workers)
    suite = run_benchmark(
        graphs,
        platforms=platforms,
        algorithms=algorithms,
        cluster=base_spec,
        params=params,
        validate=False,
    )
    cells = []
    for result in suite.results:
        if not result.succeeded:
            continue
        run_profile = result.run.profile
        for profile_name, hardware in zip(profile_names, resolved):
            recosted = recost(run_profile, hardware)
            cells.append(
                _make_cell(
                    result.platform,
                    result.graph_name,
                    result.algorithm.value,
                    profile_name,
                    recosted,
                    hardware,
                )
            )
    return WhatIfReport(
        base_profile=base_name,
        num_workers=num_workers,
        profiles=profile_names,
        cells=cells,
    )
