"""Pluggable simulated-hardware profiles (ROADMAP item 4).

Component device models (:class:`CpuModel`, :class:`NicModel`,
:class:`DiskModel`) compose into named :class:`HardwareProfile` s; the
cost meter derives every per-round second from the active profile.
:mod:`repro.hardware.whatif` re-costs recorded workloads under other
profiles and :mod:`repro.hardware.calibrate` fits free parameters
against the paper's reference runtimes.

``whatif`` and ``calibrate`` are exposed lazily: they import
``repro.core.cost``, which itself imports this package, so eager
re-export here would create an import cycle.
"""

from repro.hardware.models import (
    MEMORY_PRESSURE_THRESHOLD,
    RHO_CAP,
    CpuModel,
    DiskModel,
    HardwareProfile,
    NicModel,
    RoundTimes,
)
from repro.hardware.registry import (
    DEFAULT_PROFILE,
    available_profiles,
    default_workers,
    get_profile,
    register_profile,
)

__all__ = [
    "CpuModel",
    "NicModel",
    "DiskModel",
    "HardwareProfile",
    "RoundTimes",
    "RHO_CAP",
    "MEMORY_PRESSURE_THRESHOLD",
    "DEFAULT_PROFILE",
    "available_profiles",
    "default_workers",
    "get_profile",
    "register_profile",
]
