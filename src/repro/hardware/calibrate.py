"""Calibration fitter: tune a profile's free parameters to targets.

The hardware constants in :mod:`repro.hardware.registry` are not
measurements — they are *calibrated* so the simulation lands on the
paper's published runtimes (Figures 4/5). This module makes that
calibration reproducible: given recorded runs and per-cell target
seconds, :func:`calibrate` searches multiplicative factors on a
profile's free parameters to minimize the RMS log-runtime error,
re-costing the recorded charges under each candidate (the same exact
:func:`~repro.hardware.whatif.recost` path the what-if sweep uses, so
one execution serves the whole search).

The optimizer is plain coordinate descent over a geometric factor
grid — the objective is cheap (a re-cost, no re-execution), smooth in
each throughput parameter, and low-dimensional, so a few sweeps
converge. Log-space errors weight a 2x overshoot on a fast cell the
same as on a slow one, which is how the paper's figures read (log
axes).

Reference targets: the paper's Figure 4/5 graphs (Graph500 scale 22+)
are beyond what the simulation executes in tests, so
:data:`REFERENCE_TARGETS` anchors proxy cells — the same platforms and
algorithms on catalog-size graphs, with target seconds set from the
default profile's published-runtime-shaped behaviour. ``graphalytics
calibrate`` fits against them by default and accepts explicit
``cell=seconds`` overrides for real calibration campaigns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.cost import RunProfile
from repro.hardware.models import HardwareProfile
from repro.hardware.whatif import recost

__all__ = [
    "FREE_PARAMETERS",
    "REFERENCE_TARGETS",
    "CalibrationResult",
    "apply_factors",
    "rms_log_error",
    "calibrate",
]

#: Profile parameters the fitter may scale, as ``model.field`` paths.
#: Cores and the RAM budget are *facts* of the testbed, not free.
FREE_PARAMETERS = (
    "cpu.ops_per_second",
    "cpu.random_access_seconds",
    "nic.bandwidth",
    "nic.message_latency_seconds",
    "nic.queueing_factor",
    "disk.seq_bandwidth",
    "disk.random_bandwidth",
    "barrier_seconds",
    "startup_seconds",
)

#: Default proxy targets for ``graphalytics calibrate``: Figure 4/5's
#: platform ordering (Giraph an order of magnitude ahead of MapReduce,
#: PageRank costlier than BFS) rescaled to catalog graphs the tests
#: can execute. Keys are ``(platform, graph, algorithm)``.
REFERENCE_TARGETS: dict[tuple[str, str, str], float] = {
    ("giraph", "graph500-8", "BFS"): 12.0,
    ("giraph", "graph500-8", "PR"): 14.0,
    ("mapreduce", "graph500-8", "BFS"): 44.0,
    ("mapreduce", "graph500-8", "PR"): 105.0,
}

#: Multiplicative steps each coordinate-descent move may take.
_FACTOR_GRID = (0.5, 0.8, 0.9, 1.0, 1.1, 1.25, 2.0)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one fit."""

    #: The fitted profile (base with factors applied).
    profile: HardwareProfile
    #: Final multiplicative factor per free parameter.
    factors: dict[str, float] = field(default_factory=dict)
    #: RMS log error of the base profile.
    error_before: float = 0.0
    #: RMS log error of the fitted profile.
    error_after: float = 0.0
    #: Objective evaluations (re-costs of the full run set) performed.
    evaluations: int = 0

    @property
    def improved(self) -> bool:
        """Whether the fit strictly reduced the error."""
        return self.error_after < self.error_before

    def summary(self) -> str:
        """Human-readable fit report."""
        lines = [
            f"calibrated profile {self.profile.name!r}: "
            f"rms log error {self.error_before:.4f} -> "
            f"{self.error_after:.4f} ({self.evaluations} evaluations)"
        ]
        for parameter in FREE_PARAMETERS:
            factor = self.factors.get(parameter, 1.0)
            if factor != 1.0:
                lines.append(f"  {parameter}: x{factor:g}")
        if len(lines) == 1:
            lines.append("  all factors at 1.0 (base profile already fits)")
        return "\n".join(lines)


def apply_factors(
    profile: HardwareProfile, factors: dict[str, float]
) -> HardwareProfile:
    """A copy of ``profile`` with multiplicative factors applied.

    Keys are :data:`FREE_PARAMETERS` paths; missing keys mean 1.0.
    """
    cpu, nic, disk = profile.cpu, profile.nic, profile.disk
    submodels = {"cpu": cpu, "nic": nic, "disk": disk}
    changes: dict[str, dict] = {"cpu": {}, "nic": {}, "disk": {}}
    top: dict[str, float] = {}
    for parameter, factor in factors.items():
        if parameter not in FREE_PARAMETERS:
            raise ValueError(
                f"unknown free parameter {parameter!r}; "
                f"known: {list(FREE_PARAMETERS)}"
            )
        if factor <= 0:
            raise ValueError(f"factor for {parameter!r} must be positive")
        if factor == 1.0:
            continue
        if "." in parameter:
            model_name, field_name = parameter.split(".", 1)
            current = getattr(submodels[model_name], field_name)
            changes[model_name][field_name] = current * factor
        else:
            top[parameter] = getattr(profile, parameter) * factor
    if changes["cpu"]:
        top["cpu"] = replace(cpu, **changes["cpu"])
    if changes["nic"]:
        top["nic"] = replace(nic, **changes["nic"])
    if changes["disk"]:
        top["disk"] = replace(disk, **changes["disk"])
    return replace(profile, **top) if top else profile


def rms_log_error(
    runs: list[tuple[RunProfile, float]], profile: HardwareProfile
) -> float:
    """``sqrt(mean(log(simulated / target)^2))`` over re-costed runs."""
    if not runs:
        raise ValueError("calibration needs at least one (run, target) pair")
    total = 0.0
    for run_profile, target in runs:
        if target <= 0:
            raise ValueError("target seconds must be positive")
        simulated = recost(run_profile, profile).simulated_seconds
        total += math.log(simulated / target) ** 2
    return math.sqrt(total / len(runs))


def calibrate(
    runs: list[tuple[RunProfile, float]],
    base: HardwareProfile,
    parameters: tuple[str, ...] = FREE_PARAMETERS,
    sweeps: int = 3,
) -> CalibrationResult:
    """Fit ``base``'s free parameters to the runs' target seconds.

    Coordinate descent: each sweep tries every grid step on every
    parameter in turn, keeping a move only when it strictly reduces
    the RMS log error; stops early when a full sweep makes no move.
    Deterministic — no randomness, no data-dependent tie-breaks.
    """
    factors = {parameter: 1.0 for parameter in parameters}
    evaluations = 0

    def objective(candidate_factors: dict[str, float]) -> float:
        nonlocal evaluations
        evaluations += 1
        return rms_log_error(runs, apply_factors(base, candidate_factors))

    error_before = best_error = objective(factors)
    for _sweep in range(sweeps):
        moved = False
        for parameter in parameters:
            best_step = 1.0
            for step in _FACTOR_GRID:
                if step == 1.0:
                    continue
                candidate = dict(factors)
                candidate[parameter] = factors[parameter] * step
                error = objective(candidate)
                if error < best_error:
                    best_error = error
                    best_step = step
            if best_step != 1.0:
                factors[parameter] = factors[parameter] * best_step
                moved = True
        if not moved:
            break
    fitted = apply_factors(base, factors)
    return CalibrationResult(
        profile=fitted,
        factors=factors,
        error_before=error_before,
        error_after=best_error,
        evaluations=evaluations,
    )
