"""Component hardware models composing a simulated machine.

The cost model's machine used to be one flat bag of constants on
``ClusterSpec``. This module promotes each device to its own model —
:class:`CpuModel`, :class:`NicModel`, :class:`DiskModel` — composed
into a :class:`HardwareProfile`, the component-per-device design of
performance simulators: every per-round second the
:class:`~repro.core.cost.CostMeter` derives comes from one of these
models, so swapping a profile answers hardware what-if questions
(10GbE vs RDMA, HDD vs NVMe) on an already-recorded workload.

Physics, per synchronization round:

* **CPU** — BSP barrier time is the max over workers of combined work:
  ``ops / (cores * ops_per_second) + random * random_access_seconds``.
* **NIC** — three additive terms: byte *transfer* at aggregate
  bandwidth, per-message *latency* (``remote_messages *
  message_latency_seconds / num_workers``: workers inject in
  parallel), and an M/M/1-style *queueing* delay
  ``service * queueing_factor * rho / (1 - rho)`` where the
  utilization ``rho = service / (service + compute)`` is capped at
  :data:`RHO_CAP` — a round that overlaps communication with compute
  keeps its queues short; a communication-bound round pays the
  congested-fabric penalty.
* **Disk** — striped (declared-balanced) bytes move at aggregate
  sequential bandwidth; per-worker attributed bytes cost the *max*
  over workers (a skewed writer is a straggler, exactly like skewed
  compute); random I/O pays the (much lower) random bandwidth.
* **Memory pressure** — once a worker's live set exceeds
  :data:`MEMORY_PRESSURE_THRESHOLD` of its RAM, compute is multiplied
  by ``1 + memory_pressure_factor * overshoot`` (GC/paging drag).

Every term is guarded so that a zeroed parameter contributes exactly
nothing: with ``message_latency_seconds == 0``, ``queueing_factor ==
0`` and ``memory_pressure_factor == 0`` the formulas reduce
bit-for-bit to the pre-profile flat-constant model (the differential
tests in ``tests/differential/`` pin that).

This module imports nothing from ``repro.core`` — the cost meter
imports *it* — so the charge layer and the hardware layer cannot form
an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CpuModel",
    "NicModel",
    "DiskModel",
    "HardwareProfile",
    "RoundTimes",
    "RHO_CAP",
    "MEMORY_PRESSURE_THRESHOLD",
]

#: Utilization cap for the M/M/1 queueing term: rho -> 1 diverges, and
#: a simulated round is a closed system, so the delay factor saturates
#: at ``1 + queueing_factor * 0.95 / 0.05 = 1 + 19 * queueing_factor``.
RHO_CAP = 0.95

#: Live-set fraction of worker RAM above which memory pressure starts
#: slowing compute (GC churn, page eviction).
MEMORY_PRESSURE_THRESHOLD = 0.5


@dataclass(frozen=True)
class CpuModel:
    """One worker's processor: cores and per-core operation rates."""

    #: Cores used per worker machine.
    cores: int
    #: Simple-operation throughput per core (edge scans, message
    #: handling), operations/second.
    ops_per_second: float
    #: Cost of one cache-missing random memory access, seconds.
    random_access_seconds: float

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    @property
    def worker_ops_per_second(self) -> float:
        """Aggregate simple-operation throughput of one worker."""
        return self.cores * self.ops_per_second

    def worker_seconds(self, ops: float, random_accesses: float) -> float:
        """One worker's busy time for its share of a round."""
        return (
            ops / self.worker_ops_per_second
            + random_accesses * self.random_access_seconds
        )

    def scaled(self, throughput: float) -> "CpuModel":
        """Divide throughput (and grow access latency) by a factor."""
        return CpuModel(
            cores=self.cores,
            ops_per_second=self.ops_per_second / throughput,
            random_access_seconds=self.random_access_seconds * throughput,
        )


@dataclass(frozen=True)
class NicModel:
    """The interconnect: bandwidth, per-message latency, queueing."""

    #: Per-machine network bandwidth, bytes/second.
    bandwidth: float
    #: Fixed per-message cost (interrupt/stack traversal/serialization
    #: overhead), seconds. Zero models perfectly batched transport.
    message_latency_seconds: float = 0.0
    #: M/M/1-style congestion coefficient; zero disables queueing.
    queueing_factor: float = 0.0

    def service_seconds(
        self, remote_bytes: float, remote_messages: int, num_workers: int
    ) -> tuple[float, float]:
        """(transfer, latency) service time of one round's traffic.

        Bytes move at aggregate bandwidth (every NIC transmits in
        parallel); per-message overhead is likewise paid concurrently
        across the ``num_workers`` injecting workers.
        """
        transfer = (
            remote_bytes / (num_workers * self.bandwidth)
            if remote_bytes
            else 0.0
        )
        latency = (
            remote_messages * self.message_latency_seconds / num_workers
            if remote_messages and self.message_latency_seconds
            else 0.0
        )
        return transfer, latency

    def queueing_seconds(
        self, service_seconds: float, compute_seconds: float
    ) -> float:
        """M/M/1-style queueing delay for one round.

        ``rho = service / (service + compute)``: communication fully
        overlapped by compute keeps utilization low; a round that is
        pure communication drives the fabric to :data:`RHO_CAP`.
        """
        if not self.queueing_factor or service_seconds <= 0.0:
            return 0.0
        busy = service_seconds + compute_seconds
        rho = min(service_seconds / busy, RHO_CAP) if busy > 0.0 else RHO_CAP
        return service_seconds * self.queueing_factor * rho / (1.0 - rho)

    def scaled(self, throughput: float) -> "NicModel":
        """Divide bandwidth by a factor (latency terms untouched)."""
        return NicModel(
            bandwidth=self.bandwidth / throughput,
            message_latency_seconds=self.message_latency_seconds,
            queueing_factor=self.queueing_factor,
        )


@dataclass(frozen=True)
class DiskModel:
    """Secondary storage: sequential vs random byte rates."""

    #: Streaming read/write bandwidth, bytes/second.
    seq_bandwidth: float
    #: Random (seek-dominated) bandwidth, bytes/second.
    random_bandwidth: float

    def round_seconds(
        self,
        striped_read_bytes: float,
        striped_write_bytes: float,
        bytes_per_worker: list[float],
        random_bytes_per_worker: list[float],
        num_workers: int,
    ) -> float:
        """Disk time of one round.

        Striped bytes (HDFS-style even distribution, charged with
        ``worker=None``) move at aggregate sequential bandwidth.
        Worker-attributed bytes cost the *max* over workers — a
        worker writing 10x its share is a straggler the whole round
        waits on. Random bytes pay the random-bandwidth rate, also
        max-over-workers.
        """
        seconds = (striped_read_bytes + striped_write_bytes) / (
            num_workers * self.seq_bandwidth
        )
        if bytes_per_worker:
            skewed = max(bytes_per_worker)
            if skewed:
                seconds += skewed / self.seq_bandwidth
        if random_bytes_per_worker:
            random_skewed = max(random_bytes_per_worker)
            if random_skewed:
                seconds += random_skewed / self.random_bandwidth
        return seconds

    def scaled(self, throughput: float) -> "DiskModel":
        """Divide both bandwidths by a factor."""
        return DiskModel(
            seq_bandwidth=self.seq_bandwidth / throughput,
            random_bandwidth=self.random_bandwidth / throughput,
        )


@dataclass(frozen=True)
class RoundTimes:
    """Per-device seconds the profile derives for one round."""

    compute_seconds: float
    network_transfer_seconds: float
    network_latency_seconds: float
    network_queueing_seconds: float
    disk_seconds: float
    barrier_seconds: float

    @property
    def network_seconds(self) -> float:
        """Total network time (transfer + latency + queueing)."""
        network = self.network_transfer_seconds
        if self.network_latency_seconds:
            network += self.network_latency_seconds
        if self.network_queueing_seconds:
            network += self.network_queueing_seconds
        return network


@dataclass(frozen=True)
class HardwareProfile:
    """A named machine built from component device models."""

    name: str
    cpu: CpuModel
    nic: NicModel
    disk: DiskModel
    #: RAM budget per worker machine, bytes; exceeding it is an OOM.
    memory_bytes_per_worker: float
    #: Compute slowdown per unit of live-set overshoot past
    #: :data:`MEMORY_PRESSURE_THRESHOLD`; zero disables the term.
    memory_pressure_factor: float = 0.0
    #: Cost of one global synchronization barrier, seconds.
    barrier_seconds: float = 0.0
    #: Fixed job submission/scheduling overhead per run, seconds.
    startup_seconds: float = 0.0

    # -- derived physics ------------------------------------------------

    def memory_pressure_multiplier(self, live_memory_bytes: float) -> float:
        """Compute-slowdown factor from a worker's live set size."""
        if not self.memory_pressure_factor or not self.memory_bytes_per_worker:
            return 1.0
        share = live_memory_bytes / self.memory_bytes_per_worker
        if share <= MEMORY_PRESSURE_THRESHOLD:
            return 1.0
        overshoot = min(share, 1.0) - MEMORY_PRESSURE_THRESHOLD
        return 1.0 + self.memory_pressure_factor * (
            overshoot / (1.0 - MEMORY_PRESSURE_THRESHOLD)
        )

    def round_times(
        self,
        charges,
        num_workers: int,
        straggler_penalty_seconds: float = 0.0,
        barrier_override: float | None = None,
    ) -> RoundTimes:
        """Derive one round's per-device seconds from its charges.

        ``charges`` is duck-typed (any object shaped like
        :class:`~repro.core.cost.RoundRecord`): per-worker ops and
        random accesses, remote bytes/messages, striped and
        per-worker disk bytes, the live-set high-water mark, and the
        barrier flag. This is the *single* costing function — the
        meter's ``end_round`` and the what-if re-coster both call it,
        so a re-costed profile cannot drift from a fresh run.
        """
        compute = max(
            self.cpu.worker_seconds(ops, rand)
            for ops, rand in zip(
                charges.ops_per_worker, charges.random_accesses_per_worker
            )
        )
        pressure = self.memory_pressure_multiplier(
            getattr(charges, "live_memory_bytes", 0.0)
        )
        if pressure != 1.0:
            compute *= pressure
        if straggler_penalty_seconds:
            compute += straggler_penalty_seconds
        transfer, latency = self.nic.service_seconds(
            charges.remote_bytes, charges.remote_messages, num_workers
        )
        queueing = self.nic.queueing_seconds(transfer + latency, compute)
        disk = self.disk.round_seconds(
            getattr(charges, "striped_disk_read_bytes", charges.disk_read_bytes),
            getattr(
                charges, "striped_disk_write_bytes", charges.disk_write_bytes
            ),
            getattr(charges, "disk_bytes_per_worker", []),
            getattr(charges, "disk_random_bytes_per_worker", []),
            num_workers,
        )
        barrier = (
            barrier_override
            if barrier_override is not None
            else (self.barrier_seconds if charges.barrier else 0.0)
        )
        return RoundTimes(
            compute_seconds=compute,
            network_transfer_seconds=transfer,
            network_latency_seconds=latency,
            network_queueing_seconds=queueing,
            disk_seconds=disk,
            barrier_seconds=barrier,
        )

    # -- transformation -------------------------------------------------

    def scaled(self, throughput: float, memory: float) -> "HardwareProfile":
        """Scale every device's throughput (and the RAM budget) down.

        Latency-like constants (per-message NIC latency, barriers,
        startup) and the dimensionless factors are untouched — they do
        not shrink when data does.
        """
        return replace(
            self,
            cpu=self.cpu.scaled(throughput),
            nic=self.nic.scaled(throughput),
            disk=self.disk.scaled(throughput),
            memory_bytes_per_worker=self.memory_bytes_per_worker / memory,
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """Plain nested dict (JSON-safe; traces embed it)."""
        return {
            "name": self.name,
            "cpu": {
                "cores": self.cpu.cores,
                "ops_per_second": self.cpu.ops_per_second,
                "random_access_seconds": self.cpu.random_access_seconds,
            },
            "nic": {
                "bandwidth": self.nic.bandwidth,
                "message_latency_seconds": self.nic.message_latency_seconds,
                "queueing_factor": self.nic.queueing_factor,
            },
            "disk": {
                "seq_bandwidth": self.disk.seq_bandwidth,
                "random_bandwidth": self.disk.random_bandwidth,
            },
            "memory_bytes_per_worker": self.memory_bytes_per_worker,
            "memory_pressure_factor": self.memory_pressure_factor,
            "barrier_seconds": self.barrier_seconds,
            "startup_seconds": self.startup_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareProfile":
        """Inverse of :meth:`to_dict` (exact float round-trip)."""
        return cls(
            name=data["name"],
            cpu=CpuModel(**data["cpu"]),
            nic=NicModel(**data["nic"]),
            disk=DiskModel(**data["disk"]),
            memory_bytes_per_worker=data["memory_bytes_per_worker"],
            memory_pressure_factor=data.get("memory_pressure_factor", 0.0),
            barrier_seconds=data.get("barrier_seconds", 0.0),
            startup_seconds=data.get("startup_seconds", 0.0),
        )
