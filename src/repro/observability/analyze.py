"""Cross-run analysis: compare two runs and flag regressions.

``graphalytics analyze OLD NEW`` loads per-run metrics from either
side — a JSONL trace, a results-database file, or an exported
submission document — matches runs by (platform, graph, algorithm),
and flags regressions in simulated time, network bytes, round count,
and the dominant choke point. This is the benchmark's answer to "did
my change make anything slower, chattier, or differently bottlenecked"
without eyeballing two reports side by side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.chokepoints import analyze_profile
from repro.observability.replay import parse_trace, read_trace

__all__ = ["RunMetrics", "Regression", "load_metrics", "compare_metrics"]

#: Metrics compared ratio-wise, with the human name used in findings.
_RATIO_METRICS = (
    ("simulated_seconds", "simulated time"),
    ("remote_bytes", "network bytes"),
    ("num_rounds", "rounds"),
)


@dataclass(frozen=True)
class RunMetrics:
    """The comparable summary of one benchmarked run."""

    platform: str
    graph: str
    algorithm: str
    status: str
    simulated_seconds: float | None = None
    remote_bytes: float | None = None
    num_rounds: int | None = None
    dominant: str | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.platform, self.graph, self.algorithm)

    def label(self) -> str:
        return f"{self.platform}/{self.graph}/{self.algorithm.lower()}"


@dataclass(frozen=True)
class Regression:
    """One flagged difference between matched runs."""

    key: tuple[str, str, str]
    metric: str
    old: object
    new: object
    detail: str

    def describe(self) -> str:
        platform, graph, algorithm = self.key
        return (
            f"{platform}/{graph}/{algorithm.lower()}: {self.detail}"
        )


def _metrics_from_row(row: dict) -> RunMetrics | None:
    try:
        return RunMetrics(
            platform=row["platform"],
            graph=row["graph"],
            algorithm=row["algorithm"],
            status=row.get("status", "unknown"),
            simulated_seconds=row.get("runtime_seconds"),
            remote_bytes=row.get("remote_bytes"),
            num_rounds=row.get("num_rounds"),
            dominant=row.get("dominant_chokepoint"),
        )
    except KeyError:
        return None


def _metrics_from_trace(events: list[dict]) -> list[RunMetrics]:
    metrics = []
    for attempt in parse_trace(events):
        if attempt.complete:
            profile = attempt.to_profile()
            report = analyze_profile(profile)
            metrics.append(
                RunMetrics(
                    platform=attempt.platform,
                    graph=attempt.graph,
                    algorithm=attempt.algorithm,
                    status=attempt.status,
                    simulated_seconds=profile.simulated_seconds,
                    remote_bytes=profile.total_remote_bytes,
                    num_rounds=profile.num_rounds,
                    dominant=report.dominant(),
                )
            )
        else:
            metrics.append(
                RunMetrics(
                    platform=attempt.platform,
                    graph=attempt.graph,
                    algorithm=attempt.algorithm,
                    status=attempt.status,
                )
            )
    return metrics


def load_metrics(path: str | Path) -> dict[tuple[str, str, str], RunMetrics]:
    """Per-run metrics from a trace, results-db, or submission file.

    The format is sniffed from the content: JSONL event streams carry
    ``"event"`` keys, submission documents carry the schema tag, and
    results-database files are JSON-lines of row dicts. Within one
    file, later entries for the same (platform, graph, algorithm)
    replace earlier ones — the latest measurement wins, matching how
    retries and re-submissions accumulate.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8").strip()
    if not text:
        return {}
    rows: list[RunMetrics | None]
    first = json.loads(text.splitlines()[0])
    if isinstance(first, dict) and "event" in first:
        rows = _metrics_from_trace(read_trace(path))
    elif isinstance(first, dict) and first.get("schema"):
        document = json.loads(text)
        rows = [_metrics_from_row(r) for r in document.get("results", [])]
    else:
        rows = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict):
                rows.append(_metrics_from_row(row))
    metrics: dict[tuple[str, str, str], RunMetrics] = {}
    for row in rows:
        if row is not None:
            metrics[row.key] = row
    if not metrics:
        raise ValueError(
            f"{path}: no benchmark runs recognized (expected a JSONL "
            "trace, a results database, or a submission document)"
        )
    return metrics


def compare_metrics(
    old: dict[tuple[str, str, str], RunMetrics],
    new: dict[tuple[str, str, str], RunMetrics],
    threshold: float = 0.05,
) -> list[Regression]:
    """Regressions going from ``old`` to ``new``.

    A ratio metric regresses when it grows by more than ``threshold``
    (relative); a run regresses outright when it disappears, stops
    succeeding, or changes its dominant choke point. Improvements are
    never flagged — this is a one-sided gate.
    """
    regressions: list[Regression] = []
    for key in sorted(old):
        before = old[key]
        after = new.get(key)
        if after is None:
            regressions.append(
                Regression(key, "presence", before.status, None,
                           "run missing from the new results")
            )
            continue
        if before.status == "success" and after.status != "success":
            regressions.append(
                Regression(key, "status", before.status, after.status,
                           f"was success, now {after.status}")
            )
            continue
        for metric, name in _RATIO_METRICS:
            b = getattr(before, metric)
            a = getattr(after, metric)
            if b is None or a is None:
                continue
            if a > b * (1.0 + threshold) and a - b > 1e-12:
                growth = (a / b - 1.0) * 100 if b else float("inf")
                regressions.append(
                    Regression(
                        key, metric, b, a,
                        f"{name} grew {growth:.1f}% ({b:g} -> {a:g})",
                    )
                )
        if (
            before.dominant is not None
            and after.dominant is not None
            and before.dominant != after.dominant
        ):
            regressions.append(
                Regression(
                    key, "dominant", before.dominant, after.dominant,
                    "dominant choke point moved "
                    f"{before.dominant} -> {after.dominant}",
                )
            )
    return regressions
