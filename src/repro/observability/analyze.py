"""Cross-run analysis: compare two runs and flag regressions.

``graphalytics analyze OLD NEW`` loads per-run metrics from either
side — a JSONL trace, a results-database file, or an exported
submission document — matches runs by (platform, graph, algorithm),
and flags regressions in simulated time, network bytes, round count,
and the dominant choke point. This is the benchmark's answer to "did
my change make anything slower, chattier, or differently bottlenecked"
without eyeballing two reports side by side.

When both sides of a matched run carry repetition statistics
(``runtime_mean``/``runtime_std``/``num_repetitions`` columns written
by multi-repetition suites), the runtime comparison is CI-aware: a
slowdown only counts as a regression when the two 95% confidence
intervals do not overlap — a within-noise wobble passes, however it
compares to the percentage threshold. Runs without repetition stats
keep the one-sided relative-threshold gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.chokepoints import analyze_profile
from repro.core.stats import RuntimeStats
from repro.observability.replay import parse_trace, read_trace

__all__ = ["RunMetrics", "Regression", "load_metrics", "compare_metrics"]

#: Metrics compared ratio-wise, with the human name used in findings.
_RATIO_METRICS = (
    ("simulated_seconds", "simulated time"),
    ("remote_bytes", "network bytes"),
    ("num_rounds", "rounds"),
)


@dataclass(frozen=True)
class RunMetrics:
    """The comparable summary of one benchmarked run."""

    platform: str
    graph: str
    algorithm: str
    status: str
    simulated_seconds: float | None = None
    remote_bytes: float | None = None
    num_rounds: int | None = None
    dominant: str | None = None
    #: Repetition statistics, when the source rows carry them.
    runtime_std: float | None = None
    num_repetitions: int | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.platform, self.graph, self.algorithm)

    def label(self) -> str:
        return f"{self.platform}/{self.graph}/{self.algorithm.lower()}"

    def runtime_stats(self) -> RuntimeStats | None:
        """Mean/std/CI95 of this run, when repetition stats exist."""
        if (
            self.simulated_seconds is None
            or self.runtime_std is None
            or self.num_repetitions is None
            or self.num_repetitions < 2
        ):
            return None
        return RuntimeStats.from_moments(
            self.simulated_seconds, self.runtime_std, self.num_repetitions
        )


@dataclass(frozen=True)
class Regression:
    """One flagged difference between matched runs."""

    key: tuple[str, str, str]
    metric: str
    old: object
    new: object
    detail: str

    def describe(self) -> str:
        platform, graph, algorithm = self.key
        return (
            f"{platform}/{graph}/{algorithm.lower()}: {self.detail}"
        )


def _metrics_from_row(row: dict) -> RunMetrics | None:
    try:
        return RunMetrics(
            platform=row["platform"],
            graph=row["graph"],
            algorithm=row["algorithm"],
            status=row.get("status", "unknown"),
            simulated_seconds=row.get("runtime_seconds"),
            remote_bytes=row.get("remote_bytes"),
            num_rounds=row.get("num_rounds"),
            dominant=row.get("dominant_chokepoint"),
            runtime_std=row.get("runtime_std"),
            num_repetitions=row.get("num_repetitions"),
        )
    except KeyError:
        return None


def _metrics_from_trace(events: list[dict]) -> list[RunMetrics]:
    metrics = []
    for attempt in parse_trace(events):
        if attempt.complete:
            profile = attempt.to_profile()
            report = analyze_profile(profile)
            metrics.append(
                RunMetrics(
                    platform=attempt.platform,
                    graph=attempt.graph,
                    algorithm=attempt.algorithm,
                    status=attempt.status,
                    simulated_seconds=profile.simulated_seconds,
                    remote_bytes=profile.total_remote_bytes,
                    num_rounds=profile.num_rounds,
                    dominant=report.dominant(),
                )
            )
        else:
            metrics.append(
                RunMetrics(
                    platform=attempt.platform,
                    graph=attempt.graph,
                    algorithm=attempt.algorithm,
                    status=attempt.status,
                )
            )
    return metrics


def load_metrics(path: str | Path) -> dict[tuple[str, str, str], RunMetrics]:
    """Per-run metrics from a trace, results-db, or submission file.

    The format is sniffed from the content: JSONL event streams carry
    ``"event"`` keys, submission documents carry the schema tag, and
    results-database files are JSON-lines of row dicts. Within one
    file, later entries for the same (platform, graph, algorithm)
    replace earlier ones — the latest measurement wins, matching how
    retries and re-submissions accumulate.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8").strip()
    if not text:
        return {}
    rows: list[RunMetrics | None]
    first = json.loads(text.splitlines()[0])
    if isinstance(first, dict) and "event" in first:
        rows = _metrics_from_trace(read_trace(path))
    elif isinstance(first, dict) and first.get("schema"):
        document = json.loads(text)
        rows = [_metrics_from_row(r) for r in document.get("results", [])]
    else:
        rows = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict):
                rows.append(_metrics_from_row(row))
    metrics: dict[tuple[str, str, str], RunMetrics] = {}
    for row in rows:
        if row is not None:
            metrics[row.key] = row
    if not metrics:
        raise ValueError(
            f"{path}: no benchmark runs recognized (expected a JSONL "
            "trace, a results database, or a submission document)"
        )
    return metrics


def _compare_runtime_ci(
    key: tuple[str, str, str], before: RunMetrics, after: RunMetrics
):
    """CI-overlap runtime verdict for one matched run.

    Returns ``NotImplemented`` when either side lacks repetition
    statistics (the caller falls back to the ratio threshold), ``None``
    when the change is within noise, or the :class:`Regression` when
    the new mean is slower and the CI95 intervals are disjoint.
    """
    before_stats = before.runtime_stats()
    after_stats = after.runtime_stats()
    if before_stats is None or after_stats is None:
        return NotImplemented
    if after_stats.mean <= before_stats.mean or after_stats.overlaps(
        before_stats
    ):
        return None
    growth = (
        (after_stats.mean / before_stats.mean - 1.0) * 100
        if before_stats.mean
        else float("inf")
    )
    return Regression(
        key,
        "simulated_seconds",
        before_stats.mean,
        after_stats.mean,
        f"simulated time slowed {growth:.1f}% beyond CI95 noise "
        f"({before_stats.describe()} -> {after_stats.describe()})",
    )


def compare_metrics(
    old: dict[tuple[str, str, str], RunMetrics],
    new: dict[tuple[str, str, str], RunMetrics],
    threshold: float = 0.05,
) -> list[Regression]:
    """Regressions going from ``old`` to ``new``.

    A ratio metric regresses when it grows by more than ``threshold``
    (relative); a run regresses outright when it disappears, stops
    succeeding, or changes its dominant choke point. Improvements are
    never flagged — this is a one-sided gate.

    Runtime is special-cased: when both sides carry repetition
    statistics, the gate flags a slowdown only if the 95% confidence
    intervals are disjoint (the difference is outside measurement
    noise), replacing the bare relative threshold.
    """
    regressions: list[Regression] = []
    for key in sorted(old):
        before = old[key]
        after = new.get(key)
        if after is None:
            regressions.append(
                Regression(key, "presence", before.status, None,
                           "run missing from the new results")
            )
            continue
        if before.status == "success" and after.status != "success":
            regressions.append(
                Regression(key, "status", before.status, after.status,
                           f"was success, now {after.status}")
            )
            continue
        ci_regression = _compare_runtime_ci(key, before, after)
        if ci_regression is not NotImplemented:
            if ci_regression is not None:
                regressions.append(ci_regression)
        for metric, name in _RATIO_METRICS:
            if (
                metric == "simulated_seconds"
                and ci_regression is not NotImplemented
            ):
                # CI-aware runtime verdict already made above.
                continue
            b = getattr(before, metric)
            a = getattr(after, metric)
            if b is None or a is None:
                continue
            if a > b * (1.0 + threshold) and a - b > 1e-12:
                growth = (a / b - 1.0) * 100 if b else float("inf")
                regressions.append(
                    Regression(
                        key, metric, b, a,
                        f"{name} grew {growth:.1f}% ({b:g} -> {a:g})",
                    )
                )
        if (
            before.dominant is not None
            and after.dominant is not None
            and before.dominant != after.dominant
        ):
            regressions.append(
                Regression(
                    key, "dominant", before.dominant, after.dominant,
                    "dominant choke point moved "
                    f"{before.dominant} -> {after.dominant}",
                )
            )
    return regressions
