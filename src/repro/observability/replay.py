"""Trace replay: reconstruct exact run profiles from JSONL traces.

A :class:`~repro.observability.sinks.JsonlTraceWriter` span carries the
complete :class:`~repro.core.cost.RoundRecord`, and JSON round-trips
Python floats exactly (``json.dumps``/``loads`` preserve ``repr``-level
precision, including ``Infinity``), so a trace re-aggregates to the
*bit-identical* :class:`~repro.core.cost.RunProfile` the meter
recorded. :func:`verify_replay` is the checker that asserts it — it
backs the ``selfcheck`` trace stage and the replay tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cost import ClusterSpec, RoundRecord, RunProfile

__all__ = [
    "TraceAttempt",
    "read_trace",
    "parse_trace",
    "replay_trace",
    "profile_fingerprint",
    "verify_replay",
]


@dataclass
class TraceAttempt:
    """One ``run-begin`` .. ``run-end`` block of a trace file."""

    platform: str
    graph: str
    algorithm: str
    attempt: int
    cluster: ClusterSpec | None = None
    rounds: list[RoundRecord] = field(default_factory=list)
    faults: list[dict] = field(default_factory=list)
    #: ``success``, a failure reason, or ``incomplete`` for a
    #: truncated trace with no ``run-end`` event.
    status: str = "incomplete"
    startup_seconds: float = 0.0
    peak_memory_per_worker: list[float] = field(default_factory=list)
    simulated_seconds: float | None = None

    @property
    def complete(self) -> bool:
        """Whether the attempt carries a full profile summary."""
        return self.simulated_seconds is not None

    def to_profile(self) -> RunProfile:
        """Re-aggregate this attempt's spans into a run profile."""
        if self.cluster is None:
            raise ValueError("trace attempt has no cluster specification")
        return RunProfile(
            cluster=self.cluster,
            rounds=list(self.rounds),
            peak_memory_per_worker=list(self.peak_memory_per_worker),
            startup_seconds=self.startup_seconds,
        )


def _record_from_span(span: dict) -> RoundRecord:
    # Hardware-layer fields use ``.get`` defaults so traces written
    # before the HardwareProfile refactor still replay.
    record = RoundRecord(
        name=span["name"],
        ops_per_worker=list(span["ops_per_worker"]),
        random_accesses_per_worker=list(span["random_accesses_per_worker"]),
        local_messages=span["local_messages"],
        remote_messages=span["remote_messages"],
        remote_bytes=span["remote_bytes"],
        disk_read_bytes=span["disk_read_bytes"],
        disk_write_bytes=span["disk_write_bytes"],
        striped_disk_read_bytes=span.get("striped_disk_read_bytes", 0.0),
        striped_disk_write_bytes=span.get("striped_disk_write_bytes", 0.0),
        disk_bytes_per_worker=list(span.get("disk_bytes_per_worker", [])),
        disk_random_bytes_per_worker=list(
            span.get("disk_random_bytes_per_worker", [])
        ),
        live_memory_bytes=span.get("live_memory_bytes", 0.0),
        active_vertices=span["active_vertices"],
        barrier=span["barrier"],
    )
    # Derived times are replayed, not recomputed: the trace is the
    # record of what the meter charged, straggler penalties included.
    record.compute_seconds = span["compute_seconds"]
    record.network_seconds = span["network_seconds"]
    record.network_transfer_seconds = span.get(
        "network_transfer_seconds", span["network_seconds"]
    )
    record.network_latency_seconds = span.get("network_latency_seconds", 0.0)
    record.network_queueing_seconds = span.get(
        "network_queueing_seconds", 0.0
    )
    record.disk_seconds = span["disk_seconds"]
    record.barrier_seconds = span["barrier_seconds"]
    return record


def read_trace(path: str | Path) -> list[dict]:
    """All events of a JSONL trace file, in stream order."""
    events = []
    with open(Path(path), encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            # Comment lines carry audit suppressions; they are not
            # events (the trace writer never emits them).
            if line and not line.startswith("#"):
                events.append(json.loads(line))
    return events


def parse_trace(events: list[dict]) -> list[TraceAttempt]:
    """Group a trace's event stream into per-attempt blocks."""
    attempts: list[TraceAttempt] = []
    current: TraceAttempt | None = None
    for event in events:
        kind = event.get("event")
        if kind == "run-begin":
            current = TraceAttempt(
                platform=event.get("platform", "?"),
                graph=event.get("graph", "?"),
                algorithm=event.get("algorithm", "?"),
                attempt=event.get("attempt", len(attempts) + 1),
                cluster=(
                    ClusterSpec.from_dict(event["cluster"])
                    if "cluster" in event
                    else None
                ),
            )
            attempts.append(current)
        elif current is None:
            raise ValueError(
                f"trace event before any run-begin: {event!r}"
            )
        elif kind == "round":
            current.rounds.append(_record_from_span(event))
        elif kind == "fault":
            current.faults.append(event)
        elif kind == "run-end":
            current.status = event.get("status", "unknown")
            if "simulated_seconds" in event:
                current.startup_seconds = event.get("startup_seconds", 0.0)
                current.peak_memory_per_worker = list(
                    event.get("peak_memory_per_worker", [])
                )
                current.simulated_seconds = event["simulated_seconds"]
        # Fine-grained "charge" events are redundant with the spans
        # and intentionally ignored during replay.
    return attempts


def replay_trace(path: str | Path) -> RunProfile:
    """The profile of the last completed attempt in a trace file."""
    attempts = parse_trace(read_trace(path))
    for attempt in reversed(attempts):
        if attempt.complete:
            return attempt.to_profile()
    raise ValueError(f"{path}: trace contains no completed attempt")


def profile_fingerprint(profile: RunProfile) -> tuple:
    """A hashable fingerprint covering every recorded quantity.

    Two profiles fingerprint equal iff they are bit-identical: all
    per-round per-worker charges, all derived times, startup, and the
    memory peaks. Used by :func:`verify_replay` and by the
    differential tests pinning trace-on == trace-off behaviour.
    """
    return (
        profile.cluster.name,
        profile.startup_seconds,
        tuple(profile.peak_memory_per_worker),
        tuple(
            (
                r.name,
                tuple(r.ops_per_worker),
                tuple(r.random_accesses_per_worker),
                r.local_messages,
                r.remote_messages,
                r.remote_bytes,
                r.disk_read_bytes,
                r.disk_write_bytes,
                r.striped_disk_read_bytes,
                r.striped_disk_write_bytes,
                tuple(r.disk_bytes_per_worker),
                tuple(r.disk_random_bytes_per_worker),
                r.live_memory_bytes,
                r.active_vertices,
                r.barrier,
                r.compute_seconds,
                r.network_seconds,
                r.network_transfer_seconds,
                r.network_latency_seconds,
                r.network_queueing_seconds,
                r.disk_seconds,
                r.barrier_seconds,
            )
            for r in profile.rounds
        ),
    )


def verify_replay(path: str | Path, profile: RunProfile) -> list[str]:
    """Check that a trace re-aggregates to exactly ``profile``.

    Returns a list of human-readable mismatch descriptions; an empty
    list means the replayed profile is bit-identical to the recorded
    one (same rounds, same charges, same simulated seconds).
    """
    replayed = replay_trace(path)
    mismatches: list[str] = []
    if replayed.num_rounds != profile.num_rounds:
        mismatches.append(
            f"round count: trace has {replayed.num_rounds}, "
            f"profile has {profile.num_rounds}"
        )
    if profile_fingerprint(replayed) != profile_fingerprint(profile):
        for index, (got, want) in enumerate(
            zip(replayed.rounds, profile.rounds)
        ):
            if (got.name, got.seconds) != (want.name, want.seconds) or (
                got != want
            ):
                mismatches.append(
                    f"round {index} ({want.name}): replayed record differs"
                )
        if replayed.startup_seconds != profile.startup_seconds:
            mismatches.append("startup_seconds differs")
        if list(replayed.peak_memory_per_worker) != list(
            profile.peak_memory_per_worker
        ):
            mismatches.append("peak_memory_per_worker differs")
        if not mismatches:
            mismatches.append("profiles differ (fingerprint mismatch)")
    if replayed.simulated_seconds != profile.simulated_seconds:
        mismatches.append(
            f"simulated_seconds: trace replays to "
            f"{replayed.simulated_seconds!r}, profile has "
            f"{profile.simulated_seconds!r}"
        )
    return mismatches
