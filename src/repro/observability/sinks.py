"""Trace sinks: structured observers of the cost-accounting stream.

The :class:`~repro.core.cost.CostMeter` emits events — round
begin/end, message/shuffle/disk/memory charges, fault annotations —
to every attached sink, and the platform driver API brackets each
algorithm execution with run begin/end events. Sinks observe, never
mutate: profiles recorded with a sink attached are bit-identical to
profiles recorded without one (the differential tests in
``tests/observability/`` hold every platform to that), and with no
sink attached the emission sites are skipped entirely.

This is the per-stage instrumentation style of Spark's task-metrics
listener bus, scaled to the simulation: the existing
``SystemMonitor``/CSV path is rebased on :class:`MonitorSink`, the
JSONL traces of :class:`JsonlTraceWriter` replay to exact
:class:`~repro.core.cost.RunProfile` objects (see
:mod:`repro.observability.replay`), and :class:`InMemoryAggregator`
keeps cheap running totals for tests and live dashboards.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.cost import ClusterSpec, RoundRecord, RunProfile
from repro.core.monitor import UtilizationSample, sample_from_record

__all__ = [
    "TraceSink",
    "JsonlTraceWriter",
    "InMemoryAggregator",
    "MonitorSink",
]


class TraceSink:
    """No-op base class defining the observability event hooks.

    Subclasses override the events they care about. All hooks are
    called synchronously from the charge path, so implementations must
    be cheap and must never raise or mutate their arguments — the
    zero-overhead contract covers "no sink attached"; an attached sink
    is trusted to stay out of the way.
    """

    def on_run_begin(
        self, platform: str, graph: str, algorithm: str, spec: ClusterSpec
    ) -> None:
        """One algorithm execution (attempt) starts."""

    def on_round_begin(self, index: int, name: str, barrier: bool) -> None:
        """The meter opened round ``index``."""

    def on_charge(self, kind: str, round_index: int, fields: dict) -> None:
        """A message/shuffle/disk/memory/startup charge landed.

        ``kind`` is one of ``message``, ``shuffle``, ``disk-read``,
        ``disk-write``, ``memory``, ``startup``; ``fields`` carries the
        kind-specific payload. Per-compute charges are intentionally
        not streamed — round-end spans carry the per-worker breakdown.
        """

    def on_round_end(
        self, index: int, record: RoundRecord,
        straggler_penalty_seconds: float = 0.0,
    ) -> None:
        """The meter closed round ``index``; ``record`` is final."""

    def on_fault(self, kind: str, round_index: int, detail: str) -> None:
        """An injected fault or budget violation fired."""

    def on_run_end(self, profile: RunProfile | None, status: str) -> None:
        """The execution finished; ``profile`` is ``None`` on failure."""


class JsonlTraceWriter(TraceSink):
    """Structured JSONL trace: one span per round, fault-annotated.

    Event lines, in stream order per attempt::

        {"event": "run-begin", "attempt": 1, "platform": ..., "cluster": {...}}
        {"event": "charge", ...}            # only with charges=True
        {"event": "round", "index": 0, "name": ..., <charge breakdown>}
        {"event": "fault", "kind": ..., "round": ..., "detail": ...}
        {"event": "run-end", "status": "success", <profile summary>}

    Spans carry the complete :class:`RoundRecord` — per-worker ops and
    random accesses, message/byte/disk totals, and the derived seconds
    — so :func:`repro.observability.replay.replay_trace` reconstructs
    the exact recorded :class:`RunProfile` from the trace alone.
    Retried attempts append further ``run-begin`` blocks to the same
    file. The file is created lazily on the first event; traces are
    fully deterministic (no wall-clock timestamps: the only clock in a
    trace is the simulated one).
    """

    def __init__(self, path: str | Path, charges: bool = False):
        self.path = Path(path)
        #: Stream fine-grained charge events too (large traces).
        self.charges = charges
        self.attempt = 0
        self._handle = None

    # -- plumbing ------------------------------------------------------

    def _write(self, event: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(json.dumps(event) + "\n")

    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- events --------------------------------------------------------

    def on_run_begin(self, platform, graph, algorithm, spec) -> None:
        self.attempt += 1
        self._write(
            {
                "event": "run-begin",
                "attempt": self.attempt,
                "platform": platform,
                "graph": graph,
                "algorithm": algorithm,
                "cluster": spec.to_dict(),
            }
        )

    def on_charge(self, kind, round_index, fields) -> None:
        if self.charges:
            self._write(
                {"event": "charge", "kind": kind, "round": round_index, **fields}
            )

    def on_round_end(self, index, record, straggler_penalty_seconds=0.0) -> None:
        span = {
            "event": "round",
            "index": index,
            "name": record.name,
            "ops_per_worker": list(record.ops_per_worker),
            "random_accesses_per_worker": list(
                record.random_accesses_per_worker
            ),
            "local_messages": record.local_messages,
            "remote_messages": record.remote_messages,
            "remote_bytes": record.remote_bytes,
            "disk_read_bytes": record.disk_read_bytes,
            "disk_write_bytes": record.disk_write_bytes,
            "striped_disk_read_bytes": record.striped_disk_read_bytes,
            "striped_disk_write_bytes": record.striped_disk_write_bytes,
            "disk_bytes_per_worker": list(record.disk_bytes_per_worker),
            "disk_random_bytes_per_worker": list(
                record.disk_random_bytes_per_worker
            ),
            "live_memory_bytes": record.live_memory_bytes,
            "active_vertices": record.active_vertices,
            "barrier": record.barrier,
            "compute_seconds": record.compute_seconds,
            "network_seconds": record.network_seconds,
            "network_transfer_seconds": record.network_transfer_seconds,
            "network_latency_seconds": record.network_latency_seconds,
            "network_queueing_seconds": record.network_queueing_seconds,
            "disk_seconds": record.disk_seconds,
            "barrier_seconds": record.barrier_seconds,
        }
        if straggler_penalty_seconds:
            span["straggler_penalty_seconds"] = straggler_penalty_seconds
        self._write(span)

    def on_fault(self, kind, round_index, detail) -> None:
        self._write(
            {"event": "fault", "kind": kind, "round": round_index,
             "detail": detail}
        )

    def on_run_end(self, profile, status) -> None:
        event = {"event": "run-end", "status": status}
        if profile is not None:
            event["startup_seconds"] = profile.startup_seconds
            event["peak_memory_per_worker"] = list(
                profile.peak_memory_per_worker
            )
            event["simulated_seconds"] = profile.simulated_seconds
        self._write(event)


class InMemoryAggregator(TraceSink):
    """Cheap running totals over the event stream (no I/O).

    Useful for tests and for surfacing live counters without paying
    for a trace file: counts rounds, charges by kind, bytes moved,
    faults by kind, and completed/failed runs.
    """

    def __init__(self):
        self.runs_started = 0
        self.runs_finished = 0
        self.runs_failed = 0
        self.rounds = 0
        self.charge_counts: dict[str, int] = {}
        self.remote_bytes = 0.0
        self.disk_bytes = 0.0
        self.messages = 0
        self.faults: dict[str, int] = {}
        self.simulated_seconds = 0.0
        self.straggler_penalty_seconds = 0.0

    def on_run_begin(self, platform, graph, algorithm, spec) -> None:
        self.runs_started += 1

    def on_charge(self, kind, round_index, fields) -> None:
        self.charge_counts[kind] = self.charge_counts.get(kind, 0) + 1

    def on_round_end(self, index, record, straggler_penalty_seconds=0.0) -> None:
        self.rounds += 1
        self.remote_bytes += record.remote_bytes
        self.disk_bytes += record.disk_read_bytes + record.disk_write_bytes
        self.messages += record.local_messages + record.remote_messages
        self.simulated_seconds += record.seconds
        self.straggler_penalty_seconds += straggler_penalty_seconds

    def on_fault(self, kind, round_index, detail) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def on_run_end(self, profile, status) -> None:
        if status == "success":
            self.runs_finished += 1
        else:
            self.runs_failed += 1

    def summary(self) -> dict:
        """The aggregate view as one plain dict."""
        return {
            "runs_started": self.runs_started,
            "runs_finished": self.runs_finished,
            "runs_failed": self.runs_failed,
            "rounds": self.rounds,
            "messages": self.messages,
            "remote_bytes": self.remote_bytes,
            "disk_bytes": self.disk_bytes,
            "charge_counts": dict(self.charge_counts),
            "faults": dict(self.faults),
            "simulated_seconds": self.simulated_seconds,
        }


class MonitorSink(TraceSink):
    """Streams the System Monitor's utilization series from spans.

    The sample construction is shared with the profile-based path
    (:func:`repro.core.monitor.sample_from_record`), so a live tracing
    run and an after-the-fact ``samples_from_profile`` call produce
    identical series — the CSV export sits on top of either.
    """

    def __init__(self):
        self.samples: list[UtilizationSample] = []
        self._clock = 0.0

    def on_round_end(self, index, record, straggler_penalty_seconds=0.0) -> None:
        self._clock += record.seconds
        self.samples.append(sample_from_record(record, self._clock))

    def on_run_begin(self, platform, graph, algorithm, spec) -> None:
        # Each execution gets its own simulated clock.
        self.samples = []
        self._clock = 0.0

    def replay_profile(self, profile: RunProfile) -> list[UtilizationSample]:
        """Feed a recorded profile through the same round hook."""
        for index, record in enumerate(profile.rounds):
            self.on_round_end(index, record)
        return self.samples
