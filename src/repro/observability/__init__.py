"""Structured tracing and choke-point observability.

The observability layer turns the cost model's charge stream into
artifacts: JSONL traces (one span per round, fault-annotated),
utilization series for the System Monitor, in-memory aggregates, and
cross-run regression analysis. Everything is observe-only — attaching
a sink never changes a recorded profile, and with no sink attached the
charge path pays nothing.
"""

from repro.observability.analyze import (
    Regression,
    RunMetrics,
    compare_metrics,
    load_metrics,
)
from repro.observability.replay import (
    TraceAttempt,
    parse_trace,
    profile_fingerprint,
    read_trace,
    replay_trace,
    verify_replay,
)
from repro.observability.sinks import (
    InMemoryAggregator,
    JsonlTraceWriter,
    MonitorSink,
    TraceSink,
)

__all__ = [
    "TraceSink",
    "JsonlTraceWriter",
    "InMemoryAggregator",
    "MonitorSink",
    "TraceAttempt",
    "read_trace",
    "parse_trace",
    "replay_trace",
    "profile_fingerprint",
    "verify_replay",
    "RunMetrics",
    "Regression",
    "load_metrics",
    "compare_metrics",
]
