"""Command-line interface: the benchmark's entry point.

The paper's user workflow (Section 2.3) is: add graphs, configure the
platform, choose the workload, run the benchmark ("Graphalytics
includes a Unix shell script that triggers the execution of the
benchmark. After the execution completes, the benchmark report is
available in the local file system."). The installed ``graphalytics``
command implements that workflow:

* ``graphalytics run`` — execute a benchmark over catalog datasets
  and write the report;
* ``graphalytics datagen`` — generate a synthetic graph to files;
* ``graphalytics characterize`` — print a Table 1 row for a dataset;
* ``graphalytics quality`` — the Section 3.5 code-quality report and
  baseline quality gate (``--check`` / ``--update-baseline``);
* ``graphalytics audit`` — the benchmark self-audit: SoK
  fault-taxonomy rules over experiment artifacts (benchmark/graph
  configs, results databases, traces), sharing the quality gate's
  reporters, baseline, and ``--check`` semantics;
* ``graphalytics trace`` — summarize a structured JSONL run trace
  (written by ``run --trace DIR``): attempts, rounds, faults, and the
  dominant choke point;
* ``graphalytics analyze`` — compare two runs (traces, results
  databases, or submission documents) and flag regressions in time,
  network bytes, rounds, and dominant choke point;
* ``graphalytics whatif`` — execute one suite and re-cost it across
  hardware profiles (``paper-1gbe`` vs ``10gbe`` vs ``rdma`` ...),
  showing how simulated seconds and the dominant choke point shift
  with the machine;
* ``graphalytics calibrate`` — fit a hardware profile's free
  parameters against reference runtimes by re-costing recorded runs;
* ``graphalytics selfcheck`` — one command chaining the tier-1 test
  suite, the quality gate, the quick perf harness, the trace-replay
  check, and the calibration-fitter smoke.

``run`` also exposes the deterministic failure envelope: ``--mem-limit``
caps every worker's simulated memory (reproducing the paper's
out-of-memory failure cells), ``--timeout`` sets a typed per-run
budget, and ``--inject`` activates seeded fault injection
(stragglers, worker crashes, message loss) with bounded ``--retries``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Callable

from repro.core.benchmark import BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.report import ReportGenerator
from repro.core.results_db import ResultsDatabase
from repro.core.validation import OutputValidator
from repro.core.config import load_benchmark_config, load_hardware_settings
from repro.hardware.registry import (
    DEFAULT_PROFILE,
    available_profiles,
    default_workers,
)
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.analysis import (
    AnalysisConfig,
    analyze_tree,
    audit_paths,
    audit_spec,
    QualityReport,
    load_baseline,
    quality_gate,
    render_json,
    render_rule_profile,
    render_text,
    save_baseline,
)
from repro.datagen.datagen import Datagen, DatagenConfig
from repro.datasets.catalog import load_dataset
from repro.graph.io import write_edge_list
from repro.graph.properties import graph_characteristics
from repro.platforms.registry import available_platforms, create_platform_fleet
from repro.robustness import FaultPlan, apply_mem_limit, parse_bytes

__all__ = ["main"]

#: Default graph selection of ``graphalytics run``.
_DEFAULT_GRAPHS = "graph500-12,patents"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="graphalytics",
        description="Graphalytics benchmark for graph-processing platforms",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run the benchmark and write a report")
    run.add_argument(
        "--config",
        default=None,
        help="benchmark configuration file ([benchmark] section); "
        "explicit flags override its entries",
    )
    run.add_argument(
        "--platforms",
        default=None,
        help=f"comma-separated platform names (default: all: "
        f"{','.join(available_platforms())})",
    )
    run.add_argument(
        "--graphs",
        default=_DEFAULT_GRAPHS,
        help="comma-separated catalog names (e.g. graph500-12,snb-5000,patents)",
    )
    run.add_argument("--algorithms", default=None,
                     help="comma-separated subset of "
                     "STATS,BFS,CONN,CD,EVO,PR,SSSP,LCC "
                     "(SSSP requires weighted graphs)")
    run.add_argument("--hardware-profile", default=None, metavar="NAME",
                     help="hardware profile for the distributed "
                     f"platforms (registered: {','.join(available_profiles())};"
                     " default: the paper's 1 GbE cluster)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker count for the distributed platforms "
                     "(default: the profile's reference testbed)")
    run.add_argument("--time-limit", type=float, default=None,
                     help="simulated-seconds budget per run")
    run.add_argument("--mem-limit", default=None, metavar="BYTES",
                     help="per-worker simulated memory cap, e.g. 512M or "
                     "2G; platforms whose footprint exceeds it record "
                     "deterministic FAILED(OOM) cells")
    run.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                     help="typed per-run simulated timeout budget "
                     "(records FAILED(timeout) cells)")
    run.add_argument("--inject", default=None, metavar="SPEC",
                     help="fault-injection plan, e.g. "
                     "'straggler:workers=0,factor=4;crash:worker=2,round=5;"
                     "msgloss:rate=0.01,seed=7;transient:attempts=1'")
    run.add_argument("--retries", type=int, default=0, metavar="N",
                     help="bounded retries for transient injected faults")
    run.add_argument("--retry-backoff", type=float, default=1.0,
                     metavar="SECONDS",
                     help="simulated linear backoff per retry attempt")
    run.add_argument("--parallel", type=int, default=1, metavar="N",
                     help="run (platform, graph) pairs over N worker "
                     "processes (results identical to sequential)")
    run.add_argument("--trace", default=None, metavar="DIR",
                     help="write a structured JSONL trace per (platform, "
                     "graph, algorithm) cell into this directory "
                     "(inspect with 'graphalytics trace', compare with "
                     "'graphalytics analyze')")
    run.add_argument("--graph-store", default=None, metavar="DIR",
                     help="content-addressed .npy graph store for parallel "
                     "runs: workers mmap shared pages instead of "
                     "unpickling private graph copies")
    run.add_argument("--no-validate", action="store_true",
                     help="skip output validation")
    run.add_argument("--repetitions", type=int, default=None, metavar="N",
                     help="measured executions per cell (runtime reported "
                     "as their mean with std/CI95 columns)")
    run.add_argument("--warmup", type=int, default=None, metavar="N",
                     help="discarded warmup executions before measuring "
                     "each cell")
    run.add_argument("--audit", action="store_true",
                     help="preflight the resolved run spec through the "
                     "benchmark self-audit; error-severity findings "
                     "abort the run")
    run.add_argument("--report", default="graphalytics-report.txt",
                     help="report output path")
    run.add_argument("--html", default=None,
                     help="also write an HTML report to this path")
    run.add_argument("--results-db", default=None,
                     help="optional JSONL results database to append to")
    run.add_argument("--with-quality", action="store_true",
                     help="embed the Section 3.5 code-quality section "
                     "(analysis of ./src) in the report")

    datagen = commands.add_parser("datagen", help="generate a synthetic graph")
    datagen.add_argument("--persons", type=int, default=10000)
    datagen.add_argument("--distribution", default="facebook",
                         choices=["facebook", "zeta", "geometric", "weibull"])
    datagen.add_argument("--seed", type=int, default=0)
    datagen.add_argument("--output", required=True, help="edge-list output path")

    characterize = commands.add_parser(
        "characterize", help="print dataset characteristics (Table 1 row)"
    )
    characterize.add_argument("dataset", help="catalog name, e.g. patents")

    quality = commands.add_parser(
        "quality", help="static code-quality report and gate (Section 3.5)"
    )
    quality.add_argument("--root", default="src", help="source tree to analyze")
    quality.add_argument("--json", default=None, metavar="PATH",
                         help="also write a JSON report to this path")
    quality.add_argument("--baseline", default=None, metavar="PATH",
                         help="baseline snapshot for regression checking")
    quality.add_argument("--check", action="store_true",
                         help="gate: exit non-zero on regressions versus the "
                         "baseline (or on error-severity findings when no "
                         "baseline is given)")
    quality.add_argument("--update-baseline", action="store_true",
                         help="write the current analysis as the new baseline")
    quality.add_argument("--disable", default=None, metavar="RULES",
                         help="comma-separated rule ids to disable")
    quality.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="run per-file rules across N worker "
                         "processes (project rules stay in-process)")
    quality.add_argument("--profile-rules", action="store_true",
                         help="print a per-rule wall-clock table after "
                         "the report")

    audit = commands.add_parser(
        "audit",
        help="benchmark self-audit: SoK fault rules over experiment "
        "artifacts (configs, results databases, traces)",
    )
    audit.add_argument("paths", nargs="*", default=["configs"],
                       help="artifact files or directories to audit "
                       "(default: configs)")
    audit.add_argument("--json", default=None, metavar="PATH",
                       help="also write a JSON report to this path")
    audit.add_argument("--baseline", default=None, metavar="PATH",
                       help="baseline snapshot for regression checking")
    audit.add_argument("--check", action="store_true",
                       help="gate: exit non-zero on regressions versus the "
                       "baseline (or on error-severity findings when no "
                       "baseline is given)")
    audit.add_argument("--update-baseline", action="store_true",
                       help="write the current audit as the new baseline")
    audit.add_argument("--disable", default=None, metavar="RULES",
                       help="comma-separated audit rule ids to disable")
    audit.add_argument("--min-repetitions", type=int, default=3,
                       metavar="N",
                       help="repetitions below which single-run fires "
                       "(default 3)")

    perf = commands.add_parser(
        "perf", help="micro-benchmark the bulk vs scalar kernel paths"
    )
    perf.add_argument("--quick", action="store_true",
                      help="small graph, single repeat (smoke mode)")
    perf.add_argument("--scale", type=int, default=13,
                      help="R-MAT scale (default 13: ~131k edges)")
    perf.add_argument("--edge-factor", type=int, default=16,
                      help="R-MAT edges per vertex")
    perf.add_argument("--repeats", type=int, default=3,
                      help="timing repeats per path (best-of)")
    perf.add_argument("--kernels", default=None,
                      help="comma-separated kernel names (default: all)")
    perf.add_argument("--output", default="BENCH_kernels.json",
                      help="JSON report path")
    perf.add_argument("--json", action="store_true", dest="as_json",
                      help="print the full JSON report (including the "
                      "wall-time mean/std variance fields) to stdout")
    perf.add_argument("--datagen-scale", type=int, default=None,
                      metavar="N",
                      help="R-MAT scale for the datagen micro kernel "
                      "(default: scale + 5)")

    trace = commands.add_parser(
        "trace",
        help="summarize a structured JSONL run trace (from run --trace)",
    )
    trace.add_argument("trace", help="JSONL trace file of one benchmark cell")
    trace.add_argument("--rounds", action="store_true",
                       help="also list every round span")

    analyze = commands.add_parser(
        "analyze",
        help="compare two runs (traces/results-dbs/submissions) and flag "
        "regressions",
    )
    analyze.add_argument("old", help="baseline: trace, results db, or "
                         "submission document")
    analyze.add_argument("new", help="candidate, same formats")
    analyze.add_argument("--threshold", type=float, default=0.05,
                         metavar="FRACTION",
                         help="relative growth tolerated before a metric "
                         "counts as regressed (default 0.05)")
    analyze.add_argument("--check", action="store_true",
                         help="gate: exit non-zero when regressions are "
                         "found")

    whatif = commands.add_parser(
        "whatif",
        help="execute one suite and re-cost it across hardware profiles",
    )
    whatif.add_argument("--graphs", default="graph500-12",
                        help="comma-separated catalog names (default: "
                        "graph500-12)")
    whatif.add_argument("--algorithms", default="BFS,PR",
                        help="comma-separated algorithm subset "
                        "(default: BFS,PR)")
    whatif.add_argument("--platforms", default=None,
                        help="comma-separated cluster platforms "
                        "(default: every distributed platform; "
                        "single-machine platforms pin their own hardware)")
    whatif.add_argument("--profiles",
                        default="paper-1gbe,10gbe,rdma",
                        help="comma-separated profile sweep; the suite "
                        "executes once under the first profile and the "
                        "rest are exact re-costs "
                        f"(registered: {','.join(available_profiles())})")
    whatif.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker count (default: the base profile's "
                        "reference testbed)")

    calibrate = commands.add_parser(
        "calibrate",
        help="fit a hardware profile's free parameters to reference "
        "runtimes",
    )
    calibrate.add_argument("--profile", default=DEFAULT_PROFILE,
                           help="base profile to calibrate "
                           f"(default: {DEFAULT_PROFILE})")
    calibrate.add_argument("--target", action="append", default=None,
                           metavar="PLATFORM:GRAPH:ALG=SECONDS",
                           help="reference runtime for one cell, e.g. "
                           "giraph:graph500-8:BFS=12.0; repeatable "
                           "(default: the built-in Figure 4/5 proxy "
                           "targets)")
    calibrate.add_argument("--sweeps", type=int, default=3, metavar="N",
                           help="coordinate-descent sweeps (default 3)")
    calibrate.add_argument("--workers", type=int, default=None, metavar="N",
                           help="worker count for the calibration runs "
                           "(default: the profile's reference testbed)")

    selfcheck = commands.add_parser(
        "selfcheck",
        help="chain the tier-1 test suite, quality gate, quick perf "
        "harness, trace-replay check, and calibration smoke in one "
        "command",
    )
    selfcheck.add_argument("--fast", action="store_true",
                           help="skip tests marked slow (-m 'not slow')")
    selfcheck.add_argument("--skip-tests", action="store_true",
                           help="skip the pytest stage")
    selfcheck.add_argument("--skip-quality", action="store_true",
                           help="skip the quality-gate stage")
    selfcheck.add_argument("--skip-audit", action="store_true",
                           help="skip the benchmark self-audit stage")
    selfcheck.add_argument("--skip-perf", action="store_true",
                           help="skip the quick perf stage")
    selfcheck.add_argument("--skip-trace", action="store_true",
                           help="skip the trace-replay stage")
    selfcheck.add_argument("--skip-calibrate", action="store_true",
                           help="skip the calibration-fitter smoke stage")

    leaderboard = commands.add_parser(
        "leaderboard",
        help="rank platforms from a results database (the public results vision)",
    )
    leaderboard.add_argument("--results-db", required=True)
    leaderboard.add_argument("--graph", required=True)
    leaderboard.add_argument("--algorithm", required=True)

    return parser


def _resolve_run_selection(args: argparse.Namespace):
    """Merge CLI flags with an optional config file into run settings.

    Returns ``(platform_names, graph_names, algorithms, time_limit,
    validate)``; explicit flags always win over the config file.
    """
    config_spec = None
    config_time_limit = None
    if args.config:
        config_spec, config_time_limit = load_benchmark_config(args.config)

    if args.platforms:
        platform_names = [name.strip() for name in args.platforms.split(",")]
    elif config_spec is not None and config_spec.platforms is not None:
        platform_names = config_spec.platforms
    else:
        platform_names = available_platforms()

    if args.graphs != _DEFAULT_GRAPHS or config_spec is None or (
        config_spec.graphs is None
    ):
        graph_names = [name.strip() for name in args.graphs.split(",")]
    else:
        graph_names = config_spec.graphs

    algorithms = None
    if args.algorithms:
        algorithms = [
            Algorithm.from_name(name) for name in args.algorithms.split(",")
        ]
    elif config_spec is not None:
        algorithms = config_spec.algorithms

    time_limit = (
        args.time_limit if args.time_limit is not None else config_time_limit
    )
    validate = not args.no_validate
    if config_spec is not None and not config_spec.validate_outputs:
        validate = False

    repetitions = args.repetitions
    if repetitions is None:
        repetitions = config_spec.repetitions if config_spec else 1
    warmup = args.warmup
    if warmup is None:
        warmup = config_spec.warmup_runs if config_spec else 0
    spec = BenchmarkRunSpec(
        algorithms=algorithms,
        validate_outputs=validate,
        repetitions=max(repetitions, 1),
        warmup_runs=max(warmup, 0),
    )
    return platform_names, graph_names, spec, time_limit, validate


def _resolve_cluster(args: argparse.Namespace) -> ClusterSpec:
    """The distributed platforms' cluster from flags and config.

    With no ``--hardware-profile``/``--workers`` flag and no
    ``[hardware]`` config section, this is exactly
    ``ClusterSpec.paper_distributed()`` — the historical default.
    """
    settings = None
    if getattr(args, "config", None):
        settings = load_hardware_settings(args.config)
    profile_name = args.hardware_profile or (
        settings.profile if settings else None
    )
    workers = args.workers if args.workers is not None else (
        settings.workers if settings else None
    )
    if profile_name is None and workers is None:
        return ClusterSpec.paper_distributed()
    resolved_profile = profile_name or DEFAULT_PROFILE
    if workers is None:
        workers = default_workers(resolved_profile)
    return ClusterSpec.from_profile(resolved_profile, num_workers=workers)


def _preflight_audit(spec: BenchmarkRunSpec, time_limit: float | None) -> int:
    """Audit the resolved run spec; non-zero means abort the run.

    This is the SoK gate applied *before* spending any benchmark time:
    a suite configured without repetitions or validation fails here
    instead of producing an unsound report.
    """
    file_report = audit_spec(spec, time_limit)
    for finding in file_report.findings:
        print(f"audit: {finding.severity} [{finding.rule}] {finding.message}")
    errors = file_report.error_findings()
    if errors:
        print(f"audit: {len(errors)} error-severity finding(s); aborting "
              "(rerun without --audit to override)")
        return 2
    return 0


def _command_run(args: argparse.Namespace) -> int:
    (
        platform_names, graph_names, spec, time_limit, validate,
    ) = _resolve_run_selection(args)
    if args.audit:
        preflight = _preflight_audit(spec, time_limit)
        if preflight:
            return preflight

    try:
        distributed = _resolve_cluster(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2
    platforms = create_platform_fleet(distributed, names=platform_names)
    mem_limit = None
    if args.mem_limit:
        mem_limit = parse_bytes(args.mem_limit)
        for platform in platforms:
            apply_mem_limit(platform, mem_limit)
    fault_plan = FaultPlan.parse(args.inject) if args.inject else None
    graphs = {name: load_dataset(name) for name in graph_names}
    core = BenchmarkCore(
        platforms,
        graphs,
        validator=OutputValidator() if validate else None,
        time_limit_seconds=time_limit,
        timeout_seconds=args.timeout,
        fault_plan=fault_plan,
        max_retries=args.retries,
        retry_backoff_seconds=args.retry_backoff,
        trace_dir=args.trace,
        graph_store=args.graph_store,
    )
    suite = core.run(spec, parallel=args.parallel)
    configuration = {
        "platforms": ",".join(sorted(p.name for p in platforms)),
        "graphs": ",".join(sorted(graphs)),
        "cluster": distributed.name,
    }
    if spec.repetitions > 1:
        configuration["repetitions"] = str(spec.repetitions)
    if spec.warmup_runs > 0:
        configuration["warmup"] = str(spec.warmup_runs)
    if mem_limit is not None:
        configuration["mem-limit"] = f"{int(mem_limit)} bytes/worker"
    if args.timeout is not None:
        configuration["timeout"] = f"{args.timeout} s"
    if fault_plan is not None:
        configuration["inject"] = args.inject
    if args.trace:
        configuration["trace"] = args.trace
    _write_run_artifacts(args, suite, configuration)
    return 0 if not suite.failures() or suite.successes() else 1


def _write_run_artifacts(args, suite, configuration) -> None:
    """Emit the report and optional HTML/results-db/trace artifacts."""
    generator = ReportGenerator(configuration=configuration)
    quality = analyze_tree("src") if args.with_quality else None
    path = generator.write(suite, args.report, quality=quality)
    print(generator.render(suite, quality=quality))
    print(f"\nreport written to {path}")
    if args.html:
        html_path = generator.write_html(suite, args.html)
        print(f"HTML report written to {html_path}")
    if args.results_db:
        written = ResultsDatabase(args.results_db).submit(suite)
        print(f"{written} results appended to {args.results_db}")
    if args.trace:
        traced = sum(1 for r in suite.results if r.trace_path)
        print(f"{traced} trace file(s) written to {args.trace}")


def _command_datagen(args: argparse.Namespace) -> int:
    config = DatagenConfig(
        num_persons=args.persons,
        degree_distribution=args.distribution,
        seed=args.seed,
    )
    graph = Datagen(config).generate()
    count = write_edge_list(graph, args.output)
    print(
        f"generated {graph.num_vertices} persons, {count} knows edges "
        f"-> {args.output}"
    )
    return 0


def _command_characterize(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset)
    row = graph_characteristics(graph, args.dataset)
    print(f"{'dataset':<14}{'nodes':>9}{'edges':>10}{'GlCC':>9}{'AvgCC':>9}{'Asrt':>9}")
    print(
        f"{row.name:<14}{row.num_vertices:>9}{row.num_edges:>10}"
        f"{row.global_clustering:>9.4f}{row.average_clustering:>9.4f}"
        f"{row.assortativity:>9.4f}"
    )
    return 0


def _gate_report(report, args, default_baseline: str, label: str) -> int:
    """Shared ``--json`` / ``--update-baseline`` / ``--check`` plumbing.

    Both ``quality`` (Python source) and ``audit`` (experiment
    artifacts) produce a :class:`QualityReport`; this is the one gate
    behind both commands.
    """
    if args.json:
        Path(args.json).write_text(render_json(report), encoding="utf-8")
        print(f"JSON report written to {args.json}")
    if args.update_baseline:
        path = save_baseline(report, args.baseline or default_baseline)
        print(f"baseline written to {path}")
        return 0
    if args.check:
        baseline = None
        if args.baseline:
            try:
                baseline = load_baseline(args.baseline)
            except FileNotFoundError:
                print(f"error: baseline {args.baseline!r} does not exist "
                      "(create one with --update-baseline)")
                return 2
            except ValueError as exc:
                print(f"error: unreadable baseline {args.baseline!r}: {exc}")
                return 2
        gate = quality_gate(report, baseline)
        if not gate.passed:
            print(f"{label} FAILED:")
            for regression in gate.regressions:
                print(f"  {regression.severity}: {regression.message}")
            return gate.exit_code
        print(f"{label} passed")
    return 0


def _disabled_rules(raw: str | None) -> frozenset[str]:
    """Parse a ``--disable`` comma list into a rule-id set."""
    if not raw:
        return frozenset()
    return frozenset(rule.strip() for rule in raw.split(",") if rule.strip())


def _command_quality(args: argparse.Namespace) -> int:
    config = AnalysisConfig(disabled=_disabled_rules(args.disable))
    timings: dict[str, float] | None = {} if args.profile_rules else None
    report = analyze_tree(
        args.root, config, jobs=max(1, args.jobs), rule_timings=timings
    )
    print(render_text(report))
    if timings is not None:
        print()
        print(render_rule_profile(timings))
    return _gate_report(report, args, ".quality-baseline.json", "quality gate")


def _command_audit(args: argparse.Namespace) -> int:
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no experiment artifacts found under {missing}")
        return 2
    config = AnalysisConfig(
        disabled=_disabled_rules(args.disable),
        min_repetitions=args.min_repetitions,
    )
    report = audit_paths(args.paths, config)
    if not report.files:
        print(f"error: no experiment artifacts found under {args.paths}")
        return 2
    print(render_text(report))
    return _gate_report(report, args, ".audit-baseline.json", "audit gate")


def _command_perf(args: argparse.Namespace) -> int:
    from repro.perf import default_kernels, run_perf, write_report

    scale, edge_factor, repeats = args.scale, args.edge_factor, args.repeats
    if args.quick:
        scale, edge_factor, repeats = 8, 8, 1
    kernels = None
    if args.kernels:
        wanted = {name.strip() for name in args.kernels.split(",")}
        kernels = [k for k in default_kernels() if k.name in wanted]
        unknown = wanted - {k.name for k in kernels}
        if unknown:
            print(f"error: unknown kernels {sorted(unknown)}; choose from "
                  f"{[k.name for k in default_kernels()]}")
            return 2
    report = run_perf(
        scale=scale, edge_factor=edge_factor, repeats=repeats, kernels=kernels,
        datagen_scale=args.datagen_scale,
    )
    if args.as_json:
        print(report.to_json(), end="")
    else:
        print(f"{'kernel':<24}{'bulk s':>10}{'scalar s':>10}{'speedup':>9}"
              f"{'consrv':>9}  sim-match")
        for timing in report.kernels:
            print(
                f"{timing.name:<24}{timing.bulk_wall_seconds:>10.4f}"
                f"{timing.scalar_wall_seconds:>10.4f}{timing.speedup:>8.1f}x"
                f"{timing.conservative_speedup:>8.1f}x"
                f"  {'yes' if timing.simulated_match else 'NO'}"
            )
    path = write_report(report, args.output)
    if not args.as_json:
        print(f"\nkernel timings written to {path}")
    return 0 if all(t.simulated_match for t in report.kernels) else 1


def _command_trace(args: argparse.Namespace) -> int:
    from repro.core.chokepoints import analyze_profile
    from repro.observability import parse_trace, read_trace

    try:
        attempts = parse_trace(read_trace(args.trace))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}")
        return 2
    if not attempts:
        print(f"error: {args.trace} contains no run attempts")
        return 2
    for attempt in attempts:
        print(
            f"attempt {attempt.attempt}: {attempt.platform}/{attempt.graph}/"
            f"{attempt.algorithm.lower()}  status={attempt.status}"
        )
        if attempt.complete:
            profile = attempt.to_profile()
            report = analyze_profile(profile)
            print(
                f"  rounds={profile.num_rounds} "
                f"simulated={profile.simulated_seconds:.2f} s "
                f"net={profile.total_remote_bytes / 2**20:.2f} MiB "
                f"peak-mem={profile.peak_memory / 2**20:.2f} MiB "
                f"dominant={report.dominant()}"
            )
        if args.rounds:
            for record in attempt.rounds:
                print(
                    f"    {record.name:<20} {record.seconds:9.3f} s "
                    f"net={record.remote_bytes / 2**20:8.2f} MiB "
                    f"active={record.active_vertices}"
                )
        for fault in attempt.faults:
            print(
                f"  fault@round {fault.get('round')}: {fault.get('kind')} "
                f"({fault.get('detail')})"
            )
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    from repro.observability import compare_metrics, load_metrics

    try:
        old = load_metrics(args.old)
        new = load_metrics(args.new)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    regressions = compare_metrics(old, new, threshold=args.threshold)
    matched = sum(1 for key in old if key in new)
    print(
        f"compared {matched} matched run(s) "
        f"({len(old)} baseline, {len(new)} candidate, "
        f"threshold {args.threshold:.0%})"
    )
    if not regressions:
        print("no regressions")
        return 0
    print(f"{len(regressions)} regression(s):")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 1 if args.check else 0


def _command_whatif(args: argparse.Namespace) -> int:
    from repro.hardware.whatif import run_whatif

    profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
    graphs = [g.strip() for g in args.graphs.split(",") if g.strip()]
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    platforms = None
    if args.platforms:
        platforms = [p.strip() for p in args.platforms.split(",") if p.strip()]
    try:
        report = run_whatif(
            graphs,
            algorithms=algorithms,
            platforms=platforms,
            profiles=profiles,
            workers=args.workers,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}")
        return 2
    print(
        f"suite executed once under {report.base_profile!r} "
        f"({report.num_workers} workers); other columns are exact "
        "re-costs of the recorded charges"
    )
    print(report.render())
    return 0


def _parse_calibration_target(raw: str) -> tuple[tuple[str, str, str], float]:
    """Parse one ``platform:graph:ALG=seconds`` target override."""
    cell, _, seconds = raw.partition("=")
    parts = cell.split(":")
    if len(parts) != 3 or not seconds:
        raise ValueError(
            f"bad target {raw!r}; expected platform:graph:ALG=seconds"
        )
    platform, graph, algorithm = (part.strip() for part in parts)
    return (platform, graph, algorithm.upper()), float(seconds)


def _command_calibrate(args: argparse.Namespace) -> int:
    from repro.api import run_benchmark
    from repro.hardware.calibrate import REFERENCE_TARGETS, calibrate
    from repro.hardware.registry import get_profile

    try:
        base = get_profile(args.profile)
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2
    targets = dict(REFERENCE_TARGETS)
    if args.target:
        targets = {}
        for raw in args.target:
            try:
                key, seconds = _parse_calibration_target(raw)
            except ValueError as exc:
                print(f"error: {exc}")
                return 2
            targets[key] = seconds
    platforms = sorted({platform for platform, _, _ in targets})
    graphs = sorted({graph for _, graph, _ in targets})
    algorithms = sorted({algorithm for _, _, algorithm in targets})
    workers = (
        args.workers
        if args.workers is not None
        else default_workers(args.profile)
    )
    cluster = ClusterSpec.from_profile(base, num_workers=workers)
    suite = run_benchmark(
        graphs,
        platforms=platforms,
        algorithms=algorithms,
        cluster=cluster,
        validate=False,
    )
    runs = []
    for result in suite.results:
        key = (result.platform, result.graph_name, result.algorithm.value)
        if key not in targets:
            continue
        if not result.succeeded:
            print(
                f"error: calibration cell {key} failed: "
                f"{result.failure_reason}"
            )
            return 2
        runs.append((result.run.profile, targets[key]))
    if not runs:
        print("error: no calibration cells executed")
        return 2
    result = calibrate(runs, base, sweeps=args.sweeps)
    print(f"fitted {len(runs)} cell(s) over {workers} workers")
    print(result.summary())
    return 0


#: Hard ceiling on a full-src static analysis inside selfcheck.
_QUALITY_BUDGET_SECONDS = 30.0


def _selfcheck_tests(fast: bool) -> bool:
    """Run the tier-1 pytest suite (``-m 'not slow'`` when fast)."""
    import subprocess

    command = [sys.executable, "-m", "pytest", "-x", "-q"]
    if fast:
        command += ["-m", "not slow"]
    print(f"selfcheck: running {' '.join(command)}")
    return subprocess.run(command).returncode == 0


def _selfcheck_gate(report: QualityReport, baseline_name: str) -> bool:
    """Gate a report against a checked-in baseline, printing regressions."""
    baseline = None
    baseline_path = Path(baseline_name)
    if baseline_path.exists():
        baseline = load_baseline(baseline_path)
    gate = quality_gate(report, baseline)
    if not gate.passed:
        for regression in gate.regressions:
            print(f"  {regression.severity}: {regression.message}")
    return gate.passed


def _selfcheck_quality() -> bool:
    """Run the static-analysis gate over src within its time budget."""
    import time as _time

    print("selfcheck: running quality gate")
    quality_start = _time.perf_counter()
    # Fan the per-file rules out over a few workers; the growing rule
    # set must not push the full-src analysis past its budget.
    jobs = max(1, min(4, (os.cpu_count() or 1) - 1))
    report = analyze_tree("src", jobs=jobs)
    quality_seconds = _time.perf_counter() - quality_start
    passed = _selfcheck_gate(report, ".quality-baseline.json")
    # The interprocedural rules (call graph + fixpoints) must stay
    # interactive: a full-src analysis has a hard 30 s budget so
    # the gate never becomes the slow step of a commit.
    within_budget = quality_seconds < _QUALITY_BUDGET_SECONDS
    if not within_budget:
        print(
            f"  analysis took {quality_seconds:.1f}s "
            f"(budget {_QUALITY_BUDGET_SECONDS:.0f}s)"
        )
    print(f"  quality gate analyzed src in {quality_seconds:.1f}s")
    return passed and within_budget


def _selfcheck_audit() -> bool:
    """Run the benchmark self-audit over the shipped experiment suite."""
    print("selfcheck: running benchmark self-audit over configs")
    return _selfcheck_gate(audit_paths(["configs"]), ".audit-baseline.json")


def _selfcheck_perf() -> bool:
    """Run the quick perf harness and check bulk/scalar equivalence."""
    from repro.perf import run_perf

    print("selfcheck: running quick perf harness")
    perf_report = run_perf(scale=8, edge_factor=8, repeats=1)
    for timing in perf_report.kernels:
        if not timing.simulated_match:
            print(f"  {timing.name}: bulk/scalar simulated-cost mismatch")
    return all(t.simulated_match for t in perf_report.kernels)


def _selfcheck_trace() -> bool:
    """Run a traced benchmark and verify replay + self-analysis."""
    import tempfile

    from repro.observability import verify_replay

    print("selfcheck: running trace-replay check")
    passed = False
    with tempfile.TemporaryDirectory() as tmp:
        graphs = {"graph500-8": load_dataset("graph500-8")}
        platforms = create_platform_fleet(
            ClusterSpec.paper_distributed(), names=["giraph"]
        )
        core = BenchmarkCore(platforms, graphs, trace_dir=tmp)
        suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
        result = suite.results[0]
        if not (result.succeeded and result.trace_path):
            print(f"  traced run failed: {result.failure_reason}")
        else:
            mismatches = verify_replay(result.trace_path, result.run.profile)
            for mismatch in mismatches:
                print(f"  replay mismatch: {mismatch}")
            analyze_args = argparse.Namespace(
                old=result.trace_path,
                new=result.trace_path,
                threshold=0.05,
                check=True,
            )
            passed = not mismatches and _command_analyze(analyze_args) == 0
    return passed


def _selfcheck_calibrate() -> bool:
    """Smoke the calibration fitter: one cheap fit must not diverge."""
    from repro.api import run_benchmark
    from repro.hardware.calibrate import REFERENCE_TARGETS, calibrate
    from repro.hardware.registry import get_profile

    print("selfcheck: running calibration-fitter smoke")
    base = get_profile(DEFAULT_PROFILE)
    suite = run_benchmark(
        ["graph500-8"],
        platforms=["giraph"],
        algorithms=["BFS", "PR"],
        cluster=ClusterSpec.from_profile(base, num_workers=10),
        validate=False,
    )
    runs = []
    for result in suite.results:
        if not result.succeeded:
            print(f"  calibration run failed: {result.failure_reason}")
            return False
        key = (result.platform, result.graph_name, result.algorithm.value)
        runs.append((result.run.profile, REFERENCE_TARGETS[key]))
    fit = calibrate(runs, base, sweeps=1)
    if fit.error_after > fit.error_before:
        print(
            f"  fitter diverged: {fit.error_before:.4f} -> "
            f"{fit.error_after:.4f}"
        )
        return False
    print(
        f"  rms log error {fit.error_before:.4f} -> {fit.error_after:.4f} "
        f"({fit.evaluations} evaluations)"
    )
    return True


def _command_selfcheck(args: argparse.Namespace) -> int:
    """One command that answers "is this checkout healthy?".

    Chains the repo's own verification stages — tier-1 pytest suite,
    static-analysis quality gate against the checked-in baseline, the
    benchmark self-audit over the shipped configs, the quick perf
    harness (bulk/scalar equivalence), the trace-replay check (a
    traced run's JSONL re-aggregates to the exact recorded profile and
    self-compares clean under ``analyze --check``), and the
    calibration-fitter smoke — and reports a pass/fail summary.
    ``make check`` delegates here.
    """
    plan: list[tuple[str, bool, Callable[[], bool]]] = [
        ("tests", args.skip_tests, lambda: _selfcheck_tests(args.fast)),
        ("quality gate", args.skip_quality, _selfcheck_quality),
        ("audit gate", args.skip_audit, _selfcheck_audit),
        ("perf --quick", args.skip_perf, _selfcheck_perf),
        ("trace replay", args.skip_trace, _selfcheck_trace),
        ("calibrate smoke", args.skip_calibrate, _selfcheck_calibrate),
    ]
    stages: list[tuple[str, str]] = []
    exit_code = 0
    for name, skipped, stage in plan:
        if skipped:
            stages.append((name, "skipped"))
            continue
        passed = stage()
        stages.append((name, "ok" if passed else "FAILED"))
        if not passed:
            exit_code = 1

    print("\nselfcheck summary:")
    for name, status in stages:
        print(f"  {name:<14} {status}")
    print("selfcheck: " + ("PASS" if exit_code == 0 else "FAIL"))
    return exit_code


def _command_leaderboard(args: argparse.Namespace) -> int:
    db = ResultsDatabase(args.results_db)
    ranking = db.leaderboard(args.graph, args.algorithm.upper())
    if not ranking:
        print(f"no successful {args.algorithm} results for {args.graph}")
        return 1
    print(f"{args.algorithm.upper()} on {args.graph}:")
    for rank, (platform, runtime) in enumerate(ranking, start=1):
        print(f"  {rank}. {platform:<12} {runtime:9.1f} s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``graphalytics`` command."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "datagen": _command_datagen,
        "characterize": _command_characterize,
        "quality": _command_quality,
        "audit": _command_audit,
        "perf": _command_perf,
        "trace": _command_trace,
        "analyze": _command_analyze,
        "whatif": _command_whatif,
        "calibrate": _command_calibrate,
        "selfcheck": _command_selfcheck,
        "leaderboard": _command_leaderboard,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
