"""The dataset catalog: named graphs ready for benchmarking.

Provides the benchmark graphs of Section 3.3 — Graph500-style R-MAT
graphs and SNB-style Datagen graphs — plus the Table 1 stand-ins,
resolvable by name:

* ``graph500-<scale>`` — R-MAT with ``2**scale`` vertices, edge
  factor 16 (the paper benchmarks scale 23; reduced scales here);
* ``snb-<persons>`` — Datagen person-knows-person graph;
* ``amazon``, ``youtube``, ``livejournal``, ``patents``,
  ``wikipedia`` — the Table 1 stand-ins.
"""

from __future__ import annotations

from repro.datagen.datagen import Datagen, DatagenConfig
from repro.datasets.standins import standin_graph, standin_names
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph

__all__ = ["graph500_graph", "snb_graph", "load_dataset"]


def graph500_graph(scale: int, seed: int = 500) -> Graph:
    """Graph500-style R-MAT graph at the given scale."""
    return rmat_graph(scale, edge_factor=16, seed=seed)


def snb_graph(num_persons: int, seed: int = 1000) -> Graph:
    """SNB-style social network (person-knows-person projection).

    Uses Datagen's default Facebook-like degree distribution, as the
    LDBC SNB generator does.
    """
    config = DatagenConfig(
        num_persons=num_persons,
        degree_distribution="facebook",
        distribution_params={"median_degree": 18.0},
        window_size=32,
        decay=0.6,
        seed=seed,
    )
    return Datagen(config).generate()


def load_dataset(name: str, seed: int | None = None) -> Graph:
    """Resolve a catalog name to a graph.

    Examples: ``graph500-15``, ``snb-20000``, ``patents``.
    """
    if name in standin_names():
        return standin_graph(name) if seed is None else standin_graph(name, seed=seed)
    if name.startswith("graph500-"):
        scale = _suffix_int(name, "graph500-")
        return graph500_graph(scale) if seed is None else graph500_graph(scale, seed)
    if name.startswith("snb-"):
        persons = _suffix_int(name, "snb-")
        return snb_graph(persons) if seed is None else snb_graph(persons, seed)
    raise ValueError(
        f"unknown dataset {name!r}; expected one of {standin_names()}, "
        f"'graph500-<scale>', or 'snb-<persons>'"
    )


def _suffix_int(name: str, prefix: str) -> int:
    suffix = name[len(prefix):]
    if not suffix.isdigit():
        raise ValueError(f"dataset {name!r}: expected an integer after {prefix!r}")
    return int(suffix)
