"""The dataset catalog: named graphs ready for benchmarking.

Provides the benchmark graphs of Section 3.3 — Graph500-style R-MAT
graphs and SNB-style Datagen graphs — plus the Table 1 stand-ins,
resolvable by name:

* ``graph500-<scale>`` — R-MAT with ``2**scale`` vertices, edge
  factor 16 (the paper benchmarks scale 23; reduced scales here);
* ``snb-<persons>`` — Datagen person-knows-person graph;
* ``road-<side>`` — 2D lattice with ``side**2`` vertices, the
  road-network profile (low degree, high diameter) the audit's
  dataset-shape-bias rule wants suites to include;
* ``amazon``, ``youtube``, ``livejournal``, ``patents``,
  ``wikipedia`` — the Table 1 stand-ins.

:func:`dataset_profile` classifies any catalog name by shape
(``powerlaw`` vs ``road``) and estimated vertex count, which is what
the audit rules reason about without materializing the graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.datagen import Datagen, DatagenConfig
from repro.datasets.standins import (
    TABLE1_PAPER_VALUES,
    standin_graph,
    standin_names,
)
from repro.graph.generators import grid_graph, rmat_graph
from repro.graph.graph import Graph

__all__ = [
    "graph500_graph",
    "snb_graph",
    "road_graph",
    "load_dataset",
    "DatasetProfile",
    "dataset_profile",
]


def graph500_graph(scale: int, seed: int = 500) -> Graph:
    """Graph500-style R-MAT graph at the given scale."""
    return rmat_graph(scale, edge_factor=16, seed=seed)


def snb_graph(num_persons: int, seed: int = 1000) -> Graph:
    """SNB-style social network (person-knows-person projection).

    Uses Datagen's default Facebook-like degree distribution, as the
    LDBC SNB generator does.
    """
    config = DatagenConfig(
        num_persons=num_persons,
        degree_distribution="facebook",
        distribution_params={"median_degree": 18.0},
        window_size=32,
        decay=0.6,
        seed=seed,
    )
    return Datagen(config).generate()


def road_graph(side: int, seed: int = 2000) -> Graph:
    """Road-network-profile graph: a 2D lattice with sparse shortcuts."""
    return grid_graph(side, diagonal_probability=0.05, seed=seed)


def load_dataset(name: str, seed: int | None = None) -> Graph:
    """Resolve a catalog name to a graph.

    Examples: ``graph500-15``, ``snb-20000``, ``road-32``, ``patents``.
    """
    if name in standin_names():
        return standin_graph(name) if seed is None else standin_graph(name, seed=seed)
    if name.startswith("graph500-"):
        scale = _suffix_int(name, "graph500-")
        return graph500_graph(scale) if seed is None else graph500_graph(scale, seed)
    if name.startswith("snb-"):
        persons = _suffix_int(name, "snb-")
        return snb_graph(persons) if seed is None else snb_graph(persons, seed)
    if name.startswith("road-"):
        side = _suffix_int(name, "road-")
        return road_graph(side) if seed is None else road_graph(side, seed)
    raise ValueError(
        f"unknown dataset {name!r}; expected one of {standin_names()}, "
        f"'graph500-<scale>', 'snb-<persons>', or 'road-<side>'"
    )


@dataclass(frozen=True)
class DatasetProfile:
    """Shape class and estimated size of a catalog dataset.

    ``shape`` is ``"powerlaw"`` for the skewed-degree families (R-MAT,
    Datagen, the Table 1 stand-ins) and ``"road"`` for the lattice
    family. The estimate is what the audit's dataset-shape-bias rule
    compares — exact counts would require generating the graphs.
    """

    name: str
    shape: str
    est_vertices: float


def dataset_profile(name: str) -> DatasetProfile | None:
    """Classify a catalog name without materializing the graph.

    Returns ``None`` for names the catalog cannot resolve (file-backed
    graphs, typos) — the audit treats those as unknown rather than
    guessing.
    """
    try:
        if name in TABLE1_PAPER_VALUES:
            spec = TABLE1_PAPER_VALUES[name]
            # Mirror standin_graph's default 256x shrink.
            return DatasetProfile(
                name, "powerlaw", spec.nodes_millions * 1e6 / 256
            )
        if name.startswith("graph500-"):
            scale = _suffix_int(name, "graph500-")
            return DatasetProfile(name, "powerlaw", float(2**scale))
        if name.startswith("snb-"):
            persons = _suffix_int(name, "snb-")
            return DatasetProfile(name, "powerlaw", float(persons))
        if name.startswith("road-"):
            side = _suffix_int(name, "road-")
            return DatasetProfile(name, "road", float(side * side))
    except ValueError:
        return None
    return None


def _suffix_int(name: str, prefix: str) -> int:
    suffix = name[len(prefix):]
    if not suffix.isdigit():
        raise ValueError(f"dataset {name!r}: expected an integer after {prefix!r}")
    return int(suffix)
