"""Dataset catalog: the benchmark's preconfigured graphs.

The paper's harness ships "a database for Datasets, which includes
preconfigured graphs ready to be used with Graphalytics". This
package provides:

* deterministic synthetic stand-ins for the five SNAP graphs of
  Table 1 (Amazon, Youtube, LiveJournal, Patents, Wikipedia), built
  to match each graph's structural signature at a reduced scale
  (:mod:`repro.datasets.standins`);
* the benchmark graphs of Section 3.3 — Graph500 (R-MAT) and SNB
  (Datagen) at configurable scale — via the catalog
  (:mod:`repro.datasets.catalog`).
"""

from repro.datasets.standins import (
    TABLE1_PAPER_VALUES,
    StandinSpec,
    standin_graph,
    standin_names,
)
from repro.datasets.cache import DatasetCache, dataset_key
from repro.datasets.catalog import graph500_graph, load_dataset, snb_graph

__all__ = [
    "TABLE1_PAPER_VALUES",
    "StandinSpec",
    "standin_graph",
    "standin_names",
    "graph500_graph",
    "snb_graph",
    "load_dataset",
    "DatasetCache",
    "dataset_key",
]
