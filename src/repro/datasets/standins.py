"""Synthetic stand-ins for the real graphs of Table 1.

The paper characterizes five SNAP graphs by size, global/average
clustering coefficient, and degree assortativity, observing that
"there is not a particular dominant configuration, but the
configuration space is heterogeneous". The repository cannot ship the
SNAP downloads, so each graph gets a deterministic synthetic stand-in
constructed to land in the same region of that configuration space at
a reduced scale:

* **amazon** — small-world base (high clustering), rewired toward the
  paper's average clustering of 0.42 with near-zero assortativity;
* **youtube** — preferential attachment (heavy tail, low clustering,
  negative assortativity);
* **livejournal** — Datagen social graph rewired toward high
  clustering and positive assortativity;
* **patents** — Datagen citation-like graph with modest clustering
  and clearly positive assortativity;
* **wikipedia** — sparse preferential attachment (very low
  clustering, negative assortativity).

What matters for the benchmark is that the five stand-ins *span the
heterogeneous configuration space* the paper reports — high/low
clustering × positive/negative assortativity — not that each value is
matched exactly; the Table 1 experiment prints paper-vs-stand-in
values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.datagen import Datagen, DatagenConfig
from repro.datagen.rewiring import rewire_to_target
from repro.graph.generators import holme_kim_graph, watts_strogatz_graph
from repro.graph.graph import Graph

__all__ = ["StandinSpec", "TABLE1_PAPER_VALUES", "standin_names", "standin_graph"]


@dataclass(frozen=True)
class StandinSpec:
    """Table 1 row: the paper's reported characteristics."""

    name: str
    nodes_millions: float
    edges_millions: float
    global_clustering: float
    average_clustering: float
    assortativity: float


#: The paper's Table 1, verbatim.
TABLE1_PAPER_VALUES: dict[str, StandinSpec] = {
    spec.name: spec
    for spec in [
        StandinSpec("amazon", 0.3, 1.2, 0.2361, 0.4198, 0.0027),
        StandinSpec("youtube", 1.1, 3.0, 0.0062, 0.0808, -0.0369),
        StandinSpec("livejournal", 4.0, 35.0, 0.1253, 0.2843, 0.0452),
        StandinSpec("patents", 3.8, 16.5, 0.0671, 0.0757, 0.1332),
        StandinSpec("wikipedia", 2.4, 5.0, 0.0022, 0.0526, -0.0853),
    ]
}


def standin_names() -> list[str]:
    """Names of the five Table 1 stand-ins."""
    return sorted(TABLE1_PAPER_VALUES)


def standin_graph(name: str, scale_divisor: int = 256, seed: int = 42) -> Graph:
    """Build the stand-in for one Table 1 graph.

    ``scale_divisor`` shrinks the node count relative to the real
    graph (default: 256× smaller); edge density is preserved.
    """
    if name not in TABLE1_PAPER_VALUES:
        raise ValueError(
            f"unknown stand-in {name!r}; choose from {standin_names()}"
        )
    if scale_divisor < 1:
        raise ValueError("scale_divisor must be >= 1")
    spec = TABLE1_PAPER_VALUES[name]
    nodes = max(int(spec.nodes_millions * 1e6 / scale_divisor), 200)
    builder = {
        "amazon": _build_amazon,
        "youtube": _build_youtube,
        "livejournal": _build_livejournal,
        "patents": _build_patents,
        "wikipedia": _build_wikipedia,
    }[name]
    return builder(spec, nodes, seed)


def _edges_per_node(spec: StandinSpec) -> float:
    return spec.edges_millions / spec.nodes_millions


def _build_amazon(spec: StandinSpec, nodes: int, seed: int) -> Graph:
    # Co-purchase graphs are locally dense rings of related products:
    # a small-world base delivers the high clustering; light rewiring
    # trims it to the target and keeps assortativity near zero.
    k = 2 * max(int(round(_edges_per_node(spec))), 1)  # = 8
    base = watts_strogatz_graph(nodes, k, p=0.12, seed=seed)
    result = rewire_to_target(
        base,
        target_clustering=spec.average_clustering,
        max_swaps=6000,
        seed=seed,
    )
    return result.graph


def _build_youtube(spec: StandinSpec, nodes: int, seed: int) -> Graph:
    # Subscriber networks: heavy-tailed, moderate clustering from
    # shared-channel triads, slightly disassortative — Holme–Kim
    # lands on the paper's (0.081, -0.037) signature directly.
    m = max(int(round(_edges_per_node(spec))), 1)  # = 3
    return holme_kim_graph(nodes, m, triad_probability=0.18, seed=seed)


def _build_livejournal(spec: StandinSpec, nodes: int, seed: int) -> Graph:
    # Blogging friendships: a social graph with high clustering and
    # positive assortativity — Datagen with a strong degree-homophily
    # dimension and high within-window density.
    config = DatagenConfig(
        num_persons=nodes,
        degree_distribution="facebook",
        distribution_params={"median_degree": 1.5 * _edges_per_node(spec)},
        window_size=10,
        decay=0.95,
        degree_homophily=True,
        dimension_shares=(0.30, 0.30, 0.40),
        seed=seed,
    )
    return Datagen(config).generate()


def _build_patents(spec: StandinSpec, nodes: int, seed: int) -> Graph:
    # Citation graph: modest clustering, clearly positive
    # assortativity (patents cite patents of similar connectivity) —
    # Datagen with a degree-homophily dimension.
    config = DatagenConfig(
        num_persons=nodes,
        degree_distribution="geometric",
        distribution_params={"p": 1.0 / (2.0 * _edges_per_node(spec))},
        window_size=16,
        decay=0.65,
        degree_homophily=True,
        dimension_shares=(0.375, 0.375, 0.25),
        seed=seed,
    )
    return Datagen(config).generate()


def _build_wikipedia(spec: StandinSpec, nodes: int, seed: int) -> Graph:
    # Hyperlink graph: very sparse, low clustering, disassortative
    # hubs.
    m = max(int(round(_edges_per_node(spec))), 1)  # = 2
    return holme_kim_graph(nodes, m, triad_probability=0.08, seed=seed + 1)
