"""Content-addressed on-disk cache of generated graphs.

Graph generation is deterministic given (generator, params, seed), so
the cache key is a hash of exactly that triple — no need to generate a
graph to know where it lives. Entries are directories of ``.npy``
arrays written by :meth:`repro.graph.graph.Graph.save`; loads go
through ``np.load(mmap_mode="r")`` so every process mapping the same
entry shares physical pages, which is what lets the process-pool suite
runner ship a path to its workers instead of a pickled multi-hundred-
megabyte ``Graph``.

Writes are atomic: the entry is staged under a temp directory and
renamed into place, so a crashed writer never leaves a half-written
entry and concurrent writers race benignly (same content either way).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.graph.graph import Graph

__all__ = ["DatasetCache", "dataset_key"]


def dataset_key(generator: str, params: Mapping[str, Any], seed: int | None) -> str:
    """Deterministic cache key for a generated dataset.

    ``params`` must be JSON-serializable; ordering is canonicalized so
    equal parameter mappings always produce the same key.
    """
    payload = json.dumps(
        {"generator": generator, "params": dict(params), "seed": seed},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class DatasetCache:
    """Directory of content-addressed graph entries.

    Parameters
    ----------
    root:
        Cache directory; created on first write.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def entry_path(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key

    def contains(self, key: str) -> bool:
        """Whether a complete entry exists for ``key``."""
        return (self.entry_path(key) / "meta.json").is_file()

    def store(self, key: str, graph: Graph) -> Path:
        """Persist ``graph`` under ``key`` (atomic, idempotent)."""
        final = self.entry_path(key)
        if self.contains(key):
            return final
        self.root.mkdir(parents=True, exist_ok=True)
        staging = self.root / f".tmp-{key}-{uuid.uuid4().hex}"
        try:
            graph.save(staging)
            try:
                os.replace(staging, final)
            except OSError:
                # A concurrent writer won the rename; both wrote the
                # same deterministic content, so theirs is as good.
                if not self.contains(key):
                    raise
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)
        return final

    def load(self, key: str, mmap: bool = True) -> Graph:
        """Load the entry for ``key`` (memory-mapped by default)."""
        if not self.contains(key):
            raise KeyError(f"no cached dataset for key {key!r}")
        return Graph.load(self.entry_path(key), mmap=mmap)

    def get_or_generate(
        self,
        generator: str,
        params: Mapping[str, Any],
        seed: int | None,
        build: Callable[[], Graph],
        mmap: bool = True,
    ) -> Graph:
        """Return the cached graph for the triple, generating on miss.

        The returned graph is always served from the cache entry (so
        callers get mmap-backed arrays even on the generating run).
        """
        key = dataset_key(generator, params, seed)
        if not self.contains(key):
            self.store(key, build())
        return self.load(key, mmap=mmap)
