"""Core graph data structure.

The :class:`Graph` class is the canonical in-memory representation used
throughout the reproduction: a frozen, CSR-backed (compressed sparse
row) graph with integer vertex identifiers. Graphs are built through
:class:`GraphBuilder` (or the convenience constructors
:meth:`Graph.from_edges` and :meth:`Graph.from_adjacency`) and are
immutable afterwards, which makes it safe to share one graph instance
between the benchmark harness and several simulated platforms.

Vertex identifiers are arbitrary non-negative integers; they do not
need to be dense. Internally vertices are mapped to dense indices so
that adjacency can be stored in two numpy arrays (offsets + targets),
which keeps even multi-million-edge graphs comfortably in memory.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "GraphBuilder"]

#: On-disk layout version for :meth:`Graph.save`.
GRAPH_FORMAT = "graphalytics-graph/1"


class GraphBuilder:
    """Mutable accumulator used to construct a :class:`Graph`.

    The builder deduplicates edges and ignores self-loops by default,
    mirroring how Graphalytics preprocesses its datasets (the benchmark
    operates on simple graphs).

    Parameters
    ----------
    directed:
        Whether the resulting graph is directed. In an undirected
        graph, ``add_edge(u, v)`` and ``add_edge(v, u)`` are the same
        edge.
    allow_self_loops:
        Keep self-loops instead of silently dropping them.
    """

    def __init__(self, directed: bool = False, allow_self_loops: bool = False):
        self.directed = directed
        self.allow_self_loops = allow_self_loops
        self._vertices: set[int] = set()
        self._edges: set[tuple[int, int]] = set()

    def add_vertex(self, vertex: int) -> None:
        """Register a vertex (possibly isolated)."""
        if vertex < 0:
            raise ValueError(f"vertex ids must be non-negative, got {vertex}")
        self._vertices.add(int(vertex))

    def add_vertices(self, vertices: Iterable[int]) -> None:
        """Register many vertices at once."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, source: int, target: int) -> bool:
        """Add an edge; returns ``True`` if it was new.

        Self-loops are dropped (returning ``False``) unless the builder
        was created with ``allow_self_loops=True``.
        """
        source = int(source)
        target = int(target)
        if source < 0 or target < 0:
            raise ValueError("vertex ids must be non-negative")
        if source == target and not self.allow_self_loops:
            return False
        self._vertices.add(source)
        self._vertices.add(target)
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        if key in self._edges:
            return False
        self._edges.add(key)
        return True

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Add many edges; returns the number of new edges."""
        added = 0
        for source, target in edges:
            if self.add_edge(source, target):
                added += 1
        return added

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge is already present in the builder."""
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        return key in self._edges

    def remove_edge(self, source: int, target: int) -> bool:
        """Remove an edge if present; returns ``True`` if removed.

        Vertices stay registered even when their last edge is removed,
        matching the degree-preserving rewiring use case.
        """
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        if key in self._edges:
            self._edges.remove(key)
            return True
        return False

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges (arcs, for directed graphs)."""
        return len(self._edges)

    def build(self) -> "Graph":
        """Freeze the accumulated vertices/edges into a :class:`Graph`."""
        return Graph(
            sorted(self._vertices),
            sorted(self._edges),
            directed=self.directed,
        )


class Graph:
    """Immutable CSR-backed graph.

    Use :class:`GraphBuilder`, :meth:`from_edges`, or
    :meth:`from_adjacency` rather than calling the constructor with raw
    edge lists, unless the input is already deduplicated and sorted.

    Attributes
    ----------
    directed:
        Directed graphs store out-adjacency in :meth:`neighbors` and
        in-adjacency in :meth:`in_neighbors`. Undirected graphs store
        each edge once in :attr:`edges` (with ``source <= target``) but
        expose both endpoints as mutual neighbors.
    """

    def __init__(
        self,
        vertices: Sequence[int],
        edges: Sequence[tuple[int, int]],
        directed: bool = False,
    ):
        self.directed = directed
        if not isinstance(vertices, np.ndarray):
            vertices = list(vertices)
        vertex_array = np.asarray(vertices, dtype=np.int64)
        if vertex_array.ndim == 1 and (
            len(vertex_array) < 2 or bool((vertex_array[1:] > vertex_array[:-1]).all())
        ):
            # Already sorted and unique (every generator and builder
            # path) — skip the dedup sort.
            self._vertex_ids = vertex_array
        else:
            self._vertex_ids = np.unique(vertex_array)
        self._index_cache: dict[int, int] | None = None
        self._directed_view: "Graph" | None = None
        self._undirected_view: "Graph" | None = None
        n = len(self._vertex_ids)

        # Vectorized edge processing: map endpoints to dense indices
        # (validating membership), canonicalize undirected edges, and
        # deduplicate through a single integer key per edge.
        if not isinstance(edges, np.ndarray):
            edges = list(edges)
            edge_array = (
                np.asarray(edges, dtype=np.int64).reshape(-1, 2)
                if edges
                else np.empty((0, 2), dtype=np.int64)
            )
        else:
            edge_array = edges.astype(np.int64, copy=False).reshape(-1, 2)
        flat = edge_array.ravel()
        if len(flat) and n == 0:
            source, target = int(edge_array[0, 0]), int(edge_array[0, 1])
            raise ValueError(
                f"edge ({source}, {target}) references an unregistered vertex"
            )
        dense_ids = n > 0 and int(self._vertex_ids[0]) == 0 and int(
            self._vertex_ids[-1]
        ) == n - 1
        if dense_ids:
            # Dense 0..n-1 vertex ids (every generated graph): ids are
            # their own indices, so membership is a range check — no
            # binary search over the id array.
            positions = flat
            if len(flat):
                bad = (flat < 0) | (flat >= n)
                if bad.any():
                    row = int(np.nonzero(bad)[0][0]) // 2
                    source, target = (
                        int(edge_array[row, 0]),
                        int(edge_array[row, 1]),
                    )
                    raise ValueError(
                        f"edge ({source}, {target}) references an "
                        "unregistered vertex"
                    )
        else:
            positions = np.searchsorted(self._vertex_ids, flat)
            if len(flat):
                positions = np.minimum(positions, n - 1)
                bad = self._vertex_ids[positions] != flat
                if bad.any():
                    row = int(np.nonzero(bad)[0][0]) // 2
                    source, target = (
                        int(edge_array[row, 0]),
                        int(edge_array[row, 1]),
                    )
                    raise ValueError(
                        f"edge ({source}, {target}) references an "
                        "unregistered vertex"
                    )
        src_idx = positions[0::2]
        dst_idx = positions[1::2]
        if not directed and len(src_idx):
            src_idx, dst_idx = (
                np.minimum(src_idx, dst_idx),
                np.maximum(src_idx, dst_idx),
            )
        if len(src_idx):
            # Dense indices preserve id order, so deduplicating the
            # combined key also sorts edges by (source, target) id.
            # Sort + run-boundary mask, not np.unique: same sorted
            # result, several times faster on multi-million-edge
            # arrays (np.unique's hash path dominates bulk datagen).
            keys = src_idx * n + dst_idx
            keys.sort()
            keys = keys[np.r_[True, keys[1:] != keys[:-1]]]
            src_idx, dst_idx = np.divmod(keys, n)
        if dense_ids:
            # Ids are their own indices — no gather needed.
            self._edge_list = np.column_stack([src_idx, dst_idx]).reshape(-1, 2)
        else:
            self._edge_list = np.column_stack(
                [self._vertex_ids[src_idx], self._vertex_ids[dst_idx]]
            ).reshape(-1, 2)

        if directed:
            # The dedup above left edges (source, target)-sorted, so
            # the forward CSR needs no sort pass at all.
            self._offsets, self._targets = _csr_from_sorted(n, src_idx, dst_idx)
            self._in_offsets, self._in_targets = _build_csr(n, dst_idx, src_idx)
        else:
            all_src = np.concatenate([src_idx, dst_idx])
            all_dst = np.concatenate([dst_idx, src_idx])
            self._offsets, self._targets = _build_csr(n, all_src, all_dst)
            self._in_offsets, self._in_targets = self._offsets, self._targets

    @property
    def _index_of(self) -> dict[int, int]:
        """Vertex id -> dense index mapping, built on first use."""
        if self._index_cache is None:
            self._index_cache = {
                int(v): i for i, v in enumerate(self._vertex_ids)
            }
        return self._index_cache

    # -- constructors -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        directed: bool = False,
        vertices: Iterable[int] | None = None,
    ) -> "Graph":
        """Build a graph from an edge iterable, deduplicating as needed.

        ``vertices`` may supply additional isolated vertices.
        """
        builder = GraphBuilder(directed=directed)
        if vertices is not None:
            builder.add_vertices(vertices)
        builder.add_edges(edges)
        return builder.build()

    @classmethod
    def from_adjacency(
        cls, adjacency: dict[int, Iterable[int]], directed: bool = False
    ) -> "Graph":
        """Build a graph from ``{vertex: neighbors}`` mapping."""
        builder = GraphBuilder(directed=directed)
        for vertex, neighbors in adjacency.items():
            builder.add_vertex(vertex)
            for neighbor in neighbors:
                builder.add_edge(vertex, neighbor)
        return builder.build()

    # -- basic accessors ----------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of edges (arcs, for directed graphs)."""
        return len(self._edge_list)

    @property
    def vertices(self) -> np.ndarray:
        """Sorted array of vertex identifiers."""
        return self._vertex_ids

    @property
    def edges(self) -> np.ndarray:
        """``(num_edges, 2)`` array of edges.

        For undirected graphs each edge appears once with
        ``source <= target``.
        """
        return self._edge_list

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as Python int pairs."""
        for source, target in self._edge_list:
            yield int(source), int(target)

    def has_vertex(self, vertex: int) -> bool:
        """Whether the vertex id exists in the graph."""
        return int(vertex) in self._index_of

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge exists (directionally, for directed graphs)."""
        si = self._index_of.get(int(source))
        ti = self._index_of.get(int(target))
        if si is None or ti is None:
            return False
        row = self._targets[self._offsets[si] : self._offsets[si + 1]]
        pos = np.searchsorted(row, ti)
        return bool(pos < len(row) and row[pos] == ti)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbors (all neighbors, for undirected graphs).

        Returns vertex identifiers, sorted ascending.
        """
        idx = self._index_of[int(vertex)]
        targets = self._targets[self._offsets[idx] : self._offsets[idx + 1]]
        return self._vertex_ids[targets]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """In-neighbors (same as :meth:`neighbors` for undirected)."""
        idx = self._index_of[int(vertex)]
        targets = self._in_targets[self._in_offsets[idx] : self._in_offsets[idx + 1]]
        return self._vertex_ids[targets]

    def degree(self, vertex: int) -> int:
        """Out-degree (total degree, for undirected graphs)."""
        idx = self._index_of[int(vertex)]
        return int(self._offsets[idx + 1] - self._offsets[idx])

    def in_degree(self, vertex: int) -> int:
        """In-degree (same as degree, for undirected graphs)."""
        idx = self._index_of[int(vertex)]
        return int(self._in_offsets[idx + 1] - self._in_offsets[idx])

    def degrees(self) -> dict[int, int]:
        """Mapping from vertex id to (out-)degree."""
        counts = np.diff(self._offsets)
        return {int(v): int(c) for v, c in zip(self._vertex_ids, counts)}

    def degree_sequence(self) -> np.ndarray:
        """Array of degrees ordered by ascending vertex id."""
        return np.diff(self._offsets)

    # -- vectorized (bulk) accessors -----------------------------------

    def indices_of(self, vertices: Iterable[int]) -> np.ndarray:
        """Map vertex identifiers to dense CSR indices, vectorized.

        The dense index of a vertex is its position in
        :attr:`vertices`; bulk kernels use it to address the CSR
        arrays returned by :meth:`csr`. Raises ``KeyError`` if any id
        is not in the graph.
        """
        if not isinstance(vertices, np.ndarray):
            vertices = list(vertices)
        ids = np.asarray(vertices, dtype=np.int64)
        if len(ids) == 0:
            return np.empty(0, dtype=np.int64)
        if len(self._vertex_ids) == 0:
            raise KeyError(f"vertices not in graph: {ids[:5].tolist()}")
        idx = np.searchsorted(self._vertex_ids, ids)
        idx = np.minimum(idx, len(self._vertex_ids) - 1)
        if not np.array_equal(self._vertex_ids[idx], ids):
            bad = ids[self._vertex_ids[idx] != ids]
            raise KeyError(f"vertices not in graph: {bad[:5].tolist()}")
        return idx

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw out-adjacency CSR arrays ``(offsets, targets)``.

        Both arrays are over *dense indices* (see :meth:`indices_of`)
        and must be treated as read-only; they are shared with the
        graph instance.
        """
        return self._offsets, self._targets

    def out_degrees(self) -> np.ndarray:
        """Vectorized out-degrees ordered by ascending vertex id.

        For undirected graphs this is the total degree. Entry ``i``
        corresponds to ``vertices[i]``, so combined with
        :meth:`indices_of` it replaces per-vertex :meth:`degree` calls
        in hot loops.
        """
        return np.diff(self._offsets)

    def frontier_neighbors(self, frontier: Iterable[int]) -> np.ndarray:
        """Concatenated out-neighbor ids of every frontier vertex.

        The result lists neighbors *with multiplicity*, grouped by
        frontier vertex in the given frontier order (each group sorted
        ascending, like :meth:`neighbors`). One call replaces
        ``len(frontier)`` per-vertex ``neighbors()`` CSR slices — the
        core primitive of the bulk BFS/CONN kernels.
        """
        idx = self.indices_of(frontier)
        starts = self._offsets[idx]
        counts = self._offsets[idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Standard CSR gather: positions[i] walks each slice in turn.
        bounds = np.cumsum(counts)
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - (bounds - counts), counts)
        return self._vertex_ids[self._targets[positions]]

    # -- derived graphs -----------------------------------------------

    def to_undirected(self) -> "Graph":
        """Undirected view: every directed edge becomes undirected.

        The view is computed once and cached — graphs are immutable,
        and engines request the same view repeatedly.
        """
        if not self.directed:
            return self
        if self._undirected_view is None:
            self._undirected_view = Graph(
                self._vertex_ids, self._edge_list, directed=False
            )
        return self._undirected_view

    def to_directed(self) -> "Graph":
        """Directed view: every undirected edge becomes two arcs.

        Cached like :meth:`to_undirected`.
        """
        if self.directed:
            return self
        if self._directed_view is None:
            reversed_edges = self._edge_list[:, ::-1]
            both = np.concatenate([self._edge_list, reversed_edges])
            self._directed_view = Graph(self._vertex_ids, both, directed=True)
        return self._directed_view

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph on the given vertex set."""
        keep = set(int(v) for v in vertices)
        missing = keep.difference(int(v) for v in self._vertex_ids if int(v) in keep)
        if missing:
            raise ValueError(f"vertices not in graph: {sorted(missing)[:5]}")
        edges = [
            (s, t) for s, t in self.iter_edges() if s in keep and t in keep
        ]
        return Graph(sorted(keep), edges, directed=self.directed)

    def relabel(self) -> tuple["Graph", dict[int, int]]:
        """Relabel vertices to ``0..n-1``; returns (graph, old->new map)."""
        mapping = {int(v): i for i, v in enumerate(self._vertex_ids)}
        edges = [(mapping[s], mapping[t]) for s, t in self.iter_edges()]
        return Graph(range(len(mapping)), edges, directed=self.directed), mapping

    # -- persistence ----------------------------------------------------

    def content_key(self) -> str:
        """Stable content hash of the graph (hex sha256 prefix).

        Hashes the canonical representation — directedness, the sorted
        vertex ids, and the deduplicated edge list — so two structurally
        equal graphs (``==``) always share a key. The CSR arrays are
        derived data and excluded.
        """
        digest = hashlib.sha256()
        digest.update(b"directed" if self.directed else b"undirected")
        digest.update(np.ascontiguousarray(self._vertex_ids).tobytes())
        digest.update(np.ascontiguousarray(self._edge_list).tobytes())
        return digest.hexdigest()[:32]

    def save(self, path: str | Path) -> Path:
        """Persist the graph as ``.npy`` arrays under ``path``.

        Writes one ``.npy`` file per CSR/identity array plus a
        ``meta.json``, so :meth:`load` can map the arrays back with
        ``np.load(mmap_mode="r")`` — process-pool workers then share
        the OS page cache instead of each holding a pickled copy.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        arrays = {
            "vertex_ids": self._vertex_ids,
            "edge_list": self._edge_list,
            "offsets": self._offsets,
            "targets": self._targets,
        }
        if self.directed:
            arrays["in_offsets"] = self._in_offsets
            arrays["in_targets"] = self._in_targets
        for name, array in arrays.items():
            np.save(path / f"{name}.npy", np.ascontiguousarray(array))
        meta = {
            "format": GRAPH_FORMAT,
            "directed": self.directed,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "content_key": self.content_key(),
        }
        (path / "meta.json").write_text(json.dumps(meta, indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path, mmap: bool = True) -> "Graph":
        """Load a graph saved by :meth:`save`.

        With ``mmap=True`` (the default) the arrays are memory-mapped
        read-only: loading is O(1) in graph size and concurrent
        processes share physical pages. The constructor is bypassed —
        the saved arrays are already canonical.
        """
        path = Path(path)
        meta = json.loads((path / "meta.json").read_text())
        if meta.get("format") != GRAPH_FORMAT:
            raise ValueError(
                f"unsupported graph format {meta.get('format')!r} at {path}"
            )
        mmap_mode = "r" if mmap else None

        def _read(name: str) -> np.ndarray:
            return np.load(path / f"{name}.npy", mmap_mode=mmap_mode)

        graph = cls.__new__(cls)
        graph.directed = bool(meta["directed"])
        graph._vertex_ids = _read("vertex_ids")
        graph._edge_list = _read("edge_list")
        graph._offsets = _read("offsets")
        graph._targets = _read("targets")
        if graph.directed:
            graph._in_offsets = _read("in_offsets")
            graph._in_targets = _read("in_targets")
        else:
            graph._in_offsets = graph._offsets
            graph._in_targets = graph._targets
        graph._index_cache = None
        graph._directed_view = None
        graph._undirected_view = None
        return graph

    # -- adjacency export ----------------------------------------------

    def adjacency(self) -> dict[int, list[int]]:
        """Full ``{vertex: [neighbors]}`` mapping (out-adjacency)."""
        return {
            int(v): [int(u) for u in self.neighbors(int(v))]
            for v in self._vertex_ids
        }

    # -- dunder --------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self._vertex_ids, other._vertex_ids)
            and np.array_equal(self._edge_list, other._edge_list)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"Graph({kind}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


def _build_csr(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build (offsets, sorted targets) CSR arrays over dense indices."""
    if len(sources) and n <= (1 << 31):
        # The combined key source * n + target encodes the (source,
        # target) lexicographic order in one int64 (dense indices are
        # < n, so no collision; n <= 2^31 rules out overflow). A
        # value sort of the keys then replaces both the two-pass
        # lexsort and the permutation gathers — the keys decode
        # straight back into sorted sources and targets.
        keys = sources * np.int64(n) + targets
        keys.sort()
        sources, targets = np.divmod(keys, n)
    else:
        order = np.lexsort((targets, sources))
        sources = sources[order]
        targets = targets[order]
    return _csr_from_sorted(n, sources, targets)


def _csr_from_sorted(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR arrays when edges are already (source, target)-sorted."""
    counts = np.bincount(sources, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, targets
