"""Core graph data structure.

The :class:`Graph` class is the canonical in-memory representation used
throughout the reproduction: a frozen, CSR-backed (compressed sparse
row) graph with integer vertex identifiers. Graphs are built through
:class:`GraphBuilder` (or the convenience constructors
:meth:`Graph.from_edges` and :meth:`Graph.from_adjacency`) and are
immutable afterwards, which makes it safe to share one graph instance
between the benchmark harness and several simulated platforms.

Vertex identifiers are arbitrary non-negative integers; they do not
need to be dense. Internally vertices are mapped to dense indices so
that adjacency can be stored in two numpy arrays (offsets + targets),
which keeps even multi-million-edge graphs comfortably in memory.

Graphs may optionally carry **edge weights** (one float per edge,
required by the SSSP workload of LDBC Graphalytics). Weights ride
alongside the edge list, survive :meth:`Graph.save`/:meth:`Graph.load`
(on-disk format v2), participate in :meth:`Graph.content_key`, and
propagate through the directed/undirected views. When duplicate edges
are supplied with different weights, the minimum wins — the
shortest-path-relevant value, and a deterministic choice.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "GraphBuilder"]

#: On-disk layout version for :meth:`Graph.save` (unweighted graphs).
GRAPH_FORMAT = "graphalytics-graph/1"
#: On-disk layout version for weighted graphs (adds ``weights.npy``).
#: Unweighted graphs keep writing v1 so existing cache entries stay
#: valid byte for byte.
GRAPH_FORMAT_WEIGHTED = "graphalytics-graph/2"


class GraphBuilder:
    """Mutable accumulator used to construct a :class:`Graph`.

    The builder deduplicates edges and ignores self-loops by default,
    mirroring how Graphalytics preprocesses its datasets (the benchmark
    operates on simple graphs).

    Parameters
    ----------
    directed:
        Whether the resulting graph is directed. In an undirected
        graph, ``add_edge(u, v)`` and ``add_edge(v, u)`` are the same
        edge.
    allow_self_loops:
        Keep self-loops instead of silently dropping them.
    """

    def __init__(self, directed: bool = False, allow_self_loops: bool = False):
        self.directed = directed
        self.allow_self_loops = allow_self_loops
        self._vertices: set[int] = set()
        self._edges: set[tuple[int, int]] = set()
        self._weights: dict[tuple[int, int], float] = {}

    def add_vertex(self, vertex: int) -> None:
        """Register a vertex (possibly isolated)."""
        if vertex < 0:
            raise ValueError(f"vertex ids must be non-negative, got {vertex}")
        self._vertices.add(int(vertex))

    def add_vertices(self, vertices: Iterable[int]) -> None:
        """Register many vertices at once."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(
        self, source: int, target: int, weight: float | None = None
    ) -> bool:
        """Add an edge; returns ``True`` if it was new.

        Self-loops are dropped (returning ``False``) unless the builder
        was created with ``allow_self_loops=True``. When a ``weight``
        is supplied for an edge that already exists, the minimum of the
        two weights is kept (duplicate-edge resolution for weighted
        datasets).
        """
        source = int(source)
        target = int(target)
        if source < 0 or target < 0:
            raise ValueError("vertex ids must be non-negative")
        if source == target and not self.allow_self_loops:
            return False
        self._vertices.add(source)
        self._vertices.add(target)
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        if weight is not None:
            weight = float(weight)
            existing = self._weights.get(key)
            self._weights[key] = (
                weight if existing is None else min(existing, weight)
            )
        if key in self._edges:
            return False
        self._edges.add(key)
        return True

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Add many edges; returns the number of new edges."""
        added = 0
        for source, target in edges:
            if self.add_edge(source, target):
                added += 1
        return added

    def add_weighted_edges(
        self, edges: Iterable[tuple[int, int, float]]
    ) -> int:
        """Add many ``(source, target, weight)`` edges at once."""
        added = 0
        for source, target, weight in edges:
            if self.add_edge(source, target, weight=weight):
                added += 1
        return added

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge is already present in the builder."""
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        return key in self._edges

    def remove_edge(self, source: int, target: int) -> bool:
        """Remove an edge if present; returns ``True`` if removed.

        Vertices stay registered even when their last edge is removed,
        matching the degree-preserving rewiring use case.
        """
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        if key in self._edges:
            self._edges.remove(key)
            return True
        return False

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges (arcs, for directed graphs)."""
        return len(self._edges)

    def build(self) -> "Graph":
        """Freeze the accumulated vertices/edges into a :class:`Graph`."""
        edges = sorted(self._edges)
        weights: list[float] | None = None
        if self._weights:
            missing = [e for e in edges if e not in self._weights]
            if missing:
                raise ValueError(
                    "weighted builder has unweighted edges "
                    f"(e.g. {missing[:3]}); supply a weight for every "
                    "edge or for none"
                )
            weights = [self._weights[e] for e in edges]
        return Graph(
            sorted(self._vertices),
            edges,
            directed=self.directed,
            weights=weights,
        )


class Graph:
    """Immutable CSR-backed graph.

    Use :class:`GraphBuilder`, :meth:`from_edges`, or
    :meth:`from_adjacency` rather than calling the constructor with raw
    edge lists, unless the input is already deduplicated and sorted.

    Attributes
    ----------
    directed:
        Directed graphs store out-adjacency in :meth:`neighbors` and
        in-adjacency in :meth:`in_neighbors`. Undirected graphs store
        each edge once in :attr:`edges` (with ``source <= target``) but
        expose both endpoints as mutual neighbors.
    """

    def __init__(
        self,
        vertices: Sequence[int],
        edges: Sequence[tuple[int, int]],
        directed: bool = False,
        weights: Sequence[float] | None = None,
    ):
        self.directed = directed
        if not isinstance(vertices, np.ndarray):
            vertices = list(vertices)
        vertex_array = np.asarray(vertices, dtype=np.int64)
        if vertex_array.ndim == 1 and (
            len(vertex_array) < 2 or bool((vertex_array[1:] > vertex_array[:-1]).all())
        ):
            # Already sorted and unique (every generator and builder
            # path) — skip the dedup sort.
            self._vertex_ids = vertex_array
        else:
            self._vertex_ids = np.unique(vertex_array)
        self._index_cache: dict[int, int] | None = None
        self._directed_view: "Graph" | None = None
        self._undirected_view: "Graph" | None = None
        self._csr_weight_cache: np.ndarray | None = None
        n = len(self._vertex_ids)

        # Vectorized edge processing: map endpoints to dense indices
        # (validating membership), canonicalize undirected edges, and
        # deduplicate through a single integer key per edge.
        if not isinstance(edges, np.ndarray):
            edges = list(edges)
            edge_array = (
                np.asarray(edges, dtype=np.int64).reshape(-1, 2)
                if edges
                else np.empty((0, 2), dtype=np.int64)
            )
        else:
            edge_array = edges.astype(np.int64, copy=False).reshape(-1, 2)
        weight_array = _validated_weights(weights, len(edge_array))
        flat = edge_array.ravel()
        if len(flat) and n == 0:
            source, target = int(edge_array[0, 0]), int(edge_array[0, 1])
            raise ValueError(
                f"edge ({source}, {target}) references an unregistered vertex"
            )
        dense_ids = n > 0 and int(self._vertex_ids[0]) == 0 and int(
            self._vertex_ids[-1]
        ) == n - 1
        if dense_ids:
            # Dense 0..n-1 vertex ids (every generated graph): ids are
            # their own indices, so membership is a range check — no
            # binary search over the id array.
            positions = flat
            if len(flat):
                bad = (flat < 0) | (flat >= n)
                if bad.any():
                    row = int(np.nonzero(bad)[0][0]) // 2
                    source, target = (
                        int(edge_array[row, 0]),
                        int(edge_array[row, 1]),
                    )
                    raise ValueError(
                        f"edge ({source}, {target}) references an "
                        "unregistered vertex"
                    )
        else:
            positions = np.searchsorted(self._vertex_ids, flat)
            if len(flat):
                positions = np.minimum(positions, n - 1)
                bad = self._vertex_ids[positions] != flat
                if bad.any():
                    row = int(np.nonzero(bad)[0][0]) // 2
                    source, target = (
                        int(edge_array[row, 0]),
                        int(edge_array[row, 1]),
                    )
                    raise ValueError(
                        f"edge ({source}, {target}) references an "
                        "unregistered vertex"
                    )
        src_idx = positions[0::2]
        dst_idx = positions[1::2]
        if not directed and len(src_idx):
            src_idx, dst_idx = (
                np.minimum(src_idx, dst_idx),
                np.maximum(src_idx, dst_idx),
            )
        if len(src_idx):
            # Dense indices preserve id order, so deduplicating the
            # combined key also sorts edges by (source, target) id.
            # Sort + run-boundary mask, not np.unique: same sorted
            # result, several times faster on multi-million-edge
            # arrays (np.unique's hash path dominates bulk datagen).
            keys = src_idx * n + dst_idx
            if weight_array is None:
                keys.sort()
                keys = keys[np.r_[True, keys[1:] != keys[:-1]]]
            else:
                # Weighted dedup keeps the minimum weight per edge:
                # argsort (not an in-place key sort) so weights can be
                # gathered into edge order, then a segmented min.
                order = np.argsort(keys, kind="stable")
                sorted_keys = keys[order]
                boundary = np.r_[
                    True, sorted_keys[1:] != sorted_keys[:-1]
                ]
                starts = np.flatnonzero(boundary)
                weight_array = np.minimum.reduceat(
                    weight_array[order], starts
                )
                keys = sorted_keys[boundary]
            src_idx, dst_idx = np.divmod(keys, n)
        self._weight_list = weight_array
        if dense_ids:
            # Ids are their own indices — no gather needed.
            self._edge_list = np.column_stack([src_idx, dst_idx]).reshape(-1, 2)
        else:
            self._edge_list = np.column_stack(
                [self._vertex_ids[src_idx], self._vertex_ids[dst_idx]]
            ).reshape(-1, 2)

        if directed:
            # The dedup above left edges (source, target)-sorted, so
            # the forward CSR needs no sort pass at all.
            self._offsets, self._targets = _csr_from_sorted(n, src_idx, dst_idx)
            self._in_offsets, self._in_targets = _build_csr(n, dst_idx, src_idx)
        else:
            all_src = np.concatenate([src_idx, dst_idx])
            all_dst = np.concatenate([dst_idx, src_idx])
            self._offsets, self._targets = _build_csr(n, all_src, all_dst)
            self._in_offsets, self._in_targets = self._offsets, self._targets

    @property
    def _index_of(self) -> dict[int, int]:
        """Vertex id -> dense index mapping, built on first use."""
        if self._index_cache is None:
            self._index_cache = {
                int(v): i for i, v in enumerate(self._vertex_ids)
            }
        return self._index_cache

    # -- constructors -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        directed: bool = False,
        vertices: Iterable[int] | None = None,
        weights: Iterable[float] | None = None,
    ) -> "Graph":
        """Build a graph from an edge iterable, deduplicating as needed.

        ``vertices`` may supply additional isolated vertices;
        ``weights`` (parallel to ``edges``) makes the graph weighted.
        """
        builder = GraphBuilder(directed=directed)
        if vertices is not None:
            builder.add_vertices(vertices)
        if weights is not None:
            edge_list = list(edges)
            weight_list = list(weights)
            if len(edge_list) != len(weight_list):
                raise ValueError(
                    f"got {len(weight_list)} weights for "
                    f"{len(edge_list)} edges"
                )
            builder.add_weighted_edges(
                (s, t, w) for (s, t), w in zip(edge_list, weight_list)
            )
        else:
            builder.add_edges(edges)
        return builder.build()

    @classmethod
    def from_adjacency(
        cls, adjacency: dict[int, Iterable[int]], directed: bool = False
    ) -> "Graph":
        """Build a graph from ``{vertex: neighbors}`` mapping."""
        builder = GraphBuilder(directed=directed)
        for vertex, neighbors in adjacency.items():
            builder.add_vertex(vertex)
            for neighbor in neighbors:
                builder.add_edge(vertex, neighbor)
        return builder.build()

    # -- basic accessors ----------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of edges (arcs, for directed graphs)."""
        return len(self._edge_list)

    @property
    def vertices(self) -> np.ndarray:
        """Sorted array of vertex identifiers."""
        return self._vertex_ids

    @property
    def edges(self) -> np.ndarray:
        """``(num_edges, 2)`` array of edges.

        For undirected graphs each edge appears once with
        ``source <= target``.
        """
        return self._edge_list

    @property
    def weights(self) -> np.ndarray | None:
        """Per-edge weights aligned with :attr:`edges`, or ``None``.

        Unweighted graphs (the default) return ``None``; the SSSP
        workload requires a weighted graph.
        """
        return self._weight_list

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries edge weights."""
        return self._weight_list is not None

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as Python int pairs."""
        for source, target in self._edge_list:
            yield int(source), int(target)

    def iter_weighted_edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(source, target, weight)`` triples."""
        if self._weight_list is None:
            raise ValueError("graph has no edge weights")
        for (source, target), weight in zip(
            self._edge_list, self._weight_list
        ):
            yield int(source), int(target), float(weight)

    def has_vertex(self, vertex: int) -> bool:
        """Whether the vertex id exists in the graph."""
        return int(vertex) in self._index_of

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge exists (directionally, for directed graphs)."""
        si = self._index_of.get(int(source))
        ti = self._index_of.get(int(target))
        if si is None or ti is None:
            return False
        row = self._targets[self._offsets[si] : self._offsets[si + 1]]
        pos = np.searchsorted(row, ti)
        return bool(pos < len(row) and row[pos] == ti)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbors (all neighbors, for undirected graphs).

        Returns vertex identifiers, sorted ascending.
        """
        idx = self._index_of[int(vertex)]
        targets = self._targets[self._offsets[idx] : self._offsets[idx + 1]]
        return self._vertex_ids[targets]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """In-neighbors (same as :meth:`neighbors` for undirected)."""
        idx = self._index_of[int(vertex)]
        targets = self._in_targets[self._in_offsets[idx] : self._in_offsets[idx + 1]]
        return self._vertex_ids[targets]

    def degree(self, vertex: int) -> int:
        """Out-degree (total degree, for undirected graphs)."""
        idx = self._index_of[int(vertex)]
        return int(self._offsets[idx + 1] - self._offsets[idx])

    def in_degree(self, vertex: int) -> int:
        """In-degree (same as degree, for undirected graphs)."""
        idx = self._index_of[int(vertex)]
        return int(self._in_offsets[idx + 1] - self._in_offsets[idx])

    def degrees(self) -> dict[int, int]:
        """Mapping from vertex id to (out-)degree."""
        counts = np.diff(self._offsets)
        return {int(v): int(c) for v, c in zip(self._vertex_ids, counts)}

    def degree_sequence(self) -> np.ndarray:
        """Array of degrees ordered by ascending vertex id."""
        return np.diff(self._offsets)

    # -- vectorized (bulk) accessors -----------------------------------

    def indices_of(self, vertices: Iterable[int]) -> np.ndarray:
        """Map vertex identifiers to dense CSR indices, vectorized.

        The dense index of a vertex is its position in
        :attr:`vertices`; bulk kernels use it to address the CSR
        arrays returned by :meth:`csr`. Raises ``KeyError`` if any id
        is not in the graph.
        """
        if not isinstance(vertices, np.ndarray):
            vertices = list(vertices)
        ids = np.asarray(vertices, dtype=np.int64)
        if len(ids) == 0:
            return np.empty(0, dtype=np.int64)
        if len(self._vertex_ids) == 0:
            raise KeyError(f"vertices not in graph: {ids[:5].tolist()}")
        idx = np.searchsorted(self._vertex_ids, ids)
        idx = np.minimum(idx, len(self._vertex_ids) - 1)
        if not np.array_equal(self._vertex_ids[idx], ids):
            bad = ids[self._vertex_ids[idx] != ids]
            raise KeyError(f"vertices not in graph: {bad[:5].tolist()}")
        return idx

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw out-adjacency CSR arrays ``(offsets, targets)``.

        Both arrays are over *dense indices* (see :meth:`indices_of`)
        and must be treated as read-only; they are shared with the
        graph instance.
        """
        return self._offsets, self._targets

    def csr_weights(self) -> np.ndarray:
        """Arc weights aligned with the :meth:`csr` ``targets`` array.

        Entry ``k`` is the weight of the arc stored at ``targets[k]``.
        For undirected graphs each edge contributes its weight to both
        arc copies. Built once and cached (graphs are immutable).
        """
        if self._weight_list is None:
            raise ValueError("graph has no edge weights")
        if self._csr_weight_cache is None:
            src_idx = self.indices_of(self._edge_list[:, 0])
            dst_idx = self.indices_of(self._edge_list[:, 1])
            if self.directed:
                # The edge list is already (source, target)-sorted —
                # exactly the forward CSR order.
                self._csr_weight_cache = np.ascontiguousarray(
                    self._weight_list, dtype=np.float64
                )
            else:
                all_src = np.concatenate([src_idx, dst_idx])
                all_dst = np.concatenate([dst_idx, src_idx])
                all_w = np.concatenate(
                    [self._weight_list, self._weight_list]
                )
                # Mirror _build_csr's (source, target) ordering.
                self._csr_weight_cache = all_w[
                    np.lexsort((all_dst, all_src))
                ]
        return self._csr_weight_cache

    def out_degrees(self) -> np.ndarray:
        """Vectorized out-degrees ordered by ascending vertex id.

        For undirected graphs this is the total degree. Entry ``i``
        corresponds to ``vertices[i]``, so combined with
        :meth:`indices_of` it replaces per-vertex :meth:`degree` calls
        in hot loops.
        """
        return np.diff(self._offsets)

    def frontier_neighbors(self, frontier: Iterable[int]) -> np.ndarray:
        """Concatenated out-neighbor ids of every frontier vertex.

        The result lists neighbors *with multiplicity*, grouped by
        frontier vertex in the given frontier order (each group sorted
        ascending, like :meth:`neighbors`). One call replaces
        ``len(frontier)`` per-vertex ``neighbors()`` CSR slices — the
        core primitive of the bulk BFS/CONN kernels.
        """
        idx = self.indices_of(frontier)
        starts = self._offsets[idx]
        counts = self._offsets[idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Standard CSR gather: positions[i] walks each slice in turn.
        bounds = np.cumsum(counts)
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - (bounds - counts), counts)
        return self._vertex_ids[self._targets[positions]]

    # -- derived graphs -----------------------------------------------

    def to_undirected(self) -> "Graph":
        """Undirected view: every directed edge becomes undirected.

        The view is computed once and cached — graphs are immutable,
        and engines request the same view repeatedly.
        """
        if not self.directed:
            return self
        if self._undirected_view is None:
            self._undirected_view = Graph(
                self._vertex_ids,
                self._edge_list,
                directed=False,
                weights=self._weight_list,
            )
        return self._undirected_view

    def to_directed(self) -> "Graph":
        """Directed view: every undirected edge becomes two arcs.

        Cached like :meth:`to_undirected`.
        """
        if self.directed:
            return self
        if self._directed_view is None:
            reversed_edges = self._edge_list[:, ::-1]
            both = np.concatenate([self._edge_list, reversed_edges])
            both_weights = (
                None
                if self._weight_list is None
                else np.concatenate([self._weight_list, self._weight_list])
            )
            self._directed_view = Graph(
                self._vertex_ids, both, directed=True, weights=both_weights
            )
        return self._directed_view

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph on the given vertex set."""
        keep = set(int(v) for v in vertices)
        missing = keep.difference(int(v) for v in self._vertex_ids if int(v) in keep)
        if missing:
            raise ValueError(f"vertices not in graph: {sorted(missing)[:5]}")
        if self._weight_list is None:
            edges = [
                (s, t) for s, t in self.iter_edges() if s in keep and t in keep
            ]
            return Graph(sorted(keep), edges, directed=self.directed)
        kept = [
            (s, t, w)
            for s, t, w in self.iter_weighted_edges()
            if s in keep and t in keep
        ]
        return Graph(
            sorted(keep),
            [(s, t) for s, t, _ in kept],
            directed=self.directed,
            weights=[w for _, _, w in kept],
        )

    def relabel(self) -> tuple["Graph", dict[int, int]]:
        """Relabel vertices to ``0..n-1``; returns (graph, old->new map)."""
        mapping = {int(v): i for i, v in enumerate(self._vertex_ids)}
        edges = [(mapping[s], mapping[t]) for s, t in self.iter_edges()]
        relabeled = Graph(
            range(len(mapping)),
            edges,
            directed=self.directed,
            weights=self._weight_list,
        )
        return relabeled, mapping

    def with_uniform_weights(self, seed: int = 0) -> "Graph":
        """A structurally identical graph with derived edge weights.

        Weights are a deterministic hash of (seed, source, target)
        mapped into ``[1, 2)`` — positive, reproducible, independent
        of edge order, and stable under relabeling-free copies. This
        is how the benchmark runs SSSP on datasets that ship without
        weights (the Graphalytics datagen equivalent of its
        ``wgt``-annotated edge files).
        """
        if self._weight_list is not None:
            return self
        edges = self._edge_list
        if len(edges):
            # splitmix64-style avalanche over the packed endpoints;
            # vectorized, collision-tolerant (only the 53-bit mantissa
            # fraction matters). uint64 wraparound is the point.
            with np.errstate(over="ignore"):
                mixed = (
                    edges[:, 0].astype(np.uint64)
                    * np.uint64(0x9E3779B97F4A7C15)
                    + edges[:, 1].astype(np.uint64)
                    * np.uint64(0xBF58476D1CE4E5B9)
                    + np.uint64(int(seed) & 0xFFFFFFFFFFFFFFFF)
                    * np.uint64(0x94D049BB133111EB)
                )
                mixed ^= mixed >> np.uint64(31)
                mixed *= np.uint64(0xD6E8FEB86659FD93)
                mixed ^= mixed >> np.uint64(27)
            weights = 1.0 + (mixed >> np.uint64(11)).astype(np.float64) / float(
                1 << 53
            )
        else:
            weights = np.empty(0, dtype=np.float64)
        return Graph(
            self._vertex_ids,
            edges,
            directed=self.directed,
            weights=weights,
        )

    # -- persistence ----------------------------------------------------

    def content_key(self) -> str:
        """Stable content hash of the graph (hex sha256 prefix).

        Hashes the canonical representation — directedness, the sorted
        vertex ids, and the deduplicated edge list — so two structurally
        equal graphs (``==``) always share a key. The CSR arrays are
        derived data and excluded.
        """
        digest = hashlib.sha256()
        digest.update(b"directed" if self.directed else b"undirected")
        digest.update(np.ascontiguousarray(self._vertex_ids).tobytes())
        digest.update(np.ascontiguousarray(self._edge_list).tobytes())
        if self._weight_list is not None:
            # Weighted graphs hash differently from their unweighted
            # skeleton — the DatasetCache must not conflate them.
            digest.update(b"weights")
            digest.update(np.ascontiguousarray(self._weight_list).tobytes())
        return digest.hexdigest()[:32]

    def save(self, path: str | Path) -> Path:
        """Persist the graph as ``.npy`` arrays under ``path``.

        Writes one ``.npy`` file per CSR/identity array plus a
        ``meta.json``, so :meth:`load` can map the arrays back with
        ``np.load(mmap_mode="r")`` — process-pool workers then share
        the OS page cache instead of each holding a pickled copy.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        arrays = {
            "vertex_ids": self._vertex_ids,
            "edge_list": self._edge_list,
            "offsets": self._offsets,
            "targets": self._targets,
        }
        if self.directed:
            arrays["in_offsets"] = self._in_offsets
            arrays["in_targets"] = self._in_targets
        if self._weight_list is not None:
            arrays["weights"] = self._weight_list
        for name, array in arrays.items():
            np.save(path / f"{name}.npy", np.ascontiguousarray(array))
        meta = {
            "format": (
                GRAPH_FORMAT_WEIGHTED
                if self._weight_list is not None
                else GRAPH_FORMAT
            ),
            "directed": self.directed,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "content_key": self.content_key(),
        }
        (path / "meta.json").write_text(json.dumps(meta, indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path, mmap: bool = True) -> "Graph":
        """Load a graph saved by :meth:`save`.

        With ``mmap=True`` (the default) the arrays are memory-mapped
        read-only: loading is O(1) in graph size and concurrent
        processes share physical pages. The constructor is bypassed —
        the saved arrays are already canonical.
        """
        path = Path(path)
        meta = json.loads((path / "meta.json").read_text())
        if meta.get("format") not in (GRAPH_FORMAT, GRAPH_FORMAT_WEIGHTED):
            raise ValueError(
                f"unsupported graph format {meta.get('format')!r} at {path}"
            )
        weighted = meta["format"] == GRAPH_FORMAT_WEIGHTED
        mmap_mode = "r" if mmap else None

        def _read(name: str) -> np.ndarray:
            return np.load(path / f"{name}.npy", mmap_mode=mmap_mode)

        graph = cls.__new__(cls)
        graph.directed = bool(meta["directed"])
        graph._vertex_ids = _read("vertex_ids")
        graph._edge_list = _read("edge_list")
        graph._offsets = _read("offsets")
        graph._targets = _read("targets")
        if graph.directed:
            graph._in_offsets = _read("in_offsets")
            graph._in_targets = _read("in_targets")
        else:
            graph._in_offsets = graph._offsets
            graph._in_targets = graph._targets
        graph._weight_list = _read("weights") if weighted else None
        graph._index_cache = None
        graph._directed_view = None
        graph._undirected_view = None
        graph._csr_weight_cache = None
        return graph

    # -- adjacency export ----------------------------------------------

    def adjacency(self) -> dict[int, list[int]]:
        """Full ``{vertex: [neighbors]}`` mapping (out-adjacency)."""
        return {
            int(v): [int(u) for u in self.neighbors(int(v))]
            for v in self._vertex_ids
        }

    def weighted_adjacency(self) -> dict[int, list[tuple[int, float]]]:
        """``{vertex: [(neighbor, weight)]}`` in :meth:`neighbors` order."""
        weights = self.csr_weights()
        out: dict[int, list[tuple[int, float]]] = {}
        for i, vertex in enumerate(self._vertex_ids):
            start, end = self._offsets[i], self._offsets[i + 1]
            out[int(vertex)] = [
                (int(self._vertex_ids[t]), float(w))
                for t, w in zip(self._targets[start:end], weights[start:end])
            ]
        return out

    # -- dunder --------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if (self._weight_list is None) != (other._weight_list is None):
            return False
        if self._weight_list is not None and not np.array_equal(
            self._weight_list, other._weight_list
        ):
            return False
        return (
            self.directed == other.directed
            and np.array_equal(self._vertex_ids, other._vertex_ids)
            and np.array_equal(self._edge_list, other._edge_list)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        weighted = ", weighted" if self.is_weighted else ""
        return (
            f"Graph({kind}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}{weighted})"
        )


def _validated_weights(
    weights: Sequence[float] | None, num_edges: int
) -> np.ndarray | None:
    """Coerce an edge-weight sequence to float64, enforcing one finite
    positive weight per edge."""
    if weights is None:
        return None
    if not isinstance(weights, np.ndarray):
        weights = list(weights)
    weight_array = np.asarray(weights, dtype=np.float64).ravel()
    if len(weight_array) != num_edges:
        raise ValueError(
            f"got {len(weight_array)} weights for {num_edges} edges"
        )
    if len(weight_array) and not bool(
        np.isfinite(weight_array).all() & (weight_array > 0).all()
    ):
        raise ValueError("edge weights must be finite and positive")
    return weight_array


def _build_csr(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build (offsets, sorted targets) CSR arrays over dense indices."""
    if len(sources) and n <= (1 << 31):
        # The combined key source * n + target encodes the (source,
        # target) lexicographic order in one int64 (dense indices are
        # < n, so no collision; n <= 2^31 rules out overflow). A
        # value sort of the keys then replaces both the two-pass
        # lexsort and the permutation gathers — the keys decode
        # straight back into sorted sources and targets.
        keys = sources * np.int64(n) + targets
        keys.sort()
        sources, targets = np.divmod(keys, n)
    else:
        order = np.lexsort((targets, sources))
        sources = sources[order]
        targets = targets[order]
    return _csr_from_sorted(n, sources, targets)


def _csr_from_sorted(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR arrays when edges are already (source, target)-sorted."""
    counts = np.bincount(sources, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, targets
