"""Core graph data structure.

The :class:`Graph` class is the canonical in-memory representation used
throughout the reproduction: a frozen, CSR-backed (compressed sparse
row) graph with integer vertex identifiers. Graphs are built through
:class:`GraphBuilder` (or the convenience constructors
:meth:`Graph.from_edges` and :meth:`Graph.from_adjacency`) and are
immutable afterwards, which makes it safe to share one graph instance
between the benchmark harness and several simulated platforms.

Vertex identifiers are arbitrary non-negative integers; they do not
need to be dense. Internally vertices are mapped to dense indices so
that adjacency can be stored in two numpy arrays (offsets + targets),
which keeps even multi-million-edge graphs comfortably in memory.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "GraphBuilder"]


class GraphBuilder:
    """Mutable accumulator used to construct a :class:`Graph`.

    The builder deduplicates edges and ignores self-loops by default,
    mirroring how Graphalytics preprocesses its datasets (the benchmark
    operates on simple graphs).

    Parameters
    ----------
    directed:
        Whether the resulting graph is directed. In an undirected
        graph, ``add_edge(u, v)`` and ``add_edge(v, u)`` are the same
        edge.
    allow_self_loops:
        Keep self-loops instead of silently dropping them.
    """

    def __init__(self, directed: bool = False, allow_self_loops: bool = False):
        self.directed = directed
        self.allow_self_loops = allow_self_loops
        self._vertices: set[int] = set()
        self._edges: set[tuple[int, int]] = set()

    def add_vertex(self, vertex: int) -> None:
        """Register a vertex (possibly isolated)."""
        if vertex < 0:
            raise ValueError(f"vertex ids must be non-negative, got {vertex}")
        self._vertices.add(int(vertex))

    def add_vertices(self, vertices: Iterable[int]) -> None:
        """Register many vertices at once."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, source: int, target: int) -> bool:
        """Add an edge; returns ``True`` if it was new.

        Self-loops are dropped (returning ``False``) unless the builder
        was created with ``allow_self_loops=True``.
        """
        source = int(source)
        target = int(target)
        if source < 0 or target < 0:
            raise ValueError("vertex ids must be non-negative")
        if source == target and not self.allow_self_loops:
            return False
        self._vertices.add(source)
        self._vertices.add(target)
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        if key in self._edges:
            return False
        self._edges.add(key)
        return True

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Add many edges; returns the number of new edges."""
        added = 0
        for source, target in edges:
            if self.add_edge(source, target):
                added += 1
        return added

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge is already present in the builder."""
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        return key in self._edges

    def remove_edge(self, source: int, target: int) -> bool:
        """Remove an edge if present; returns ``True`` if removed.

        Vertices stay registered even when their last edge is removed,
        matching the degree-preserving rewiring use case.
        """
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        if key in self._edges:
            self._edges.remove(key)
            return True
        return False

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges (arcs, for directed graphs)."""
        return len(self._edges)

    def build(self) -> "Graph":
        """Freeze the accumulated vertices/edges into a :class:`Graph`."""
        return Graph(
            sorted(self._vertices),
            sorted(self._edges),
            directed=self.directed,
        )


class Graph:
    """Immutable CSR-backed graph.

    Use :class:`GraphBuilder`, :meth:`from_edges`, or
    :meth:`from_adjacency` rather than calling the constructor with raw
    edge lists, unless the input is already deduplicated and sorted.

    Attributes
    ----------
    directed:
        Directed graphs store out-adjacency in :meth:`neighbors` and
        in-adjacency in :meth:`in_neighbors`. Undirected graphs store
        each edge once in :attr:`edges` (with ``source <= target``) but
        expose both endpoints as mutual neighbors.
    """

    def __init__(
        self,
        vertices: Sequence[int],
        edges: Sequence[tuple[int, int]],
        directed: bool = False,
    ):
        self.directed = directed
        self._vertex_ids = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        self._index_of = {int(v): i for i, v in enumerate(self._vertex_ids)}
        n = len(self._vertex_ids)

        seen: set[tuple[int, int]] = set()
        for source, target in edges:
            source, target = int(source), int(target)
            if source not in self._index_of or target not in self._index_of:
                raise ValueError(
                    f"edge ({source}, {target}) references an unregistered vertex"
                )
            key = (source, target)
            if not directed and source > target:
                key = (target, source)
            seen.add(key)
        edge_array = np.asarray(sorted(seen), dtype=np.int64).reshape(-1, 2)
        self._edge_list = edge_array

        # Build CSR adjacency over dense indices.
        if len(edge_array):
            src_idx = np.fromiter(
                (self._index_of[int(s)] for s in edge_array[:, 0]),
                dtype=np.int64,
                count=len(edge_array),
            )
            dst_idx = np.fromiter(
                (self._index_of[int(t)] for t in edge_array[:, 1]),
                dtype=np.int64,
                count=len(edge_array),
            )
        else:
            src_idx = np.empty(0, dtype=np.int64)
            dst_idx = np.empty(0, dtype=np.int64)

        if directed:
            self._offsets, self._targets = _build_csr(n, src_idx, dst_idx)
            self._in_offsets, self._in_targets = _build_csr(n, dst_idx, src_idx)
        else:
            all_src = np.concatenate([src_idx, dst_idx])
            all_dst = np.concatenate([dst_idx, src_idx])
            self._offsets, self._targets = _build_csr(n, all_src, all_dst)
            self._in_offsets, self._in_targets = self._offsets, self._targets

    # -- constructors -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        directed: bool = False,
        vertices: Iterable[int] | None = None,
    ) -> "Graph":
        """Build a graph from an edge iterable, deduplicating as needed.

        ``vertices`` may supply additional isolated vertices.
        """
        builder = GraphBuilder(directed=directed)
        if vertices is not None:
            builder.add_vertices(vertices)
        builder.add_edges(edges)
        return builder.build()

    @classmethod
    def from_adjacency(
        cls, adjacency: dict[int, Iterable[int]], directed: bool = False
    ) -> "Graph":
        """Build a graph from ``{vertex: neighbors}`` mapping."""
        builder = GraphBuilder(directed=directed)
        for vertex, neighbors in adjacency.items():
            builder.add_vertex(vertex)
            for neighbor in neighbors:
                builder.add_edge(vertex, neighbor)
        return builder.build()

    # -- basic accessors ----------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of edges (arcs, for directed graphs)."""
        return len(self._edge_list)

    @property
    def vertices(self) -> np.ndarray:
        """Sorted array of vertex identifiers."""
        return self._vertex_ids

    @property
    def edges(self) -> np.ndarray:
        """``(num_edges, 2)`` array of edges.

        For undirected graphs each edge appears once with
        ``source <= target``.
        """
        return self._edge_list

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as Python int pairs."""
        for source, target in self._edge_list:
            yield int(source), int(target)

    def has_vertex(self, vertex: int) -> bool:
        """Whether the vertex id exists in the graph."""
        return int(vertex) in self._index_of

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge exists (directionally, for directed graphs)."""
        si = self._index_of.get(int(source))
        ti = self._index_of.get(int(target))
        if si is None or ti is None:
            return False
        row = self._targets[self._offsets[si] : self._offsets[si + 1]]
        pos = np.searchsorted(row, ti)
        return bool(pos < len(row) and row[pos] == ti)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbors (all neighbors, for undirected graphs).

        Returns vertex identifiers, sorted ascending.
        """
        idx = self._index_of[int(vertex)]
        targets = self._targets[self._offsets[idx] : self._offsets[idx + 1]]
        return self._vertex_ids[targets]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """In-neighbors (same as :meth:`neighbors` for undirected)."""
        idx = self._index_of[int(vertex)]
        targets = self._in_targets[self._in_offsets[idx] : self._in_offsets[idx + 1]]
        return self._vertex_ids[targets]

    def degree(self, vertex: int) -> int:
        """Out-degree (total degree, for undirected graphs)."""
        idx = self._index_of[int(vertex)]
        return int(self._offsets[idx + 1] - self._offsets[idx])

    def in_degree(self, vertex: int) -> int:
        """In-degree (same as degree, for undirected graphs)."""
        idx = self._index_of[int(vertex)]
        return int(self._in_offsets[idx + 1] - self._in_offsets[idx])

    def degrees(self) -> dict[int, int]:
        """Mapping from vertex id to (out-)degree."""
        counts = np.diff(self._offsets)
        return {int(v): int(c) for v, c in zip(self._vertex_ids, counts)}

    def degree_sequence(self) -> np.ndarray:
        """Array of degrees ordered by ascending vertex id."""
        return np.diff(self._offsets)

    # -- derived graphs -----------------------------------------------

    def to_undirected(self) -> "Graph":
        """Undirected view: every directed edge becomes undirected."""
        if not self.directed:
            return self
        return Graph(self._vertex_ids, self._edge_list, directed=False)

    def to_directed(self) -> "Graph":
        """Directed view: every undirected edge becomes two arcs."""
        if self.directed:
            return self
        reversed_edges = self._edge_list[:, ::-1]
        both = np.concatenate([self._edge_list, reversed_edges])
        return Graph(self._vertex_ids, both, directed=True)

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph on the given vertex set."""
        keep = set(int(v) for v in vertices)
        missing = keep.difference(int(v) for v in self._vertex_ids if int(v) in keep)
        if missing:
            raise ValueError(f"vertices not in graph: {sorted(missing)[:5]}")
        edges = [
            (s, t) for s, t in self.iter_edges() if s in keep and t in keep
        ]
        return Graph(sorted(keep), edges, directed=self.directed)

    def relabel(self) -> tuple["Graph", dict[int, int]]:
        """Relabel vertices to ``0..n-1``; returns (graph, old->new map)."""
        mapping = {int(v): i for i, v in enumerate(self._vertex_ids)}
        edges = [(mapping[s], mapping[t]) for s, t in self.iter_edges()]
        return Graph(range(len(mapping)), edges, directed=self.directed), mapping

    # -- adjacency export ----------------------------------------------

    def adjacency(self) -> dict[int, list[int]]:
        """Full ``{vertex: [neighbors]}`` mapping (out-adjacency)."""
        return {
            int(v): [int(u) for u in self.neighbors(int(v))]
            for v in self._vertex_ids
        }

    # -- dunder --------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self._vertex_ids, other._vertex_ids)
            and np.array_equal(self._edge_list, other._edge_list)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"Graph({kind}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


def _build_csr(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build (offsets, sorted targets) CSR arrays over dense indices."""
    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    counts = np.bincount(sources, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, targets
