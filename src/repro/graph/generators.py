"""Synthetic graph generators.

Provides the generator families the paper references as alternatives
to Datagen: the R-MAT / Kronecker model behind Graph500 workloads,
plus classic random-graph models (Erdős–Rényi, Watts–Strogatz,
Barabási–Albert) used for test fixtures and stand-in datasets.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph, GraphBuilder

__all__ = [
    "rmat_graph",
    "erdos_renyi_graph",
    "watts_strogatz_graph",
    "barabasi_albert_graph",
    "holme_kim_graph",
    "connected_caveman_graph",
    "grid_graph",
]

#: Graph500 reference R-MAT partition probabilities.
GRAPH500_PROBABILITIES = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    probabilities: tuple[float, float, float, float] = GRAPH500_PROBABILITIES,
    seed: int = 0,
    directed: bool = False,
    bulk: bool = True,
) -> Graph:
    """Generate an R-MAT (recursive matrix) graph, Graph500 style.

    Parameters
    ----------
    scale:
        ``2**scale`` vertices. Graph500's scale-23 graph uses
        ``scale=23``; this reproduction runs reduced scales.
    edge_factor:
        Edges generated per vertex (before deduplication); Graph500
        uses 16.
    probabilities:
        The (a, b, c, d) quadrant probabilities of the recursive
        partition; must sum to 1.
    seed:
        Deterministic RNG seed.
    bulk:
        Feed the sampled edge arrays straight into :class:`Graph`
        (vectorized self-loop drop + sort/dedup), which is what makes
        multi-million-edge scales practical; ``bulk=False`` keeps the
        per-edge :class:`GraphBuilder` path. Both produce the
        identical graph.

    Notes
    -----
    Duplicate edges and self-loops produced by the recursive process
    are discarded, as Graphalytics benchmarks simple graphs, so the
    final edge count is slightly below ``edge_factor * 2**scale``.
    """
    a, b, c, d = probabilities
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("R-MAT probabilities must sum to 1")
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_edges = edge_factor * n

    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    # Vectorized recursive descent: at each of `scale` levels, every
    # edge independently picks one of the four quadrants. The
    # quadrant index is the count of partition boundaries (a, a+b,
    # a+b+c) below the draw; its high bit (quadrants c, d — the lower
    # row) is exactly ``draw > a+b``, and its low bit (quadrants b, d
    # — the right column) is the XOR of all three comparisons. Masked
    # in-place adds avoid materializing any int64 temporaries.
    t0, t1, t2 = a, a + b, a + b + c
    # Preallocated scratch: the loop runs `scale` times over
    # multi-million-element arrays, so reusing buffers (ufunc `out=`)
    # instead of allocating six temporaries per level keeps the
    # generator allocation-free and its wall time stable. Filling a
    # preallocated float64 buffer draws the identical stream as
    # ``rng.random(num_edges)``.
    draws = np.empty(num_edges)
    c0 = np.empty(num_edges, dtype=bool)
    c1 = np.empty(num_edges, dtype=bool)
    c2 = np.empty(num_edges, dtype=bool)
    for level in range(scale):
        rng.random(out=draws)
        np.greater(draws, t0, out=c0)
        np.greater(draws, t1, out=c1)
        np.greater(draws, t2, out=c2)
        bit = 1 << (scale - level - 1)
        np.add(sources, bit, out=sources, where=c1)
        np.logical_xor(c0, c1, out=c0)
        np.logical_xor(c0, c2, out=c0)
        np.add(targets, bit, out=targets, where=c0)

    if bulk:
        keep = sources != targets
        return Graph(
            np.arange(n, dtype=np.int64),
            np.column_stack([sources[keep], targets[keep]]),
            directed=directed,
        )
    builder = GraphBuilder(directed=directed)
    builder.add_vertices(range(n))
    builder.add_edges(zip(sources.tolist(), targets.tolist()))
    return builder.build()


def erdos_renyi_graph(n: int, p: float, seed: int = 0, directed: bool = False) -> Graph:
    """G(n, p) random graph with edge probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=directed)
    builder.add_vertices(range(n))
    if directed:
        mask = rng.random((n, n)) < p
        np.fill_diagonal(mask, False)
        sources, targets = np.nonzero(mask)
        builder.add_edges(zip(sources.tolist(), targets.tolist()))
    else:
        sources, targets = np.triu_indices(n, k=1)
        keep = rng.random(len(sources)) < p
        builder.add_edges(zip(sources[keep].tolist(), targets[keep].tolist()))
    return builder.build()


def watts_strogatz_graph(n: int, k: int, p: float, seed: int = 0) -> Graph:
    """Watts–Strogatz small-world graph (high clustering coefficient).

    Each vertex starts connected to its ``k`` nearest ring neighbors
    (``k`` must be even), then each edge is rewired with probability
    ``p`` to a uniformly random target.
    """
    if k % 2 != 0:
        raise ValueError("k must be even")
    if k >= n:
        raise ValueError("k must be < n")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=False)
    builder.add_vertices(range(n))
    for offset in range(1, k // 2 + 1):
        for vertex in range(n):
            target = (vertex + offset) % n
            if rng.random() < p:
                # Rewire to a random non-self, non-duplicate target.
                for _attempt in range(8):
                    candidate = int(rng.integers(n))
                    if candidate != vertex and not builder.has_edge(vertex, candidate):
                        target = candidate
                        break
            builder.add_edge(vertex, target)
    return builder.build()


def connected_caveman_graph(num_cliques: int, clique_size: int) -> Graph:
    """Connected caveman graph: cliques joined in a ring.

    The canonical community-structured graph — the regime where the
    paper's "advanced (e.g., min-cut) graph partitioning methods"
    choke-point remedy pays off most.
    """
    if num_cliques < 2 or clique_size < 2:
        raise ValueError("need >= 2 cliques of size >= 2")
    builder = GraphBuilder(directed=False)
    for clique in range(num_cliques):
        base = clique * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                builder.add_edge(base + i, base + j)
        neighbor_base = ((clique + 1) % num_cliques) * clique_size
        builder.add_edge(base, neighbor_base)
    return builder.build()


def holme_kim_graph(n: int, m: int, triad_probability: float, seed: int = 0) -> Graph:
    """Holme–Kim powerlaw-cluster graph: BA with triad formation.

    Like Barabási–Albert, but after each preferential-attachment link
    to a target ``t``, with probability ``triad_probability`` the next
    link goes to a random neighbor of ``t`` instead — closing a
    triangle. This yields a heavy-tailed degree distribution with a
    *tunable* clustering coefficient, which several Table 1 stand-ins
    need (real web/social graphs combine both properties).
    """
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    if not 0.0 <= triad_probability <= 1.0:
        raise ValueError("triad_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=False)
    builder.add_vertices(range(n))
    repeated: list[int] = list(range(m))
    adjacency: dict[int, list[int]] = {v: [] for v in range(n)}

    def link(a: int, b: int) -> bool:
        if builder.add_edge(a, b):
            adjacency[a].append(b)
            adjacency[b].append(a)
            repeated.append(a)
            repeated.append(b)
            return True
        return False

    for vertex in range(m, n):
        last_target: int | None = None
        links_made = 0
        attempts = 0
        while links_made < m and attempts < 20 * m:
            attempts += 1
            candidate: int | None = None
            if (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < triad_probability
            ):
                # Triad step: befriend a friend of the last target.
                neighbors = adjacency[last_target]
                candidate = neighbors[int(rng.integers(len(neighbors)))]
            else:
                candidate = repeated[int(rng.integers(len(repeated)))]
            if candidate == vertex:
                continue
            if link(vertex, candidate):
                links_made += 1
                last_target = candidate
    return builder.build()


def barabasi_albert_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Barabási–Albert preferential attachment graph.

    Produces a heavy-tailed degree distribution, the shape the paper's
    choke-point discussion ("skewed execution intensity") cares about.
    """
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=False)
    builder.add_vertices(range(n))
    # Repeated-endpoints list implements preferential attachment.
    repeated: list[int] = []
    for seed_vertex in range(m):
        repeated.append(seed_vertex)
    for vertex in range(m, n):
        targets: set[int] = set()
        while len(targets) < m:
            if repeated and rng.random() < 0.9:
                candidate = repeated[int(rng.integers(len(repeated)))]
            else:
                candidate = int(rng.integers(vertex))
            if candidate != vertex:
                targets.add(candidate)
        for target in targets:
            builder.add_edge(vertex, target)
            repeated.append(vertex)
            repeated.append(target)
    return builder.build()


def grid_graph(
    side: int,
    diagonal_probability: float = 0.0,
    seed: int = 0,
    bulk: bool = True,
) -> Graph:
    """2D lattice: the road-network-like graph profile.

    Road networks are the shape the power-law generators cannot
    produce — near-uniform low degree (at most 4 here, plus optional
    sparse diagonals), high diameter (``2*(side-1)`` for the pure
    lattice), and essentially no degree skew. "Revisiting Graph
    Analytics Benchmark" motivates including exactly this profile so
    frontier algorithms are not only measured in the small-diameter
    regime; the ``dataset-shape-bias`` audit rule checks that a suite
    includes at least one such dataset.
    """
    if side < 2:
        raise ValueError("side must be >= 2")
    rng = np.random.default_rng(seed)
    if bulk:
        # Row-major lattice edges in three vectorized families. The
        # diagonal draws replay the scalar path's RNG stream exactly:
        # it consumes one uniform per interior cell in row-major
        # order (and none at all when the probability is zero).
        vertices = np.arange(side * side, dtype=np.int64)
        grid = vertices.reshape(side, side)
        right = grid[:, :-1].ravel()
        down = grid[:-1, :].ravel()
        edge_groups = [
            np.column_stack([right, right + 1]),
            np.column_stack([down, down + side]),
        ]
        if diagonal_probability > 0.0:
            interior = grid[:-1, :-1].ravel()
            keep = rng.random(interior.size) < diagonal_probability
            shortcut = interior[keep]
            edge_groups.append(
                np.column_stack([shortcut, shortcut + side + 1])
            )
        return Graph(vertices, np.concatenate(edge_groups), directed=False)
    builder = GraphBuilder(directed=False)
    builder.add_vertices(range(side * side))
    for row in range(side):
        for column in range(side):
            vertex = row * side + column
            if column + 1 < side:
                builder.add_edge(vertex, vertex + 1)
            if row + 1 < side:
                builder.add_edge(vertex, vertex + side)
            if (
                diagonal_probability > 0.0
                and column + 1 < side
                and row + 1 < side
                and rng.random() < diagonal_probability
            ):
                # Occasional shortcut, like a highway ramp; keeps the
                # profile road-like while breaking perfect regularity.
                builder.add_edge(vertex, vertex + side + 1)
    return builder.build()
