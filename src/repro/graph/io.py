"""Edge-list and vertex-list file formats.

Graphalytics distributes graphs as plain-text vertex and edge files
(one record per line, whitespace separated), mirroring the format the
original harness feeds to platform drivers. Lines starting with ``#``
are comments; blank lines are ignored.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.graph.graph import Graph

__all__ = [
    "read_edge_list",
    "read_vertex_list",
    "write_edge_list",
    "write_vertex_list",
    "iter_edge_lines",
]


def _open_text(path: Path, mode: str):
    """Open plain or gzip-compressed text depending on the suffix."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_edge_lines(path: str | Path) -> Iterator[tuple[int, int]]:
    """Stream (source, target) pairs from an edge-list file."""
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 'source target', got {stripped!r}"
                )
            yield int(parts[0]), int(parts[1])


def read_edge_list(
    path: str | Path,
    directed: bool = False,
    vertex_path: str | Path | None = None,
) -> Graph:
    """Load a graph from an edge-list file.

    Parameters
    ----------
    path:
        Edge file (optionally ``.gz``); one ``source target`` pair per
        line.
    directed:
        Interpret pairs as arcs rather than undirected edges.
    vertex_path:
        Optional vertex file adding isolated vertices not mentioned in
        any edge.
    """
    vertices = read_vertex_list(vertex_path) if vertex_path else None
    return Graph.from_edges(iter_edge_lines(path), directed=directed, vertices=vertices)


def read_vertex_list(path: str | Path) -> list[int]:
    """Load vertex ids from a vertex-list file (one id per line)."""
    path = Path(path)
    vertices: list[int] = []
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                vertices.append(int(stripped.split()[0]))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: expected a vertex id, got {stripped!r}"
                ) from exc
    return vertices


def write_edge_list(graph: Graph, path: str | Path) -> int:
    """Write a graph's edges to a file; returns the edge count.

    Undirected edges are written once, with ``source <= target``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_text(path, "w") as handle:
        for source, target in graph.iter_edges():
            handle.write(f"{source} {target}\n")
            count += 1
    return count


def write_vertex_list(vertices: Iterable[int], path: str | Path) -> int:
    """Write vertex ids, one per line; returns the vertex count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_text(path, "w") as handle:
        for vertex in vertices:
            handle.write(f"{int(vertex)}\n")
            count += 1
    return count
