"""Degree-distribution model fitting.

Section 2.2 of the paper analyzes the degree distributions of real
graphs by fitting Zeta, Geometric, Weibull, and Poisson models and
observing that the best-fitting model varies per graph. This module
provides maximum-likelihood fits for those four models over integer
degree samples, plus AIC-based model selection.

All models are treated as discrete distributions over degrees. The
Weibull model is discretized by binning its continuous CDF onto
integers, which is the standard approach for fitting Weibull shapes to
degree data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize, special, stats

__all__ = [
    "DegreeFit",
    "fit_zeta",
    "fit_geometric",
    "fit_poisson",
    "fit_weibull",
    "fit_degree_distribution",
    "expected_frequencies",
]

_MODELS = ("zeta", "geometric", "poisson", "weibull")


@dataclass(frozen=True)
class DegreeFit:
    """Result of fitting one model to a degree sample.

    Attributes
    ----------
    model:
        One of ``zeta``, ``geometric``, ``poisson``, ``weibull``.
    params:
        Fitted parameters, keyed by name (e.g. ``{"alpha": 1.7}``).
    log_likelihood:
        Total log-likelihood of the sample under the fitted model.
    aic:
        Akaike information criterion (lower is better).
    n:
        Sample size.
    """

    model: str
    params: dict[str, float] = field(default_factory=dict)
    log_likelihood: float = float("-inf")
    aic: float = float("inf")
    n: int = 0

    def pmf(self, degrees: np.ndarray) -> np.ndarray:
        """Model probability mass at the given integer degrees."""
        return _model_pmf(self.model, self.params, np.asarray(degrees))


def _validate_degrees(degrees) -> np.ndarray:
    sample = np.asarray(degrees, dtype=np.int64)
    if sample.size == 0:
        raise ValueError("cannot fit a distribution to an empty degree sample")
    if np.any(sample < 0):
        raise ValueError("degrees must be non-negative")
    return sample


def _model_pmf(model: str, params: dict[str, float], k: np.ndarray) -> np.ndarray:
    k = np.asarray(k, dtype=np.float64)
    if model == "zeta":
        alpha = params["alpha"]
        out = np.zeros_like(k)
        valid = k >= 1
        out[valid] = k[valid] ** (-alpha) / special.zeta(alpha, 1)
        return out
    if model == "geometric":
        p = params["p"]
        out = np.zeros_like(k)
        valid = k >= 1
        out[valid] = (1 - p) ** (k[valid] - 1) * p
        return out
    if model == "poisson":
        return stats.poisson.pmf(k, params["mu"])
    if model == "weibull":
        shape, scale = params["shape"], params["scale"]
        # Discretize: P(K = k) = F(k + 1) - F(k), support k >= 0.
        upper = stats.weibull_min.cdf(k + 1.0, shape, scale=scale)
        lower = stats.weibull_min.cdf(k, shape, scale=scale)
        return np.clip(upper - lower, 0.0, 1.0)
    raise ValueError(f"unknown model {model!r}")


def _finish(model: str, params: dict[str, float], sample: np.ndarray) -> DegreeFit:
    pmf = _model_pmf(model, params, sample)
    with np.errstate(divide="ignore"):
        log_pmf = np.log(pmf)
    log_pmf[~np.isfinite(log_pmf)] = -50.0  # zero-probability penalty
    log_likelihood = float(np.sum(log_pmf))
    aic = 2.0 * len(params) - 2.0 * log_likelihood
    return DegreeFit(
        model=model,
        params=params,
        log_likelihood=log_likelihood,
        aic=aic,
        n=int(sample.size),
    )


def fit_zeta(degrees) -> DegreeFit:
    """MLE fit of the Zeta (discrete power law) model, support k>=1.

    Degrees below 1 are excluded from the likelihood, as the Zeta model
    has no mass there.
    """
    sample = _validate_degrees(degrees)
    positive = sample[sample >= 1]
    if positive.size == 0:
        raise ValueError("zeta model requires degrees >= 1")
    log_sum = float(np.sum(np.log(positive)))
    n = positive.size

    def negative_log_likelihood(alpha: float) -> float:
        if alpha <= 1.0001:
            return np.inf
        return n * np.log(special.zeta(alpha, 1)) + alpha * log_sum

    result = optimize.minimize_scalar(
        negative_log_likelihood, bounds=(1.0001, 10.0), method="bounded"
    )
    return _finish("zeta", {"alpha": float(result.x)}, positive)


def fit_geometric(degrees) -> DegreeFit:
    """MLE fit of the Geometric model (support k>=1): p = 1/mean."""
    sample = _validate_degrees(degrees)
    positive = sample[sample >= 1]
    if positive.size == 0:
        raise ValueError("geometric model requires degrees >= 1")
    p = float(1.0 / np.mean(positive))
    p = min(max(p, 1e-9), 1.0)
    return _finish("geometric", {"p": p}, positive)


def fit_poisson(degrees) -> DegreeFit:
    """MLE fit of the Poisson model: mu = mean degree."""
    sample = _validate_degrees(degrees)
    return _finish("poisson", {"mu": float(np.mean(sample))}, sample)


def fit_weibull(degrees) -> DegreeFit:
    """Fit a discretized Weibull model via continuous MLE on k + 0.5.

    The half-unit shift avoids the zero-support problem for degree 0
    while matching the discretized pmf used for the likelihood.
    """
    sample = _validate_degrees(degrees)
    shifted = sample.astype(np.float64) + 0.5
    shape, _loc, scale = stats.weibull_min.fit(shifted, floc=0.0)
    return _finish("weibull", {"shape": float(shape), "scale": float(scale)}, sample)


def fit_degree_distribution(degrees, models=_MODELS) -> dict[str, DegreeFit]:
    """Fit all requested models; returns ``{model: DegreeFit}``.

    The best model (lowest AIC) can be obtained with::

        fits = fit_degree_distribution(sample)
        best = min(fits.values(), key=lambda f: f.aic)
    """
    fitters = {
        "zeta": fit_zeta,
        "geometric": fit_geometric,
        "poisson": fit_poisson,
        "weibull": fit_weibull,
    }
    unknown = set(models) - set(fitters)
    if unknown:
        raise ValueError(f"unknown models: {sorted(unknown)}")
    fits: dict[str, DegreeFit] = {}
    for model in models:
        try:
            fits[model] = fitters[model](degrees)
        except ValueError:
            # A model whose support excludes the whole sample simply
            # doesn't participate in selection.
            continue
    if not fits:
        raise ValueError("no model could be fitted to the sample")
    return fits


def expected_frequencies(fit: DegreeFit, degrees: np.ndarray) -> np.ndarray:
    """Expected count per degree value, for Figure 1 style comparisons."""
    degrees = np.asarray(degrees)
    return fit.n * fit.pmf(degrees)
