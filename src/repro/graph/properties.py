"""Structural graph properties used throughout the benchmark.

These are the characteristics the paper's Table 1 reports for real
graphs — vertex/edge counts, global clustering coefficient, average
(local) clustering coefficient, and degree assortativity — plus degree
histograms used by the distribution-fitting module.

All functions operate on the undirected view of the graph, matching
how the paper characterizes its datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "GraphCharacteristics",
    "local_clustering_coefficient",
    "average_clustering_coefficient",
    "global_clustering_coefficient",
    "degree_assortativity",
    "degree_histogram",
    "graph_characteristics",
    "count_triangles",
]


@dataclass(frozen=True)
class GraphCharacteristics:
    """One row of the paper's Table 1."""

    name: str
    num_vertices: int
    num_edges: int
    global_clustering: float
    average_clustering: float
    assortativity: float

    def as_row(self) -> tuple:
        """Tuple in Table 1 column order."""
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.global_clustering,
            self.average_clustering,
            self.assortativity,
        )


def _neighbor_sets(graph: Graph) -> dict[int, set[int]]:
    """Per-vertex neighbor sets on the undirected view.

    Uses one bulk :meth:`Graph.frontier_neighbors` CSR gather instead
    of ``num_vertices`` per-vertex ``neighbors()`` slices.
    """
    undirected = graph.to_undirected()
    vertices = undirected.vertices
    flat = undirected.frontier_neighbors(vertices)
    bounds = np.cumsum(undirected.out_degrees())[:-1]
    return {
        int(v): set(chunk.tolist())
        for v, chunk in zip(vertices, np.split(flat, bounds))
    }


def local_clustering_coefficient(graph: Graph, vertex: int) -> float:
    """Fraction of a vertex's neighbor pairs that are connected.

    Vertices with degree < 2 have coefficient 0, following the common
    convention (and networkx).
    """
    undirected = graph.to_undirected()
    neighbors = [int(u) for u in undirected.neighbors(int(vertex))]
    k = len(neighbors)
    if k < 2:
        return 0.0
    neighbor_set = set(neighbors)
    links = 0
    for u in neighbors:
        for w in undirected.neighbors(u):
            w = int(w)
            if w > u and w in neighbor_set:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering_coefficient(graph: Graph) -> float:
    """Mean of local clustering coefficients over all vertices.

    This is the "Avg. CC" column of Table 1 and the statistic the
    STATS algorithm reports.
    """
    undirected = graph.to_undirected()
    if undirected.num_vertices == 0:
        return 0.0
    sets = _neighbor_sets(undirected)
    total = 0.0
    for vertex, neighbors in sets.items():
        k = len(neighbors)
        if k < 2:
            continue
        links = 0
        for u in neighbors:
            # Count each connected neighbor pair once.
            links += sum(1 for w in sets[u] if w > u and w in neighbors)
        total += 2.0 * links / (k * (k - 1))
    return total / undirected.num_vertices


def count_triangles(graph: Graph) -> int:
    """Number of triangles in the undirected view."""
    sets = _neighbor_sets(graph)
    triangles = 0
    for vertex, neighbors in sets.items():
        for u in neighbors:
            if u <= vertex:
                continue
            # Triangles (vertex, u, w) with vertex < u < w counted once.
            triangles += sum(1 for w in sets[u] if w > u and w in neighbors)
    return triangles


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: ``3 * triangles / connected triplets``.

    This is the "Gl. CC" column of Table 1.
    """
    undirected = graph.to_undirected()
    degrees = undirected.degree_sequence()
    triplets = int(np.sum(degrees * (degrees - 1) // 2))
    if triplets == 0:
        return 0.0
    return 3.0 * count_triangles(undirected) / triplets


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of degrees across edges (Newman's r).

    Positive values mean high-degree vertices attach to high-degree
    vertices; social networks are typically positive, web-like graphs
    negative (the "Asrt." column of Table 1). Returns ``nan`` for
    graphs where the correlation is undefined (e.g. regular graphs).
    """
    undirected = graph.to_undirected()
    if undirected.num_edges == 0:
        return float("nan")
    degrees = undirected.out_degrees().astype(np.float64)
    edges = undirected.edges
    # Each undirected edge contributes both orientations, making the
    # correlation symmetric.
    dx = degrees[undirected.indices_of(edges[:, 0])]
    dy = degrees[undirected.indices_of(edges[:, 1])]
    x = np.empty(undirected.num_edges * 2, dtype=np.float64)
    y = np.empty(undirected.num_edges * 2, dtype=np.float64)
    x[0::2], y[0::2] = dx, dy
    x[1::2], y[1::2] = dy, dx
    x_std = np.std(x)
    y_std = np.std(y)
    if x_std == 0 or y_std == 0:
        return float("nan")
    return float(np.mean((x - np.mean(x)) * (y - np.mean(y))) / (x_std * y_std))


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Mapping from degree value to number of vertices with it."""
    degrees = graph.to_undirected().degree_sequence()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def graph_characteristics(graph: Graph, name: str = "") -> GraphCharacteristics:
    """Compute the full Table 1 row for a graph."""
    undirected = graph.to_undirected()
    return GraphCharacteristics(
        name=name,
        num_vertices=undirected.num_vertices,
        num_edges=undirected.num_edges,
        global_clustering=global_clustering_coefficient(undirected),
        average_clustering=average_clustering_coefficient(undirected),
        assortativity=degree_assortativity(undirected),
    )
