"""Graph substrate for the Graphalytics reproduction.

This package provides the in-memory graph representation shared by the
data generator, the reference algorithms, and the simulated platforms,
plus edge-list I/O, synthetic graph generators, structural property
computation (clustering coefficients, assortativity), and degree
distribution fitting.
"""

from repro.graph.graph import Graph, GraphBuilder
from repro.graph.io import (
    read_edge_list,
    read_vertex_list,
    write_edge_list,
    write_vertex_list,
)
from repro.graph.properties import (
    average_clustering_coefficient,
    degree_assortativity,
    degree_histogram,
    global_clustering_coefficient,
    graph_characteristics,
    local_clustering_coefficient,
)
from repro.graph.fitting import (
    DegreeFit,
    fit_degree_distribution,
    fit_geometric,
    fit_poisson,
    fit_weibull,
    fit_zeta,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    rmat_graph,
    watts_strogatz_graph,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "read_edge_list",
    "read_vertex_list",
    "write_edge_list",
    "write_vertex_list",
    "average_clustering_coefficient",
    "degree_assortativity",
    "degree_histogram",
    "global_clustering_coefficient",
    "graph_characteristics",
    "local_clustering_coefficient",
    "DegreeFit",
    "fit_degree_distribution",
    "fit_geometric",
    "fit_poisson",
    "fit_weibull",
    "fit_zeta",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "watts_strogatz_graph",
]
