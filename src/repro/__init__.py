"""Graphalytics reproduction: a big data benchmark for graph-processing platforms.

This package reimplements, in pure Python, the benchmark described in
Capotă et al., *Graphalytics: A Big Data Benchmark for Graph-Processing
Platforms* (2015): the benchmarking harness, the LDBC-style data
generator, the five workload algorithms, and executable simulations of
the four benchmarked platforms (MapReduce, Giraph-style Pregel,
GraphX-style RDD processing, Neo4j-style graph database) plus the
Virtuoso-style column store used in the paper's DBMS experiment.

See ``DESIGN.md`` for the full system inventory and the per-experiment
index mapping paper tables/figures to benchmark modules.
"""

__version__ = "1.0.0"

from repro.api import render_report, run_benchmark

__all__ = ["run_benchmark", "render_report", "__version__"]
