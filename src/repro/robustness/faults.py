"""Deterministic fault injection for the platform simulations.

A :class:`FaultPlan` declares *which* faults to inject (stragglers, a
worker crash at round *k*, seeded message-channel loss) and *when*
they stop (``transient_attempts``); a :class:`FaultInjector` carries
the per-combo state (attempt counter, seeded RNG) and is consulted by
every :class:`~repro.core.cost.CostMeter` the platform drivers build,
which is what makes the hooks uniform across the pregel, gas,
rddgraph, and mapreduce engines — and every other engine that charges
the meter.

Determinism contract: for a fixed plan, the same (platform, graph,
algorithm) combination experiences the same faults at the same rounds
on every run — the RNG is reseeded from ``(plan.seed, attempt)`` at
each attempt, and the engines' charge sequences are themselves
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.robustness.errors import SimulatedMessageLoss, SimulatedWorkerCrash

__all__ = ["FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    Attributes
    ----------
    straggler_workers:
        Workers whose compute runs ``straggler_factor`` times slower.
    straggler_factor:
        Slowdown multiplier for straggler workers (1.0 = no effect).
    crash_worker, crash_round:
        Kill this worker when the engine opens round ``crash_round``
        (rounds are counted over a whole run: 0 is the first round the
        meter opens — for the BSP engines the initialization round).
    message_loss_rate:
        Per-message probability that a *remote* channel drops traffic;
        decided by the seeded RNG, and surfaced as a detected
        :class:`~repro.robustness.errors.SimulatedMessageLoss`.
    seed:
        RNG seed for the message-loss decisions.
    transient_attempts:
        Faults fire only during the first N algorithm executions of a
        combo; 0 means the faults are permanent. A positive value
        marks raised faults *transient*, which is what allows the
        Benchmark Core's bounded retry to succeed.
    """

    straggler_workers: tuple[int, ...] = ()
    straggler_factor: float = 1.0
    crash_worker: int | None = None
    crash_round: int | None = None
    message_loss_rate: float = 0.0
    seed: int = 0
    transient_attempts: int = 0

    def __post_init__(self):
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1.0")
        if not 0.0 <= self.message_loss_rate <= 1.0:
            raise ValueError("message_loss_rate must be in [0, 1]")
        if self.transient_attempts < 0:
            raise ValueError("transient_attempts must be >= 0")
        if (self.crash_round is None) != (self.crash_worker is None):
            raise ValueError(
                "crash_worker and crash_round must be set together"
            )

    @property
    def transient(self) -> bool:
        """Whether faults from this plan allow a retry to succeed."""
        return self.transient_attempts > 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Format: semicolon-separated clauses, each ``kind:key=value,...``::

            straggler:workers=0|3,factor=4
            crash:worker=2,round=5
            msgloss:rate=0.01,seed=7
            transient:attempts=1

        Example: ``--inject "crash:worker=0,round=1;transient:attempts=1"``.
        """
        fields: dict = {}
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, body = clause.partition(":")
            kind = kind.strip().lower()
            options = {}
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed fault option {item!r} in clause {clause!r}"
                    )
                options[key.strip().lower()] = value.strip()
            try:
                if kind == "straggler":
                    fields["straggler_workers"] = tuple(
                        int(w) for w in options.pop("workers").split("|")
                    )
                    fields["straggler_factor"] = float(options.pop("factor", 2.0))
                elif kind == "crash":
                    fields["crash_worker"] = int(options.pop("worker"))
                    fields["crash_round"] = int(options.pop("round"))
                elif kind == "msgloss":
                    fields["message_loss_rate"] = float(options.pop("rate"))
                    fields["seed"] = int(options.pop("seed", 0))
                elif kind == "transient":
                    fields["transient_attempts"] = int(options.pop("attempts", 1))
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except KeyError as missing:
                raise ValueError(
                    f"fault clause {clause!r} is missing option {missing}"
                ) from None
            if options:
                raise ValueError(
                    f"unknown options {sorted(options)} in fault clause "
                    f"{clause!r}"
                )
        return cls(**fields)


class FaultInjector:
    """Per-combo fault state the cost meters consult.

    One injector is created for every (platform, graph, algorithm)
    combination; :meth:`begin_attempt` is called by the platform driver
    API at the start of every algorithm execution, so retries of the
    same combo see the attempt counter advance — which is how
    transient faults stop firing.
    """

    def __init__(self, plan: FaultPlan, platform: str = ""):
        self.plan = plan
        self.platform = platform
        self.attempt = 0
        self._rng = random.Random(plan.seed)

    def begin_attempt(self) -> int:
        """Advance to the next algorithm execution; reseeds the RNG."""
        self.attempt += 1
        self._rng = random.Random((self.plan.seed << 8) ^ self.attempt)
        return self.attempt

    @property
    def armed(self) -> bool:
        """Whether faults fire during the current attempt."""
        if self.plan.transient_attempts == 0:
            return True
        return self.attempt <= self.plan.transient_attempts

    # -- hooks called by CostMeter ------------------------------------

    def on_round_begin(self, round_index: int) -> None:
        """Raise the configured worker crash when its round opens."""
        plan = self.plan
        if (
            self.armed
            and plan.crash_round is not None
            and round_index == plan.crash_round
        ):
            raise SimulatedWorkerCrash(
                self.platform or "platform",
                plan.crash_worker,
                round_index,
                transient=plan.transient,
            )

    def on_messages(
        self, src_worker: int, dst_worker: int, round_index: int, count: int = 1
    ) -> None:
        """Seeded loss decision for remote traffic; local is lossless."""
        rate = self.plan.message_loss_rate
        if not self.armed or rate <= 0.0 or src_worker == dst_worker:
            return
        if count < 1:
            return
        # Probability that at least one of `count` messages is lost;
        # one RNG draw per charge keeps bulk and scalar paths cheap
        # and the decision sequence deterministic.
        loss_probability = 1.0 - (1.0 - rate) ** count
        if self._rng.random() < loss_probability:
            raise SimulatedMessageLoss(
                self.platform or "platform",
                src_worker,
                dst_worker,
                round_index,
                transient=self.plan.transient,
            )

    def straggler_penalty_seconds(
        self,
        ops_per_worker: list[float],
        random_accesses_per_worker: list[float],
        ops_per_second: float,
        random_access_seconds: float,
    ) -> float:
        """Extra compute seconds the slowest straggler adds to a round.

        A straggler performs the same work at ``1/straggler_factor``
        speed; because BSP rounds end at a barrier, the round is
        extended by the *worst* straggler's slowdown.
        """
        plan = self.plan
        if not self.armed or plan.straggler_factor <= 1.0:
            return 0.0
        penalty = 0.0
        for worker in plan.straggler_workers:
            if not 0 <= worker < len(ops_per_worker):
                continue
            base = (
                ops_per_worker[worker] / ops_per_second
                + random_accesses_per_worker[worker] * random_access_seconds
            )
            penalty = max(penalty, (plan.straggler_factor - 1.0) * base)
        return penalty
