"""Per-platform memory-footprint model and the ``--mem-limit`` knob.

The paper's Figures 4/5 report *failures* as first-class results:
Neo4j cannot process graphs larger than one machine's memory, and
GraphX runs out of memory before Giraph does on the same cluster.
This module layers a declarative footprint model over the cost
layer's byte accounting so those outcomes are reproducible:

* :data:`PLATFORM_MEMORY_MODELS` states, per platform, the bytes the
  engines charge per vertex, per undirected edge, and per worker
  (mirroring the constants in each engine — the model *predicts* what
  ``CostMeter.allocate_memory`` will observe);
* :func:`estimate_footprint` turns a graph size into a per-worker
  resident-memory floor;
* :func:`apply_mem_limit` pins a platform's simulated per-worker RAM
  to a configurable budget, so the deterministic cost accounting
  raises a typed :class:`~repro.core.errors.SimulatedOOM` at the same
  allocation — the same superstep — on every run.

Because Neo4j holds the whole record store on one machine while the
distributed platforms spread state over ``num_workers``, and GraphX's
per-edge RDD records are roughly twice Giraph's primitive adjacency,
a single shared ``--mem-limit`` reproduces the paper's qualitative
failure ordering: the graph database fails first, the RDD platform
before the BSP platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph

__all__ = [
    "MemoryModel",
    "PLATFORM_MEMORY_MODELS",
    "FootprintEstimate",
    "estimate_footprint",
    "parse_bytes",
    "apply_mem_limit",
]

_UNITS = {
    "": 1.0,
    "B": 1.0,
    "K": 2 ** 10,
    "M": 2 ** 20,
    "G": 2 ** 30,
    "T": 2 ** 40,
}


def parse_bytes(text: str) -> float:
    """Parse a human byte count: ``"65536"``, ``"64K"``, ``"1.5G"``.

    Suffixes are binary (K=2^10, M=2^20, G=2^30, T=2^40), case
    insensitive, with an optional trailing ``B`` (``"64KB"``).
    """
    cleaned = str(text).strip().upper().replace(" ", "")
    suffix = ""
    if cleaned.endswith("B"):
        cleaned = cleaned[:-1]
    if cleaned and cleaned[-1] in _UNITS and not cleaned[-1].isdigit():
        suffix = cleaned[-1]
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned)
    except ValueError:
        raise ValueError(f"unreadable byte count {text!r}") from None
    if value < 0:
        raise ValueError(f"byte count must be non-negative, got {text!r}")
    return value * _UNITS[suffix]


@dataclass(frozen=True)
class MemoryModel:
    """Resident bytes a platform charges for a loaded graph.

    Attributes
    ----------
    bytes_per_vertex:
        Resident bytes per vertex (object headers, values, indices).
    bytes_per_edge:
        Resident bytes per *undirected* edge (platforms that store
        both arcs fold the factor two in here).
    fixed_bytes_per_worker:
        Graph-independent allocations (e.g. MapReduce's sort buffer).
    distributed:
        Whether the graph state is spread over the cluster's workers;
        single-machine platforms keep everything on one worker, which
        is exactly Neo4j's memory wall.
    """

    bytes_per_vertex: float
    bytes_per_edge: float
    fixed_bytes_per_worker: float = 0.0
    distributed: bool = True


#: The engines' own byte constants, restated per undirected edge.
PLATFORM_MEMORY_MODELS: dict[str, MemoryModel] = {
    # pregel: (VERTEX_BYTES 56 + value 8) per vertex, 2 arcs x 24 B.
    "giraph": MemoryModel(bytes_per_vertex=64.0, bytes_per_edge=48.0),
    # gas: (REPLICA_BYTES 48 + value 8) per vertex, 16 B per edge.
    "graphlab": MemoryModel(bytes_per_vertex=56.0, bytes_per_edge=16.0),
    # rddgraph: 48 B per vertex record, 2 x 48 B per edge record.
    "graphx": MemoryModel(bytes_per_vertex=48.0, bytes_per_edge=96.0),
    # mapreduce: streaming records, but a fixed sort buffer per worker.
    "mapreduce": MemoryModel(
        bytes_per_vertex=24.0,
        bytes_per_edge=48.0,
        fixed_bytes_per_worker=100 * 2 ** 20,
    ),
    # graphdb: 32 B node records + 64 B relationship records, one node.
    "neo4j": MemoryModel(
        bytes_per_vertex=32.0, bytes_per_edge=64.0, distributed=False
    ),
    # columnar: compressed arc columns + 24 B per-vertex state, one node.
    "virtuoso": MemoryModel(
        bytes_per_vertex=24.0, bytes_per_edge=16.0, distributed=False
    ),
    # gpu: 24 B per vertex, 2 arcs x 8 B, one device.
    "medusa": MemoryModel(
        bytes_per_vertex=24.0, bytes_per_edge=16.0, distributed=False
    ),
    # dataflow: 40 B solution entries + 2 arcs x 16 B edge table.
    "stratosphere": MemoryModel(bytes_per_vertex=40.0, bytes_per_edge=32.0),
}


@dataclass(frozen=True)
class FootprintEstimate:
    """Predicted per-worker resident memory for one (platform, graph)."""

    platform: str
    num_vertices: int
    num_edges: int
    num_workers: int
    bytes_per_worker: float

    def fits(self, mem_limit_bytes: float) -> bool:
        """Whether the resident floor fits under a per-worker budget."""
        return self.bytes_per_worker <= mem_limit_bytes


def estimate_footprint(
    platform_name: str, graph: Graph, num_workers: int = 1
) -> FootprintEstimate:
    """Predict a platform's per-worker resident floor for a graph.

    This is the *loaded graph* footprint; message buffers and
    per-round intermediates come on top, so engines can exceed the
    estimate at run time — the estimate is a lower bound, useful for
    choosing a ``--mem-limit`` that separates platforms.
    """
    try:
        model = PLATFORM_MEMORY_MODELS[platform_name]
    except KeyError:
        raise ValueError(
            f"no memory model for platform {platform_name!r}; known: "
            f"{sorted(PLATFORM_MEMORY_MODELS)}"
        ) from None
    undirected = graph.to_undirected()
    total = (
        undirected.num_vertices * model.bytes_per_vertex
        + undirected.num_edges * model.bytes_per_edge
    )
    workers = num_workers if model.distributed else 1
    return FootprintEstimate(
        platform=platform_name,
        num_vertices=undirected.num_vertices,
        num_edges=undirected.num_edges,
        num_workers=workers,
        bytes_per_worker=model.fixed_bytes_per_worker + total / workers,
    )


def apply_mem_limit(platform, mem_limit_bytes: float):
    """Pin a platform's simulated per-worker RAM to a budget.

    Rebinds the driver's (frozen) cluster spec with
    ``memory_bytes_per_worker`` replaced, returning the same platform
    instance. Every ``allocate_memory`` charge is then checked against
    the budget, so exceeding it raises the cost layer's
    ``MemoryBudgetExceeded``, which the driver API converts into a
    typed :class:`~repro.core.errors.SimulatedOOM` — at the same
    superstep on every run, since the charge sequence is deterministic.
    """
    if mem_limit_bytes <= 0:
        raise ValueError("mem limit must be positive")
    platform.cluster = platform.cluster.replace(
        memory_bytes_per_worker=float(mem_limit_bytes)
    )
    return platform
