"""Deterministic failure envelope (robustness subsystem).

Graphalytics treats platform *failures* as first-class benchmark
results — the paper's Figures 4/5 report out-of-memory and timeout
cells alongside runtimes. This package makes those outcomes
reproducible:

* :mod:`repro.robustness.errors` — the typed failure envelope
  (``SimulatedOOM``, ``SimulatedTimeout``, injected-fault types);
* :mod:`repro.robustness.memory` — the per-platform memory-footprint
  model behind ``graphalytics run --mem-limit``;
* :mod:`repro.robustness.faults` — seeded fault injection (stragglers,
  worker crashes, message-channel loss) behind ``--inject``.
"""

from repro.robustness.errors import (
    SimulatedFault,
    SimulatedMessageLoss,
    SimulatedOOM,
    SimulatedTimeout,
    SimulatedWorkerCrash,
)
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.memory import (
    PLATFORM_MEMORY_MODELS,
    FootprintEstimate,
    MemoryModel,
    apply_mem_limit,
    estimate_footprint,
    parse_bytes,
)

__all__ = [
    "SimulatedOOM",
    "SimulatedTimeout",
    "SimulatedFault",
    "SimulatedWorkerCrash",
    "SimulatedMessageLoss",
    "FaultPlan",
    "FaultInjector",
    "MemoryModel",
    "PLATFORM_MEMORY_MODELS",
    "FootprintEstimate",
    "estimate_footprint",
    "parse_bytes",
    "apply_mem_limit",
]
