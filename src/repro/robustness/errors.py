"""Typed failure envelope: the exceptions injected faults raise.

"SoK: The Faults in our Graph Benchmarks" (Mehrotra et al. 2024)
identifies unreported failure behaviour as the leading source of
irreproducible graph-benchmark claims, and the LDBC Graphalytics
specification makes timeout/failure outcomes part of the official
result format. This module gives every simulated failure a *type*:
drivers never raise bare ``Exception``, so the Benchmark Core can
distinguish deterministic platform limits (:class:`SimulatedOOM`,
:class:`SimulatedTimeout`, re-exported from :mod:`repro.core.errors`)
from injected faults, and retry only the transient ones.
"""

from __future__ import annotations

from repro.core.errors import PlatformFailure, SimulatedOOM, SimulatedTimeout

__all__ = [
    "SimulatedOOM",
    "SimulatedTimeout",
    "SimulatedFault",
    "SimulatedWorkerCrash",
    "SimulatedMessageLoss",
]


class SimulatedFault(PlatformFailure):
    """Base class of all injected faults.

    Parameters
    ----------
    platform:
        Name of the platform the fault was injected into.
    reason:
        Failure category for the report (e.g. ``worker-crash``).
    detail:
        Human-readable explanation.
    transient:
        Whether a retry may succeed — faults configured with a bounded
        number of faulty attempts are transient; the Benchmark Core
        retries those (with backoff) and records permanent ones as
        ``FAILED`` cells immediately.
    """

    def __init__(
        self, platform: str, reason: str, detail: str = "", transient: bool = False
    ):
        super().__init__(platform, reason, detail)
        self.transient = transient


class SimulatedWorkerCrash(SimulatedFault):
    """A worker process died at a configured synchronization round."""

    def __init__(
        self, platform: str, worker: int, round_index: int, transient: bool = False
    ):
        self.worker = worker
        self.round_index = round_index
        super().__init__(
            platform,
            "worker-crash",
            f"worker {worker} crashed at round {round_index}",
            transient=transient,
        )


class SimulatedMessageLoss(SimulatedFault):
    """A message channel between two workers dropped traffic.

    The engines detect the loss (as a real BSP runtime would, through
    acknowledgement timeouts) instead of silently computing with an
    incomplete inbox — a lost message therefore fails the run rather
    than corrupting its output.
    """

    def __init__(
        self, platform: str, src_worker: int, dst_worker: int,
        round_index: int, transient: bool = False,
    ):
        self.src_worker = src_worker
        self.dst_worker = dst_worker
        self.round_index = round_index
        super().__init__(
            platform,
            "message-loss",
            f"channel {src_worker}->{dst_worker} dropped traffic at "
            f"round {round_index}",
            transient=transient,
        )
