"""Kernel micro-benchmarks: bulk (numpy) versus scalar execution.

The harness is a *perf* tool, not a correctness tool — wall clocks are
its whole point, so the determinism lint's clock rules are suppressed
where the measurement happens. Correctness rides along anyway: every
timing also checks that the two paths produced the same simulated
seconds, which is the bulk paths' exactness contract (see
``tests/test_bulk_equivalence.py``).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.cost import ClusterSpec
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.generators import rmat_graph
from repro.platforms.gas.driver import GraphLabPlatform
from repro.platforms.mapreduce.driver import MapReducePlatform
from repro.platforms.pregel.driver import GiraphPlatform
from repro.platforms.rddgraph.driver import GraphXPlatform

__all__ = [
    "KernelSpec",
    "KernelTiming",
    "PerfReport",
    "default_kernels",
    "run_perf",
    "write_report",
]

#: Schema tag written into the JSON report.
SCHEMA = "graphalytics-perf/1"
#: Default report location, tracked at the repository root.
DEFAULT_OUTPUT = "BENCH_kernels.json"

#: Platform drivers that accept a ``bulk=`` toggle.
_PLATFORM_CLASSES = {
    "giraph": GiraphPlatform,
    "graphlab": GraphLabPlatform,
    "graphx": GraphXPlatform,
    "mapreduce": MapReducePlatform,
}


@dataclass(frozen=True)
class KernelSpec:
    """One timed kernel: a (platform, algorithm) hot path."""

    name: str
    platform: str
    algorithm: Algorithm


def default_kernels() -> list[KernelSpec]:
    """The tracked kernel set: every vectorized frontier path.

    BFS and CONN are the two algorithms with bulk kernels on every
    converted platform; MapReduce is included for its batched shuffle
    accounting (a bookkeeping win, not a frontier kernel — its
    speedup is correspondingly modest).
    """
    return [
        KernelSpec("pregel-bfs-frontier", "giraph", Algorithm.BFS),
        KernelSpec("pregel-conn-frontier", "giraph", Algorithm.CONN),
        KernelSpec("gas-bfs-frontier", "graphlab", Algorithm.BFS),
        KernelSpec("gas-conn-frontier", "graphlab", Algorithm.CONN),
        KernelSpec("graphx-bfs-frontier", "graphx", Algorithm.BFS),
        KernelSpec("graphx-conn-frontier", "graphx", Algorithm.CONN),
        KernelSpec("mapreduce-bfs-shuffle", "mapreduce", Algorithm.BFS),
    ]


@dataclass
class KernelTiming:
    """Measured result of one kernel."""

    name: str
    platform: str
    algorithm: str
    #: Best-of-repeats wall seconds of the vectorized path.
    bulk_wall_seconds: float
    #: Best-of-repeats wall seconds of the scalar path.
    scalar_wall_seconds: float
    #: ``scalar_wall_seconds / bulk_wall_seconds``.
    speedup: float
    #: Simulated seconds reported by the bulk path.
    simulated_seconds: float
    #: Simulated seconds reported by the scalar path.
    scalar_simulated_seconds: float
    #: Whether the two paths' simulated seconds agree exactly — the
    #: bulk paths' accounting-equivalence contract.
    simulated_match: bool


@dataclass
class PerfReport:
    """One harness invocation: the graph, the knobs, the timings."""

    schema: str
    graph: dict
    repeats: int
    kernels: list[KernelTiming] = field(default_factory=list)

    def to_json(self) -> str:
        """Serialize for ``BENCH_kernels.json``."""
        return json.dumps(asdict(self), indent=2, sort_keys=False) + "\n"

    def lookup(self, name: str) -> KernelTiming | None:
        """The timing for one kernel name, if measured."""
        for timing in self.kernels:
            if timing.name == name:
                return timing
        return None


def _time_run(platform, handle, algorithm, params, repeats: int) -> tuple[float, float]:
    """Best-of-``repeats`` wall seconds plus the simulated seconds."""
    best_wall = float("inf")
    simulated = 0.0
    for _repeat in range(max(repeats, 1)):
        start = time.perf_counter()
        run = platform.run_algorithm(handle, algorithm, params)
        wall = time.perf_counter() - start
        best_wall = min(best_wall, wall)
        simulated = run.simulated_seconds
    return best_wall, simulated


def run_perf(
    scale: int = 13,
    edge_factor: int = 16,
    seed: int = 1,
    repeats: int = 3,
    kernels: list[KernelSpec] | None = None,
    cluster: ClusterSpec | None = None,
    graph=None,
) -> PerfReport:
    """Time every kernel on one R-MAT graph; returns the report.

    The defaults produce the tracked configuration: scale 13 with
    edge factor 16 is ~131k directed edges — the "~100k-edge graph"
    the speedup targets are stated against. Pass ``graph`` to reuse a
    cached instance; it must match the stated generation parameters,
    which are recorded verbatim in the report.
    """
    kernels = default_kernels() if kernels is None else kernels
    cluster = cluster or ClusterSpec.paper_distributed()
    if graph is None:
        graph = rmat_graph(
            scale=scale, edge_factor=edge_factor, seed=seed, directed=True
        )
    graph_name = f"rmat-{scale}-{edge_factor}"
    report = PerfReport(
        schema=SCHEMA,
        graph={
            "generator": "rmat",
            "scale": scale,
            "edge_factor": edge_factor,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        repeats=max(repeats, 1),
    )
    params = AlgorithmParams()
    # The handle does not depend on the bulk toggle, so both paths
    # share one ETL per kernel.
    for spec in kernels:
        platform_cls = _PLATFORM_CLASSES[spec.platform]
        bulk_platform = platform_cls(cluster, bulk=True)
        scalar_platform = platform_cls(cluster, bulk=False)
        handle = bulk_platform.upload_graph(graph_name, graph)
        bulk_wall, bulk_sim = _time_run(
            bulk_platform, handle, spec.algorithm, params, repeats
        )
        scalar_wall, scalar_sim = _time_run(
            scalar_platform, handle, spec.algorithm, params, repeats
        )
        report.kernels.append(
            KernelTiming(
                name=spec.name,
                platform=spec.platform,
                algorithm=spec.algorithm.value,
                bulk_wall_seconds=bulk_wall,
                scalar_wall_seconds=scalar_wall,
                speedup=(scalar_wall / bulk_wall) if bulk_wall > 0 else 0.0,
                simulated_seconds=bulk_sim,
                scalar_simulated_seconds=scalar_sim,
                simulated_match=bulk_sim == scalar_sim,
            )
        )
    return report


def write_report(report: PerfReport, path: str | Path = DEFAULT_OUTPUT) -> Path:
    """Write ``BENCH_kernels.json``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report.to_json(), encoding="utf-8")
    return path
