"""Kernel micro-benchmarks: bulk (numpy) versus scalar execution.

The harness is a *perf* tool, not a correctness tool — wall clocks are
its whole point, so the determinism lint's clock rules are suppressed
where the measurement happens. Correctness rides along anyway: every
timing also checks that the two paths produced the same simulated
seconds (platform kernels) or the identical artifact (micro kernels),
which is the bulk paths' exactness contract (see
``tests/test_bulk_equivalence.py``).

Two kernel kinds are tracked:

* ``platform`` kernels time ``run_algorithm`` with ``bulk=True``
  against ``bulk=False`` on one shared graph handle;
* ``micro`` kernels time data-plane primitives that have no platform
  driver — dataset generation (``datagen-rmat``) and graph
  deserialization (``graph-load``: mmap ``.npy`` load versus the
  pickle round-trip pool workers used to pay).

Every kernel reports best-of-repeats walls plus per-path mean/std
over the repeats, and a ``conservative_speedup`` —
``(scalar_mean - scalar_std) / (bulk_mean + bulk_std)`` — which the
floor checks in ``benchmarks/perf`` use so one lucky (or unlucky)
sample cannot flip a gate.
"""

from __future__ import annotations

import json
import pickle
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.cost import ClusterSpec
from repro.core.stats import RuntimeStats
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.gas.driver import GraphLabPlatform
from repro.platforms.mapreduce.driver import MapReducePlatform
from repro.platforms.pregel.driver import GiraphPlatform
from repro.platforms.rddgraph.driver import GraphXPlatform

__all__ = [
    "KernelSpec",
    "KernelTiming",
    "PerfReport",
    "default_kernels",
    "run_perf",
    "write_report",
]

#: Schema tag written into the JSON report.
SCHEMA = "graphalytics-perf/2"
#: Default report location, tracked at the repository root.
DEFAULT_OUTPUT = "BENCH_kernels.json"

#: Platform drivers that accept a ``bulk=`` toggle.
_PLATFORM_CLASSES = {
    "giraph": GiraphPlatform,
    "graphlab": GraphLabPlatform,
    "graphx": GraphXPlatform,
    "mapreduce": MapReducePlatform,
}


@dataclass(frozen=True)
class KernelSpec:
    """One timed kernel.

    ``kind="platform"`` names a (platform, algorithm) hot path;
    ``kind="micro"`` names a data-plane primitive dispatched by
    ``name`` inside :func:`run_perf` (``algorithm`` is unused).
    """

    name: str
    platform: str
    algorithm: Algorithm
    kind: str = "platform"


def default_kernels() -> list[KernelSpec]:
    """The tracked kernel set.

    BFS, CONN, and PR are the algorithms with bulk kernels on every
    converted platform (PR is the all-active stress case: every vertex
    sends every round, so the vectorized path earns the most). The
    MapReduce kernel times the columnar ``RecordBatch`` executor
    against the per-record scalar engine. The micro kernels cover the
    rest of the data plane: vectorized R-MAT generation and mmap graph
    loading.
    """
    return [
        KernelSpec("pregel-bfs-frontier", "giraph", Algorithm.BFS),
        KernelSpec("pregel-conn-frontier", "giraph", Algorithm.CONN),
        KernelSpec("pregel-pagerank-allactive", "giraph", Algorithm.PR),
        KernelSpec("gas-bfs-frontier", "graphlab", Algorithm.BFS),
        KernelSpec("gas-conn-frontier", "graphlab", Algorithm.CONN),
        KernelSpec("gas-pagerank-allactive", "graphlab", Algorithm.PR),
        KernelSpec("graphx-bfs-frontier", "graphx", Algorithm.BFS),
        KernelSpec("graphx-conn-frontier", "graphx", Algorithm.CONN),
        KernelSpec("graphx-pagerank-allactive", "graphx", Algorithm.PR),
        KernelSpec("mapreduce-bfs-shuffle", "mapreduce", Algorithm.BFS),
        KernelSpec("datagen-rmat", "datagen", Algorithm.BFS, kind="micro"),
        KernelSpec("graph-load", "datasets", Algorithm.BFS, kind="micro"),
    ]


@dataclass
class KernelTiming:
    """Measured result of one kernel."""

    name: str
    platform: str
    algorithm: str
    #: Best-of-repeats wall seconds of the vectorized path.
    bulk_wall_seconds: float
    #: Best-of-repeats wall seconds of the scalar path.
    scalar_wall_seconds: float
    #: ``scalar_wall_seconds / bulk_wall_seconds`` (best-of walls).
    speedup: float
    #: Simulated seconds reported by the bulk path (0.0 for micro
    #: kernels, which have no cost model underneath).
    simulated_seconds: float
    #: Simulated seconds reported by the scalar path.
    scalar_simulated_seconds: float
    #: Whether the two paths agree exactly — equal simulated seconds
    #: for platform kernels, identical artifacts for micro kernels.
    simulated_match: bool
    #: Mean/std of the bulk walls over the repeats (std 0.0 when only
    #: one repeat was taken).
    bulk_wall_mean: float = 0.0
    bulk_wall_std: float = 0.0
    #: Mean/std of the scalar walls over the repeats.
    scalar_wall_mean: float = 0.0
    scalar_wall_std: float = 0.0
    #: ``(scalar_mean - scalar_std) / (bulk_mean + bulk_std)`` — the
    #: variance-discounted speedup the perf floors assert against.
    conservative_speedup: float = 0.0


@dataclass
class PerfReport:
    """One harness invocation: the graph, the knobs, the timings."""

    schema: str
    graph: dict
    repeats: int
    kernels: list[KernelTiming] = field(default_factory=list)

    def to_json(self) -> str:
        """Serialize for ``BENCH_kernels.json``."""
        return json.dumps(asdict(self), indent=2, sort_keys=False) + "\n"

    def lookup(self, name: str) -> KernelTiming | None:
        """The timing for one kernel name, if measured."""
        for timing in self.kernels:
            if timing.name == name:
                return timing
        return None


def _wall_stats(walls: list[float]) -> tuple[float, float, float]:
    """(best, mean, std) of a wall-clock sample list (std 0 for n=1)."""
    stats = RuntimeStats.from_samples(walls)
    std = stats.std if stats is not None and len(walls) > 1 else 0.0
    mean = stats.mean if stats is not None else 0.0
    return min(walls), mean, std


def _conservative_speedup(
    scalar_mean: float, scalar_std: float, bulk_mean: float, bulk_std: float
) -> float:
    """Variance-discounted speedup; 0 when the bands degenerate."""
    denominator = bulk_mean + bulk_std
    numerator = scalar_mean - scalar_std
    if denominator <= 0 or numerator <= 0:
        return 0.0
    return numerator / denominator


def _time_run(
    platform, handle, algorithm, params, repeats: int
) -> tuple[list[float], float]:
    """Wall seconds of every repeat plus the simulated seconds."""
    walls: list[float] = []
    simulated = 0.0
    for _repeat in range(max(repeats, 1)):
        start = time.perf_counter()
        run = platform.run_algorithm(handle, algorithm, params)
        walls.append(time.perf_counter() - start)
        simulated = run.simulated_seconds
    return walls, simulated


def _time_callable(
    fn: Callable[[], object], repeats: int, warmup: bool = False
) -> tuple[list[float], object]:
    """Wall seconds of every repeat plus the last call's result.

    ``warmup`` runs one untimed call first. The vectorized paths pay a
    one-off allocator/page-fault cost on their first multi-million-
    element run that the steady state never sees; without a warmup
    that outlier inflates the reported std and drags the conservative
    speedup below what the kernel actually sustains.
    """
    if warmup:
        fn()
    walls: list[float] = []
    result: object = None
    for _repeat in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        walls.append(time.perf_counter() - start)
    return walls, result


def _micro_timing(
    spec: KernelSpec,
    repeats: int,
    edge_factor: int,
    seed: int,
    datagen_scale: int,
    graph: Graph,
) -> KernelTiming:
    """Time one micro kernel (dispatched by name)."""
    if spec.name == "datagen-rmat":
        # Generation at a scale the per-edge builder can no longer
        # reach comfortably; the match check regenerates through both
        # paths and compares the graphs structurally.
        bulk_walls, bulk_graph = _time_callable(
            lambda: rmat_graph(
                scale=datagen_scale, edge_factor=edge_factor, seed=seed, bulk=True
            ),
            repeats,
            warmup=True,
        )
        scalar_walls, scalar_graph = _time_callable(
            lambda: rmat_graph(
                scale=datagen_scale, edge_factor=edge_factor, seed=seed, bulk=False
            ),
            repeats,
        )
        match = bulk_graph == scalar_graph
    elif spec.name == "graph-load":
        # mmap .npy load versus the pickle round-trip every pool
        # worker used to pay per (platform, graph) pair.
        with tempfile.TemporaryDirectory() as tmp:
            entry = Path(tmp) / "graph"
            graph.save(entry)
            bulk_walls, bulk_graph = _time_callable(
                lambda: Graph.load(entry, mmap=True), repeats, warmup=True
            )
            scalar_walls, scalar_graph = _time_callable(
                lambda: pickle.loads(pickle.dumps(graph)), repeats
            )
            match = bulk_graph == graph and scalar_graph == graph
    else:
        raise ValueError(f"unknown micro kernel {spec.name!r}")
    bulk_best, bulk_mean, bulk_std = _wall_stats(bulk_walls)
    scalar_best, scalar_mean, scalar_std = _wall_stats(scalar_walls)
    return KernelTiming(
        name=spec.name,
        platform=spec.platform,
        algorithm="",
        bulk_wall_seconds=bulk_best,
        scalar_wall_seconds=scalar_best,
        speedup=(scalar_best / bulk_best) if bulk_best > 0 else 0.0,
        simulated_seconds=0.0,
        scalar_simulated_seconds=0.0,
        simulated_match=bool(match),
        bulk_wall_mean=bulk_mean,
        bulk_wall_std=bulk_std,
        scalar_wall_mean=scalar_mean,
        scalar_wall_std=scalar_std,
        conservative_speedup=_conservative_speedup(
            scalar_mean, scalar_std, bulk_mean, bulk_std
        ),
    )


def run_perf(
    scale: int = 13,
    edge_factor: int = 16,
    seed: int = 1,
    repeats: int = 3,
    kernels: list[KernelSpec] | None = None,
    cluster: ClusterSpec | None = None,
    graph=None,
    datagen_scale: int | None = None,
) -> PerfReport:
    """Time every kernel on one R-MAT graph; returns the report.

    The defaults produce the tracked configuration: scale 13 with
    edge factor 16 is ~131k directed edges — the "~100k-edge graph"
    the speedup targets are stated against. Pass ``graph`` to reuse a
    cached instance; it must match the stated generation parameters,
    which are recorded verbatim in the report. ``datagen_scale``
    (default ``scale + 5``) is where the ``datagen-rmat`` micro
    kernel measures — five scales past the platform graph, the
    multi-million-edge regime the vectorized generator exists for.
    """
    kernels = default_kernels() if kernels is None else kernels
    cluster = cluster or ClusterSpec.paper_distributed()
    if datagen_scale is None:
        datagen_scale = scale + 5
    if graph is None:
        graph = rmat_graph(
            scale=scale, edge_factor=edge_factor, seed=seed, directed=True
        )
    graph_name = f"rmat-{scale}-{edge_factor}"
    report = PerfReport(
        schema=SCHEMA,
        graph={
            "generator": "rmat",
            "scale": scale,
            "edge_factor": edge_factor,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "datagen_scale": datagen_scale,
        },
        repeats=max(repeats, 1),
    )
    params = AlgorithmParams()
    # The handle does not depend on the bulk toggle, so both paths
    # share one ETL per kernel.
    for spec in kernels:
        if spec.kind == "micro":
            report.kernels.append(
                _micro_timing(
                    spec, repeats, edge_factor, seed, datagen_scale, graph
                )
            )
            continue
        platform_cls = _PLATFORM_CLASSES[spec.platform]
        bulk_platform = platform_cls(cluster, bulk=True)
        scalar_platform = platform_cls(cluster, bulk=False)
        handle = bulk_platform.upload_graph(graph_name, graph)
        bulk_walls, bulk_sim = _time_run(
            bulk_platform, handle, spec.algorithm, params, repeats
        )
        scalar_walls, scalar_sim = _time_run(
            scalar_platform, handle, spec.algorithm, params, repeats
        )
        bulk_best, bulk_mean, bulk_std = _wall_stats(bulk_walls)
        scalar_best, scalar_mean, scalar_std = _wall_stats(scalar_walls)
        report.kernels.append(
            KernelTiming(
                name=spec.name,
                platform=spec.platform,
                algorithm=spec.algorithm.value,
                bulk_wall_seconds=bulk_best,
                scalar_wall_seconds=scalar_best,
                speedup=(scalar_best / bulk_best) if bulk_best > 0 else 0.0,
                simulated_seconds=bulk_sim,
                scalar_simulated_seconds=scalar_sim,
                simulated_match=bulk_sim == scalar_sim,
                bulk_wall_mean=bulk_mean,
                bulk_wall_std=bulk_std,
                scalar_wall_mean=scalar_mean,
                scalar_wall_std=scalar_std,
                conservative_speedup=_conservative_speedup(
                    scalar_mean, scalar_std, bulk_mean, bulk_std
                ),
            )
        )
    return report


def write_report(report: PerfReport, path: str | Path = DEFAULT_OUTPUT) -> Path:
    """Write ``BENCH_kernels.json``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report.to_json(), encoding="utf-8")
    return path
