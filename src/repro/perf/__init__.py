"""Tracked micro-benchmark harness for the vectorized kernel paths.

Times each platform's hot kernel (the per-round frontier expansion)
twice — once through the numpy bulk path, once through the scalar
per-record path — and records wall-clock seconds, the speedup, and
both paths' simulated seconds (which must match exactly; the bulk
paths are accounting-preserving). Results are written to
``BENCH_kernels.json`` so speedups are tracked in the repository; see
EXPERIMENTS.md for the file format.
"""

from repro.perf.harness import (
    KernelSpec,
    KernelTiming,
    PerfReport,
    default_kernels,
    run_perf,
    write_report,
)

__all__ = [
    "KernelSpec",
    "KernelTiming",
    "PerfReport",
    "default_kernels",
    "run_perf",
    "write_report",
]
