"""Windowed correlated generation of person-knows-person edges.

Datagen generates friendship edges with a *windowed* process: persons
are sorted along a correlation dimension (university, interest, ...),
and each person picks friends from a bounded window of similarly
ranked persons, with probability decaying geometrically with rank
distance. Because similar persons sort near each other, this yields
the correlated, community-rich structure of real social networks
while running in linear time and bounded memory — the property that
lets the real Datagen scale on Hadoop.

The generation is organized exactly like the original's MapReduce
jobs: one *pass* per correlation dimension, each pass split into
independent *blocks* of consecutive sorted persons (windows never
cross block boundaries, as with Datagen's reducer partitions). Each
block's randomness is seeded by ``(seed, dimension, block)``, so the
output is deterministic and identical no matter how many workers the
block runtime schedules — the reproducibility property the paper
calls out ("it is deterministic, guaranteeing reproducible results
and fair comparisons").

The paper notes this correlated process yields an average clustering
coefficient around 0.1 with negative assortativity; the rewiring step
(:mod:`repro.datagen.rewiring`) then adjusts toward targets.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.datagen.persons import Person
from repro.graph.graph import Graph, GraphBuilder

__all__ = ["correlation_dimensions", "KnowsGenerator"]

#: Fraction of each person's target degree budgeted to each
#: correlation dimension, mirroring Datagen's 45/45/10 split between
#: two correlated dimensions and one random dimension.
DIMENSION_SHARES = (0.45, 0.45, 0.10)


def correlation_dimensions(
    degree_homophily: bool = False,
) -> list[Callable[[Person], tuple]]:
    """The three sort keys Datagen uses for edge generation.

    1. study-correlated: university, then birthday;
    2. interest-correlated: interest, then location;
    3. random: a deterministic hash of the person id (uncorrelated) —
       or, with ``degree_homophily``, the person's target degree, so
       similar-degree persons befriend each other (this is how the
       generator produces *positive* assortativity, e.g. for the
       Patents and LiveJournal stand-ins).
    """
    if degree_homophily:
        third = lambda person: (person.target_degree, person.person_id)  # noqa: E731
    else:
        third = lambda person: (  # noqa: E731
            (person.person_id * 2654435761) & 0xFFFFFFFF,
            person.person_id,
        )
    return [
        lambda person: (person.university, person.birthday, person.person_id),
        lambda person: (person.interest, person.location, person.person_id),
        third,
    ]


def _dimension_budget(
    person: Person, dim_index: int, shares: tuple[float, ...] = DIMENSION_SHARES
) -> int:
    """Portion of a person's target degree spent in one dimension."""
    budgets = [int(round(person.target_degree * share)) for share in shares[:-1]]
    budgets.append(max(person.target_degree - sum(budgets), 0))
    return budgets[dim_index]


class KnowsGenerator:
    """Generates the knows-edge set for a set of persons.

    Parameters
    ----------
    window_size:
        Maximum rank distance between friends within a dimension.
    decay:
        Base probability of befriending the next-ranked person;
        decays geometrically with rank distance. Larger values
        concentrate friendships among the most similar persons
        (raising the clustering coefficient).
    block_size:
        Number of consecutive sorted persons per generation block
        (Datagen's reducer partition). Block boundaries — not worker
        count — determine the output.
    seed:
        Determinism seed.
    """

    def __init__(
        self,
        window_size: int = 32,
        decay: float = 0.5,
        block_size: int = 4096,
        seed: int = 0,
        degree_homophily: bool = False,
        dimension_shares: tuple[float, ...] = DIMENSION_SHARES,
    ):
        if len(dimension_shares) != len(DIMENSION_SHARES):
            raise ValueError(
                f"dimension_shares needs {len(DIMENSION_SHARES)} entries"
            )
        if abs(sum(dimension_shares) - 1.0) > 1e-9:
            raise ValueError("dimension_shares must sum to 1")
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.window_size = window_size
        self.decay = decay
        self.block_size = block_size
        self.seed = seed
        self.degree_homophily = degree_homophily
        self.dimension_shares = tuple(dimension_shares)

    @property
    def num_dimensions(self) -> int:
        """Number of correlation dimensions (edge-generation passes)."""
        return len(correlation_dimensions(self.degree_homophily))

    def dimension_blocks(
        self, persons: Sequence[Person], dim_index: int
    ) -> list[list[Person]]:
        """Sort persons along a dimension and split into blocks.

        These blocks are the units of (simulated) parallel work; see
        :class:`repro.datagen.runtime.BlockRuntime`.
        """
        key = correlation_dimensions(self.degree_homophily)[dim_index]
        ordered = sorted(persons, key=key)
        return [
            ordered[start : start + self.block_size]
            for start in range(0, len(ordered), self.block_size)
        ]

    def generate_block(
        self, block: Sequence[Person], dim_index: int, block_index: int
    ) -> list[tuple[int, int]]:
        """Windowed edge generation within one block of one dimension.

        Returns candidate edges (duplicates across dimensions are
        possible and removed when blocks are merged into the final
        graph).
        """
        rng = np.random.default_rng((self.seed, dim_index, block_index))
        budget = {
            p.person_id: _dimension_budget(p, dim_index, self.dimension_shares)
            for p in block
        }
        edges: list[tuple[int, int]] = []
        made: set[tuple[int, int]] = set()
        n = len(block)
        for i, person in enumerate(block):
            pid = person.person_id
            # Hubs get a proportionally wider window: a fixed window
            # would truncate heavy-tailed target degrees (Zeta hubs
            # need hundreds of candidates), distorting the Figure 1
            # distributions. The widening is per-person, so the scan
            # stays linear for the non-hub majority.
            person_window = max(self.window_size, 3 * budget[pid])
            upper = min(i + person_window, n - 1)
            for j in range(i + 1, upper + 1):
                if budget[pid] <= 0:
                    break
                candidate = block[j].person_id
                if budget[candidate] <= 0:
                    continue
                distance = j - i
                # Geometric decay with rank distance, floored by the
                # fill ratio (remaining budget over remaining window)
                # so that high-degree persons meet their target.
                base = self.decay ** (1 + 0.25 * (distance - 1))
                fill = budget[pid] / (upper - j + 1)
                probability = min(1.0, max(base, fill))
                key = (pid, candidate) if pid <= candidate else (candidate, pid)
                if key in made:
                    continue
                if rng.random() < probability:
                    made.add(key)
                    edges.append(key)
                    budget[pid] -= 1
                    budget[candidate] -= 1
        return edges

    def generate(self, persons: Sequence[Person]) -> Graph:
        """Produce the person-knows-person graph (single-machine path).

        Semantically identical to running every block task through
        :class:`~repro.datagen.runtime.BlockRuntime` and merging.
        """
        builder = GraphBuilder(directed=False)
        for person in persons:
            builder.add_vertex(person.person_id)
        for dim_index in range(self.num_dimensions):
            for block_index, block in enumerate(self.dimension_blocks(persons, dim_index)):
                builder.add_edges(self.generate_block(block, dim_index, block_index))
        return builder.build()
