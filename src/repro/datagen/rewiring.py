"""Degree-preserving rewiring toward structural targets.

The paper: "for Graphalytics we plan to extend the current windowed
based edge generation process of Datagen, to allow the generation of
graphs with a target average clustering coefficient, but also to
decide whether the assortativity is positive or negative, while
preserving the degree distribution of the graph. We envision this
process as a post processing step where the graph is iteratively
rewired until the desired values are achieved, in a hill climbing
fashion."

This module implements exactly that: double-edge swaps — which
provably preserve every vertex degree — proposed at random and
accepted only when they reduce a weighted objective combining the
distance to the target average clustering coefficient and a penalty
for the wrong assortativity sign (or distance to a target value).
Both statistics are maintained incrementally, so a swap costs
O(degree) set operations rather than a full recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph

__all__ = ["RewiringResult", "rewire_to_target"]


@dataclass(frozen=True)
class RewiringResult:
    """Outcome of a rewiring run."""

    graph: Graph
    initial_clustering: float
    final_clustering: float
    initial_assortativity: float
    final_assortativity: float
    swaps_attempted: int
    swaps_accepted: int
    converged: bool


class _RewiringState:
    """Mutable adjacency with incremental avg-CC and assortativity.

    Tracks, per vertex, ``closed[v]`` — the number of edges among v's
    neighbors — so the average clustering coefficient is
    ``mean(2 * closed[v] / (deg_v * (deg_v - 1)))``. Because swaps
    preserve degrees, the assortativity denominator is constant and
    only ``sum over edges of deg(u) * deg(v)`` needs maintenance.
    """

    def __init__(self, graph: Graph):
        undirected = graph.to_undirected()
        self.adjacency: dict[int, set[int]] = {
            int(v): set(int(u) for u in undirected.neighbors(int(v)))
            for v in undirected.vertices
        }
        self.edges: list[tuple[int, int]] = list(undirected.iter_edges())
        self.edge_index = {edge: i for i, edge in enumerate(self.edges)}
        self.degree = {v: len(neighbors) for v, neighbors in self.adjacency.items()}
        self.n = len(self.adjacency)
        self.m = len(self.edges)

        # Clustering bookkeeping.
        self.closed: dict[int, int] = {v: 0 for v in self.adjacency}
        for u, v in self.edges:
            common = self.adjacency[u] & self.adjacency[v]
            for w in common:
                self.closed[w] += 1
        self._inv_pairs = {
            v: (2.0 / (d * (d - 1)) if d >= 2 else 0.0)
            for v, d in self.degree.items()
        }
        self.cc_sum = sum(
            self.closed[v] * self._inv_pairs[v] for v in self.adjacency
        )

        # Assortativity bookkeeping (degrees are invariant under swaps).
        degrees = np.array([self.degree[v] for v in self.adjacency], dtype=np.float64)
        m = float(self.m) if self.m else 1.0
        self.sum_dd = float(
            sum(self.degree[u] * self.degree[v] for u, v in self.edges)
        )
        sum_d2 = float(np.sum(degrees ** 2))
        sum_d3 = float(np.sum(degrees ** 3))
        self._assort_mean = sum_d2 / (2.0 * m)
        self._assort_var = sum_d3 / (2.0 * m) - self._assort_mean ** 2

    # -- statistics ----------------------------------------------------

    def average_clustering(self) -> float:
        """Current average clustering coefficient."""
        return self.cc_sum / self.n if self.n else 0.0

    def assortativity(self) -> float:
        """Current degree assortativity (nan if undefined)."""
        if self.m == 0 or self._assort_var <= 0:
            return float("nan")
        return (self.sum_dd / self.m - self._assort_mean ** 2) / self._assort_var

    # -- incremental edge operations ------------------------------------

    def _delta_remove(self, u: int, v: int) -> float:
        """Change in cc_sum if edge (u, v) were removed (no mutation)."""
        common = self.adjacency[u] & self.adjacency[v]
        delta = -len(common) * (self._inv_pairs[u] + self._inv_pairs[v])
        for w in common:
            delta -= self._inv_pairs[w]
        return delta

    def _delta_add(self, u: int, v: int) -> float:
        """Change in cc_sum if edge (u, v) were added (no mutation)."""
        common = self.adjacency[u] & self.adjacency[v]
        delta = len(common) * (self._inv_pairs[u] + self._inv_pairs[v])
        for w in common:
            delta += self._inv_pairs[w]
        return delta

    def remove_edge(self, u: int, v: int) -> None:
        """Remove an edge, updating both statistics incrementally."""
        self.cc_sum += self._delta_remove(u, v)
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        self.sum_dd -= self.degree[u] * self.degree[v]
        key = (u, v) if u <= v else (v, u)
        index = self.edge_index.pop(key)
        last = self.edges[-1]
        self.edges[index] = last
        self.edges.pop()
        if last != key:
            self.edge_index[last] = index

    def add_edge(self, u: int, v: int) -> None:
        """Add an edge, updating both statistics incrementally."""
        self.cc_sum += self._delta_add(u, v)
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        self.sum_dd += self.degree[u] * self.degree[v]
        key = (u, v) if u <= v else (v, u)
        self.edge_index[key] = len(self.edges)
        self.edges.append(key)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge is currently present."""
        return v in self.adjacency[u]

    def to_graph(self) -> Graph:
        """Freeze the current adjacency into an immutable Graph."""
        return Graph(sorted(self.adjacency), self.edges, directed=False)


def _objective(
    clustering: float,
    assortativity: float,
    target_clustering: float | None,
    target_assortativity: float | None,
    assortativity_sign: int,
) -> float:
    value = 0.0
    if target_clustering is not None:
        value += abs(clustering - target_clustering)
    if target_assortativity is not None:
        value += abs(assortativity - target_assortativity)
    elif assortativity_sign:
        # Penalize the wrong sign; a margin of 0.02 avoids hovering at 0.
        if assortativity_sign > 0:
            value += max(0.0, 0.02 - assortativity)
        else:
            value += max(0.0, assortativity + 0.02)
    return value


def rewire_to_target(
    graph: Graph,
    target_clustering: float | None = None,
    target_assortativity: float | None = None,
    assortativity_sign: int = 0,
    max_swaps: int = 20000,
    tolerance: float = 0.005,
    seed: int = 0,
) -> RewiringResult:
    """Hill-climb the graph toward structural targets via edge swaps.

    Parameters
    ----------
    graph:
        Input graph (treated as undirected). Never mutated; a rewired
        copy is returned.
    target_clustering:
        Desired average clustering coefficient, or ``None`` to leave
        clustering unconstrained.
    target_assortativity:
        Desired assortativity value; overrides ``assortativity_sign``.
    assortativity_sign:
        +1 / -1 to request a positive / negative assortativity without
        pinning a value; 0 to leave it unconstrained.
    max_swaps:
        Maximum number of proposed double-edge swaps.
    tolerance:
        Stop early once the objective falls below this value.
    seed:
        Determinism seed.

    Returns
    -------
    RewiringResult
        The rewired graph plus before/after statistics. The degree of
        every vertex is identical to the input graph's (the defining
        invariant of double-edge swaps; property-tested).
    """
    if target_clustering is not None and not 0.0 <= target_clustering <= 1.0:
        raise ValueError("target_clustering must be in [0, 1]")
    if assortativity_sign not in (-1, 0, 1):
        raise ValueError("assortativity_sign must be -1, 0, or +1")
    state = _RewiringState(graph)
    initial_cc = state.average_clustering()
    initial_assort = state.assortativity()
    rng = np.random.default_rng(seed)

    best = _objective(initial_cc, initial_assort, target_clustering,
                      target_assortativity, assortativity_sign)
    attempted = accepted = 0
    converged = best <= tolerance
    while attempted < max_swaps and not converged and state.m >= 2:
        attempted += 1
        i, j = rng.integers(0, state.m, size=2)
        if i == j:
            continue
        a, b = state.edges[int(i)]
        c, d = state.edges[int(j)]
        # Randomly choose one of the two swap orientations.
        if rng.random() < 0.5:
            new_edges = ((a, d), (c, b))
        else:
            new_edges = ((a, c), (b, d))
        (p, q), (r, s) = new_edges
        if len({a, b, c, d}) < 4:
            continue
        if state.has_edge(p, q) or state.has_edge(r, s):
            continue
        state.remove_edge(a, b)
        state.remove_edge(c, d)
        state.add_edge(p, q)
        state.add_edge(r, s)
        candidate = _objective(
            state.average_clustering(), state.assortativity(),
            target_clustering, target_assortativity, assortativity_sign,
        )
        if candidate < best:
            best = candidate
            accepted += 1
            converged = best <= tolerance
        else:
            # Revert: hill climbing only keeps improving moves.
            state.remove_edge(p, q)
            state.remove_edge(r, s)
            state.add_edge(a, b)
            state.add_edge(c, d)

    return RewiringResult(
        graph=state.to_graph(),
        initial_clustering=initial_cc,
        final_clustering=state.average_clustering(),
        initial_assortativity=initial_assort,
        final_assortativity=state.assortativity(),
        swaps_attempted=attempted,
        swaps_accepted=accepted,
        converged=converged,
    )
