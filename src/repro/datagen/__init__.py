"""LDBC SNB Datagen-style social network generator.

Section 2.2 of the paper proposes generating Graphalytics datasets
with the LDBC Social Network Benchmark data generator (Datagen, an
evolution of S3G2), extended with:

* pluggable degree distributions (Facebook-like, Zeta, Geometric, and
  empirical) — see :mod:`repro.datagen.distributions`;
* structural post-processing toward a target average clustering
  coefficient and assortativity sign, via degree-preserving
  hill-climbing rewiring — see :mod:`repro.datagen.rewiring`;
* a deterministic, block-parallel runtime with a hardware cost model
  reproducing the paper's cluster-vs-single-node scalability study
  (Figure 3) — see :mod:`repro.datagen.runtime`.

Only the person-knows-person projection of the social network is
generated, exactly as the paper does for Graphalytics.
"""

from repro.datagen.distributions import (
    DegreeDistribution,
    EmpiricalDistribution,
    FacebookDistribution,
    GeometricDistribution,
    WeibullDistribution,
    ZetaDistribution,
    distribution_from_name,
)
from repro.datagen.persons import Person, generate_persons
from repro.datagen.knows import KnowsGenerator, correlation_dimensions
from repro.datagen.rewiring import RewiringResult, rewire_to_target
from repro.datagen.runtime import (
    CLUSTER_4_NODES,
    SINGLE_NODE,
    BlockRuntime,
    GenerationReport,
    HardwareProfile,
    estimate_generation_time,
)
from repro.datagen.datagen import Datagen, DatagenConfig

__all__ = [
    "DegreeDistribution",
    "EmpiricalDistribution",
    "FacebookDistribution",
    "GeometricDistribution",
    "WeibullDistribution",
    "ZetaDistribution",
    "distribution_from_name",
    "Person",
    "generate_persons",
    "KnowsGenerator",
    "correlation_dimensions",
    "RewiringResult",
    "rewire_to_target",
    "BlockRuntime",
    "GenerationReport",
    "HardwareProfile",
    "SINGLE_NODE",
    "CLUSTER_4_NODES",
    "estimate_generation_time",
    "Datagen",
    "DatagenConfig",
]
