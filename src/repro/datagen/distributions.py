"""Pluggable degree distributions for Datagen.

The paper: "In its current version, Datagen supports only a single
distribution following that observed by the engineers of Facebook.
[...] we have extended Datagen with the capability to dynamically
reproduce different distributions by means of plugins. We have already
implemented those for the Zeta and Geometric distribution models [...]
Furthermore, for those graphs whose distributions cannot be
theoretically modeled, we have implemented a plugin to feed Datagen
with empirical data."

Each plugin deterministically assigns a *target degree* to every
person. The Figure 1 experiment verifies that graphs generated from
the Zeta(alpha=1.7) and Geometric(p=0.12) plugins reproduce the
theoretical frequency curves.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np
from scipy import special

__all__ = [
    "DegreeDistribution",
    "FacebookDistribution",
    "ZetaDistribution",
    "GeometricDistribution",
    "WeibullDistribution",
    "EmpiricalDistribution",
    "distribution_from_name",
]


class DegreeDistribution(abc.ABC):
    """Plugin interface: assigns target degrees to persons."""

    #: Registry name used in configuration files.
    name: str = ""

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` target degrees (integers >= 0)."""

    def mean(self) -> float:
        """Theoretical mean degree, if finite; ``nan`` otherwise."""
        return float("nan")

    def expected_pmf(self, degrees: np.ndarray) -> np.ndarray:
        """Theoretical P(degree = k); zero outside the support.

        Used by the Figure 1 comparison of generated frequencies
        against the model curve. Subclasses without a closed form may
        leave the default (all zeros).
        """
        return np.zeros_like(np.asarray(degrees, dtype=np.float64))


class ZetaDistribution(DegreeDistribution):
    """Discrete power law: P(k) ∝ k^-alpha, support k >= 1.

    The paper's Figure 1 uses alpha = 1.7. Degrees are capped at
    ``max_degree`` to keep generated graphs processable (the real
    Datagen similarly bounds the friend count).
    """

    name = "zeta"

    def __init__(self, alpha: float = 1.7, max_degree: int = 1000):
        if alpha <= 1.0:
            raise ValueError("zeta exponent must be > 1")
        if max_degree < 1:
            raise ValueError("max_degree must be >= 1")
        self.alpha = alpha
        self.max_degree = max_degree
        support = np.arange(1, max_degree + 1, dtype=np.float64)
        weights = support ** (-alpha)
        self._support = support.astype(np.int64)
        self._pmf = weights / np.sum(weights)
        self._cdf = np.cumsum(self._pmf)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw target degrees (see :class:`DegreeDistribution`)."""
        draws = rng.random(n)
        return self._support[np.searchsorted(self._cdf, draws)]

    def mean(self) -> float:
        """Theoretical mean degree."""
        return float(np.sum(self._support * self._pmf))

    def expected_pmf(self, degrees: np.ndarray) -> np.ndarray:
        """Theoretical P(degree = k) on the support."""
        degrees = np.asarray(degrees, dtype=np.float64)
        out = np.zeros_like(degrees)
        valid = (degrees >= 1) & (degrees <= self.max_degree)
        # Use the untruncated form for comparison, as the paper plots
        # the theoretical Zeta curve.
        out[valid] = degrees[valid] ** (-self.alpha) / special.zeta(self.alpha, 1)
        return out


class GeometricDistribution(DegreeDistribution):
    """Geometric degrees: P(k) = (1-p)^(k-1) p, support k >= 1.

    The paper's Figure 1 uses p = 0.12.
    """

    name = "geometric"

    def __init__(self, p: float = 0.12):
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        self.p = p

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw target degrees (see :class:`DegreeDistribution`)."""
        return rng.geometric(self.p, size=n).astype(np.int64)

    def mean(self) -> float:
        """Theoretical mean degree."""
        return 1.0 / self.p

    def expected_pmf(self, degrees: np.ndarray) -> np.ndarray:
        """Theoretical P(degree = k) on the support."""
        degrees = np.asarray(degrees, dtype=np.float64)
        out = np.zeros_like(degrees)
        valid = degrees >= 1
        out[valid] = (1 - self.p) ** (degrees[valid] - 1) * self.p
        return out


class FacebookDistribution(DegreeDistribution):
    """Datagen's default: the Facebook-like degree distribution.

    Ugander et al. (*The anatomy of the Facebook social graph*, 2011)
    report a right-skewed distribution with a heavy-but-bounded tail.
    We model it as a discretized log-normal, parameterized by its
    median degree, which matches the published shape closely enough
    for benchmarking purposes and — like the original — scales the
    typical degree with network size via ``median_degree``.
    """

    name = "facebook"

    def __init__(self, median_degree: float = 30.0, sigma: float = 0.9,
                 max_degree: int = 5000):
        if median_degree <= 0:
            raise ValueError("median_degree must be positive")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.median_degree = median_degree
        self.sigma = sigma
        self.max_degree = max_degree

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw target degrees (see :class:`DegreeDistribution`)."""
        draws = rng.lognormal(mean=np.log(self.median_degree), sigma=self.sigma, size=n)
        degrees = np.clip(np.rint(draws), 1, self.max_degree)
        return degrees.astype(np.int64)

    def mean(self) -> float:
        """Theoretical mean degree."""
        return float(self.median_degree * np.exp(self.sigma ** 2 / 2.0))


class WeibullDistribution(DegreeDistribution):
    """Discretized Weibull degrees, support k >= 1.

    The paper fits Weibull (next to Zeta, Geometric, Poisson) to real
    degree distributions and plans more plugins "as more real graphs
    are analysed"; this plugin closes the loop — a graph whose degrees
    fit Weibull best can be regenerated from the fitted parameters.
    """

    name = "weibull"

    def __init__(self, shape: float = 1.0, scale: float = 10.0):
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        self.shape = shape
        self.scale = scale

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw target degrees (see :class:`DegreeDistribution`)."""
        draws = self.scale * rng.weibull(self.shape, size=n)
        return np.maximum(np.rint(draws), 1).astype(np.int64)

    def mean(self) -> float:
        """Theoretical mean degree (of the continuous model)."""
        from scipy.special import gamma

        return float(self.scale * gamma(1.0 + 1.0 / self.shape))

    def expected_pmf(self, degrees: np.ndarray) -> np.ndarray:
        """Theoretical P(degree = k) on the support."""
        from scipy import stats as scipy_stats

        degrees = np.asarray(degrees, dtype=np.float64)
        out = np.zeros_like(degrees)
        valid = degrees >= 1
        upper = scipy_stats.weibull_min.cdf(
            degrees[valid] + 0.5, self.shape, scale=self.scale
        )
        lower = scipy_stats.weibull_min.cdf(
            np.maximum(degrees[valid] - 0.5, 0.0), self.shape, scale=self.scale
        )
        out[valid] = upper - lower
        return out


class EmpiricalDistribution(DegreeDistribution):
    """Degrees resampled from an observed degree sequence.

    This is the paper's plugin "to feed Datagen with empirical data to
    be reproduced": pass the degree sequence of a real graph and the
    generator reproduces its degree histogram.
    """

    name = "empirical"

    def __init__(self, observed_degrees: Sequence[int]):
        observed = np.asarray(observed_degrees, dtype=np.int64)
        if observed.size == 0:
            raise ValueError("empirical distribution needs at least one sample")
        if np.any(observed < 0):
            raise ValueError("degrees must be non-negative")
        self._values, counts = np.unique(observed, return_counts=True)
        self._pmf = counts / counts.sum()
        self._cdf = np.cumsum(self._pmf)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw target degrees (see :class:`DegreeDistribution`)."""
        draws = rng.random(n)
        return self._values[np.searchsorted(self._cdf, draws)]

    def mean(self) -> float:
        """Theoretical mean degree."""
        return float(np.sum(self._values * self._pmf))

    def expected_pmf(self, degrees: np.ndarray) -> np.ndarray:
        """Theoretical P(degree = k) on the support."""
        degrees = np.asarray(degrees, dtype=np.int64)
        lookup = {int(v): float(p) for v, p in zip(self._values, self._pmf)}
        return np.array([lookup.get(int(k), 0.0) for k in degrees])


def distribution_from_name(name: str, **params) -> DegreeDistribution:
    """Instantiate a distribution plugin by registry name.

    Supports the four built-in plugins; configuration files reference
    them by name (e.g. ``degree_distribution = zeta``).
    """
    registry = {
        "zeta": ZetaDistribution,
        "geometric": GeometricDistribution,
        "facebook": FacebookDistribution,
        "weibull": WeibullDistribution,
        "empirical": EmpiricalDistribution,
    }
    if name not in registry:
        raise ValueError(
            f"unknown degree distribution {name!r}; choose from {sorted(registry)}"
        )
    return registry[name](**params)
