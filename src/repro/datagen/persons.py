"""Person generation with correlated attributes.

Datagen (and its ancestor S3G2) generates social-network persons whose
attributes are *structurally correlated*: where you studied, what you
are interested in, and where you live are drawn from skewed
distributions, and friendships are then made preferentially between
persons with similar attributes (see :mod:`repro.datagen.knows`).

Attribute values are plain integers (ids into dictionaries); the
reproduction only needs their correlation structure, not their textual
form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Person", "generate_persons"]

#: Sizes of the attribute dictionaries. Skewed popularity within each
#: dictionary follows a Zipf-like law, as in S3G2.
NUM_UNIVERSITIES = 200
NUM_INTERESTS = 500
NUM_LOCATIONS = 100


@dataclass(frozen=True)
class Person:
    """A social-network person (the person-knows-person projection).

    Attributes
    ----------
    person_id:
        Dense id, also the vertex id in the generated graph.
    university, interest, location:
        Correlation attributes (dictionary ids).
    birthday:
        Day index in ``[0, 365 * 40)``; used as a secondary sort key so
        persons at the same university still differ.
    target_degree:
        Number of ``knows`` edges this person should end up with,
        assigned by the degree-distribution plugin.
    """

    person_id: int
    university: int
    interest: int
    location: int
    birthday: int
    target_degree: int


def _zipf_choice(rng: np.random.Generator, n_values: int, size: int,
                 exponent: float = 1.2) -> np.ndarray:
    """Skewed categorical draw: value v with probability ∝ (v+1)^-exponent."""
    weights = (np.arange(1, n_values + 1, dtype=np.float64)) ** (-exponent)
    weights /= weights.sum()
    return rng.choice(n_values, size=size, p=weights)


def generate_persons(
    num_persons: int,
    target_degrees: np.ndarray,
    seed: int = 0,
) -> list[Person]:
    """Generate persons with correlated attributes.

    Parameters
    ----------
    num_persons:
        Number of persons; ids are ``0..num_persons-1``.
    target_degrees:
        Per-person target degree array of length ``num_persons`` (from
        a :class:`~repro.datagen.distributions.DegreeDistribution`).
    seed:
        Determinism seed; the same seed always yields the same
        persons, which is what makes Datagen runs reproducible.

    Notes
    -----
    Interests are correlated with universities (students of the same
    university share interests more often than chance), mirroring how
    S3G2 propagates correlations along attribute dependency chains.
    """
    target_degrees = np.asarray(target_degrees, dtype=np.int64)
    if target_degrees.shape != (num_persons,):
        raise ValueError(
            f"target_degrees must have shape ({num_persons},), "
            f"got {target_degrees.shape}"
        )
    if np.any(target_degrees < 0):
        raise ValueError("target degrees must be non-negative")
    rng = np.random.default_rng(seed)
    universities = _zipf_choice(rng, NUM_UNIVERSITIES, num_persons)
    locations = _zipf_choice(rng, NUM_LOCATIONS, num_persons)
    birthdays = rng.integers(0, 365 * 40, size=num_persons)

    # Interests correlate with university: with probability 0.6 the
    # interest is a deterministic function of the university (its
    # "dominant interest"); otherwise it is an independent skewed draw.
    dominant_interest = (universities * 7) % NUM_INTERESTS
    independent = _zipf_choice(rng, NUM_INTERESTS, num_persons)
    correlated_mask = rng.random(num_persons) < 0.6
    interests = np.where(correlated_mask, dominant_interest, independent)

    return [
        Person(
            person_id=i,
            university=int(universities[i]),
            interest=int(interests[i]),
            location=int(locations[i]),
            birthday=int(birthdays[i]),
            target_degree=int(target_degrees[i]),
        )
        for i in range(num_persons)
    ]
