"""Datagen facade: configuration plus end-to-end generation.

Ties together the degree-distribution plugins, person generation,
windowed knows-edge generation, the block-parallel runtime, and the
structural rewiring post-process into the single entry point users
(and the benchmark harness) call.

Example
-------
>>> from repro.datagen import Datagen, DatagenConfig
>>> config = DatagenConfig(num_persons=2000, degree_distribution="zeta",
...                        distribution_params={"alpha": 1.7}, seed=7)
>>> graph = Datagen(config).generate()
>>> graph.num_vertices
2000
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.distributions import DegreeDistribution, distribution_from_name
from repro.datagen.knows import KnowsGenerator
from repro.datagen.persons import Person, generate_persons
from repro.datagen.rewiring import rewire_to_target
from repro.datagen.runtime import BlockRuntime, GenerationReport, HardwareProfile, TaskResult
from repro.graph.graph import Graph, GraphBuilder

__all__ = ["DatagenConfig", "Datagen"]


@dataclass
class DatagenConfig:
    """Configuration of one Datagen invocation.

    Attributes
    ----------
    num_persons:
        Social network size (vertices of the person-knows-person
        graph).
    degree_distribution:
        Plugin name (``facebook``, ``zeta``, ``geometric``,
        ``empirical``) or a :class:`DegreeDistribution` instance.
    distribution_params:
        Keyword arguments for the named plugin.
    window_size, decay, block_size:
        Knobs of the windowed edge generation (see
        :class:`~repro.datagen.knows.KnowsGenerator`).
    target_clustering, target_assortativity, assortativity_sign,
    rewiring_swaps:
        Structural post-processing targets (see
        :func:`~repro.datagen.rewiring.rewire_to_target`); all
        disabled by default.
    seed:
        Determinism seed for the whole pipeline.
    """

    num_persons: int = 1000
    degree_distribution: str | DegreeDistribution = "facebook"
    distribution_params: dict = field(default_factory=dict)
    window_size: int = 32
    decay: float = 0.5
    block_size: int = 4096
    degree_homophily: bool = False
    dimension_shares: tuple[float, ...] = (0.45, 0.45, 0.10)
    target_clustering: float | None = None
    target_assortativity: float | None = None
    assortativity_sign: int = 0
    rewiring_swaps: int = 20000
    seed: int = 0

    def resolve_distribution(self) -> DegreeDistribution:
        """Instantiate the configured degree-distribution plugin."""
        if isinstance(self.degree_distribution, DegreeDistribution):
            return self.degree_distribution
        return distribution_from_name(self.degree_distribution, **self.distribution_params)


class Datagen:
    """The data generator: deterministic person-knows-person graphs."""

    def __init__(self, config: DatagenConfig):
        if config.num_persons < 1:
            raise ValueError("num_persons must be >= 1")
        self.config = config

    def generate_persons(self) -> list[Person]:
        """Stage 1: persons with correlated attributes and target degrees."""
        config = self.config
        distribution = config.resolve_distribution()
        rng = np.random.default_rng(config.seed)
        degrees = distribution.sample(config.num_persons, rng)
        # A person cannot know more persons than exist.
        degrees = np.minimum(degrees, config.num_persons - 1)
        return generate_persons(config.num_persons, degrees, seed=config.seed)

    def _knows_generator(self) -> KnowsGenerator:
        config = self.config
        return KnowsGenerator(
            window_size=config.window_size,
            decay=config.decay,
            block_size=config.block_size,
            seed=config.seed,
            degree_homophily=config.degree_homophily,
            dimension_shares=config.dimension_shares,
        )

    def generate(self) -> Graph:
        """Full pipeline on the local machine; returns the graph."""
        persons = self.generate_persons()
        graph = self._knows_generator().generate(persons)
        return self._post_process(graph)

    def generate_on(self, profile: HardwareProfile) -> tuple[Graph, GenerationReport]:
        """Full pipeline through the block runtime of a hardware profile.

        The resulting graph is identical to :meth:`generate`'s (block
        decomposition, not scheduling, determines the output); the
        report carries the simulated cost on the given hardware.
        """
        persons = self.generate_persons()
        generator = self._knows_generator()

        jobs = []
        for dim_index in range(generator.num_dimensions):
            blocks = generator.dimension_blocks(persons, dim_index)
            tasks = [
                _make_block_task(generator, block, dim_index, block_index)
                for block_index, block in enumerate(blocks)
            ]
            jobs.append(tasks)

        runtime = BlockRuntime(profile)
        report = runtime.run(jobs)

        builder = GraphBuilder(directed=False)
        for person in persons:
            builder.add_vertex(person.person_id)
        for result in report.task_results:
            builder.add_edges(result.edges)
        graph = self._post_process(builder.build())
        return graph, report

    def _post_process(self, graph: Graph) -> Graph:
        """Stage 3: optional structural rewiring toward targets."""
        config = self.config
        wants_rewiring = (
            config.target_clustering is not None
            or config.target_assortativity is not None
            or config.assortativity_sign != 0
        )
        if not wants_rewiring:
            return graph
        result = rewire_to_target(
            graph,
            target_clustering=config.target_clustering,
            target_assortativity=config.target_assortativity,
            assortativity_sign=config.assortativity_sign,
            max_swaps=config.rewiring_swaps,
            seed=config.seed,
        )
        return result.graph


def _make_block_task(
    generator: KnowsGenerator,
    block: list[Person],
    dim_index: int,
    block_index: int,
):
    """Bind one block into a runtime task (early-bound arguments)."""

    def task() -> TaskResult:
        edges = generator.generate_block(block, dim_index, block_index)
        # Work ≈ candidate pairs scanned within the window.
        cpu_work = float(len(block) * generator.window_size)
        return TaskResult(
            task_id=(dim_index, block_index),
            edges=edges,
            cpu_work=cpu_work,
        )

    return task
