"""Block-parallel Datagen runtime and hardware cost model.

The real Datagen runs as a chain of Hadoop MapReduce jobs. Section 3.1
of the paper measures its scalability on two systems — a 4-node
cluster (Xeon E5530, 8 cores used, one 2 TB disk per node) and a
single more modern machine (dual Xeon E5-2630 v3, 16 cores used, one
2 TB disk) — and finds that the single node wins while generation is
CPU-bound, but the cluster overtakes at large scales when generation
becomes I/O-bound, "thanks to the greater disk bandwidth provided by
the four disks" (Figure 3).

This module reproduces that experiment's mechanics:

* :class:`BlockRuntime` really executes the generator's block tasks
  (the work units of :class:`~repro.datagen.knows.KnowsGenerator`),
  schedules them LPT-style over the profile's cores, and charges
  simulated time for CPU work, Hadoop-style job I/O (with external
  sort passes that grow logarithmically with data volume — the
  mechanism that makes large runs I/O-bound), and per-job startup.
* :func:`estimate_generation_time` applies the same cost formulas
  analytically, so Figure 3 can be regenerated across the paper's
  full 100M–5000M edge range without materializing billions of edges.

The output graph is produced by the deterministic block tasks and is
identical for every hardware profile; only the simulated time differs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "HardwareProfile",
    "SINGLE_NODE",
    "CLUSTER_4_NODES",
    "TaskResult",
    "GenerationReport",
    "BlockRuntime",
    "estimate_generation_time",
]

#: Bytes of intermediate data Datagen moves per generated edge
#: (person records, sort keys, serialization overhead).
BYTES_PER_EDGE = 20.0
#: MapReduce phases per generation job that re-read/re-write the data
#: (map output, shuffle, reduce output).
IO_PHASES_PER_JOB = 3.0
#: Per-task external-sort spill unit; data volumes beyond this incur
#: additional merge passes (the superlinear I/O term).
SPILL_UNIT_BYTES = 2.0 * 2 ** 30
#: CPU core-microseconds per generated edge on a reference core.
CPU_CORE_US_PER_EDGE = 32.0


@dataclass(frozen=True)
class HardwareProfile:
    """A machine or cluster the generator (nominally) runs on.

    Attributes
    ----------
    cores:
        Total worker cores used for generation.
    core_speed:
        Relative per-core throughput (1.0 = the reference modern core;
        the paper's cluster uses older, slower cores).
    disks:
        Number of independent disks contributing bandwidth.
    disk_bandwidth:
        Sustained bandwidth per disk, bytes/second.
    job_startup_seconds:
        Fixed per-MapReduce-job overhead (scheduling, JVM spin-up);
        higher on a distributed cluster.
    """

    name: str
    nodes: int
    cores: int
    core_speed: float
    disks: int
    disk_bandwidth: float
    memory_bytes: float
    job_startup_seconds: float

    @property
    def aggregate_disk_bandwidth(self) -> float:
        """Total disk bandwidth across all disks, bytes/second."""
        return self.disks * self.disk_bandwidth

    @property
    def effective_core_rate(self) -> float:
        """Edge-generation throughput, edges/second, all cores."""
        per_core = 1e6 / CPU_CORE_US_PER_EDGE * self.core_speed
        return per_core * self.cores


#: The paper's single-node machine: dual Xeon E5-2630 v3 (16 cores
#: used), 256 GiB RAM, one 2 TB HDD.
SINGLE_NODE = HardwareProfile(
    name="single",
    nodes=1,
    cores=16,
    core_speed=1.0,
    disks=1,
    disk_bandwidth=130e6,
    memory_bytes=256 * 2 ** 30,
    job_startup_seconds=10.0,
)

#: The paper's 4-node cluster: Xeon E5530 (8 cores used in total,
#: older/slower cores), 32 GiB RAM and one 2 TB HDD per node.
CLUSTER_4_NODES = HardwareProfile(
    name="cluster",
    nodes=4,
    cores=8,
    core_speed=0.8,
    disks=4,
    disk_bandwidth=130e6,
    memory_bytes=4 * 32 * 2 ** 30,
    job_startup_seconds=40.0,
)


@dataclass
class TaskResult:
    """What one block task produced and what it cost."""

    task_id: tuple
    edges: list[tuple[int, int]]
    cpu_work: float  # abstract work units (≈ edges scanned)
    output: object = None


@dataclass
class GenerationReport:
    """Timing breakdown of one (simulated) generation run."""

    profile: str
    num_tasks: int
    num_edges: int
    data_bytes: float
    cpu_seconds: float
    io_seconds: float
    startup_seconds: float
    wall_seconds: float
    task_results: list[TaskResult] = field(default_factory=list, repr=False)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated generation time (CPU + I/O + startup)."""
        return self.cpu_seconds + self.io_seconds + self.startup_seconds


def _sort_pass_multiplier(data_bytes: float) -> float:
    """External-sort amplification: extra merge passes at scale."""
    if data_bytes <= SPILL_UNIT_BYTES:
        return 1.0
    return 1.0 + 0.5 * math.log2(data_bytes / SPILL_UNIT_BYTES)


def _io_seconds(data_bytes: float, num_jobs: int, profile: HardwareProfile) -> float:
    volume = data_bytes * IO_PHASES_PER_JOB * num_jobs * _sort_pass_multiplier(data_bytes)
    return volume / profile.aggregate_disk_bandwidth


class BlockRuntime:
    """Executes generation block tasks under a hardware profile.

    Tasks are real Python callables (the actual edge generation
    happens); the runtime measures their work, packs them onto the
    profile's cores with a longest-processing-time-first heuristic,
    and converts the resulting makespan plus I/O and startup terms
    into simulated seconds.
    """

    def __init__(self, profile: HardwareProfile):
        self.profile = profile

    def run(
        self,
        jobs: Sequence[Sequence[Callable[[], TaskResult]]],
    ) -> GenerationReport:
        """Run a chain of jobs, each a list of parallel block tasks.

        Jobs execute in sequence (each dimension pass of Datagen is
        one MapReduce job); tasks within a job are independent.
        """
        start = time.perf_counter()
        all_results: list[TaskResult] = []
        cpu_seconds = 0.0
        num_edges = 0
        for job_tasks in jobs:
            durations: list[float] = []
            for task in job_tasks:
                result = task()
                all_results.append(result)
                num_edges += len(result.edges)
                core_rate = (1e6 / CPU_CORE_US_PER_EDGE) * self.profile.core_speed
                durations.append(result.cpu_work / core_rate)
            cpu_seconds += self._makespan(durations)
        data_bytes = num_edges * BYTES_PER_EDGE
        io_seconds = _io_seconds(data_bytes, len(jobs), self.profile)
        startup = self.profile.job_startup_seconds * len(jobs)
        wall = time.perf_counter() - start
        return GenerationReport(
            profile=self.profile.name,
            num_tasks=len(all_results),
            num_edges=num_edges,
            data_bytes=data_bytes,
            cpu_seconds=cpu_seconds,
            io_seconds=io_seconds,
            startup_seconds=startup,
            wall_seconds=wall,
            task_results=all_results,
        )

    def _makespan(self, durations: Sequence[float]) -> float:
        """LPT scheduling of task durations onto the profile's cores."""
        if not durations:
            return 0.0
        loads = [0.0] * max(self.profile.cores, 1)
        for duration in sorted(durations, reverse=True):
            lightest = min(range(len(loads)), key=loads.__getitem__)
            loads[lightest] += duration
        return max(loads)


def estimate_generation_time(
    num_edges: float,
    profile: HardwareProfile,
    num_jobs: int = 3,
) -> dict[str, float]:
    """Analytic cost of generating ``num_edges`` under a profile.

    Applies the same formulas :class:`BlockRuntime` charges, without
    executing tasks — used by the Figure 3 benchmark to sweep edge
    counts up to the paper's 5-billion-edge scale.

    Returns a breakdown dict with ``cpu``, ``io``, ``startup``, and
    ``total`` seconds.
    """
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    cpu = num_edges / profile.effective_core_rate
    data_bytes = num_edges * BYTES_PER_EDGE
    io = _io_seconds(data_bytes, num_jobs, profile)
    startup = profile.job_startup_seconds * num_jobs
    return {"cpu": cpu, "io": io, "startup": startup, "total": cpu + io + startup}
