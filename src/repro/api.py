"""One-call convenience API.

For users who want the paper's default workflow — "By default,
Graphalytics runs all the algorithms implemented on all configured
graphs" — without assembling the harness objects by hand::

    import repro

    suite = repro.run_benchmark(["graph500-10", "patents"],
                                platforms=["giraph", "neo4j"])
    print(repro.render_report(suite))
"""

from __future__ import annotations

from repro.core.benchmark import BenchmarkCore, BenchmarkSuiteResult
from repro.core.cost import ClusterSpec
from repro.core.report import ReportGenerator
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec
from repro.datasets.catalog import load_dataset
from repro.graph.graph import Graph
from repro.platforms.registry import create_platform_fleet
from repro.robustness import FaultPlan, apply_mem_limit

__all__ = ["run_benchmark", "render_report"]


def run_benchmark(
    graphs: list[str] | dict[str, Graph],
    platforms: list[str] | None = None,
    algorithms: list[str | Algorithm] | None = None,
    cluster: ClusterSpec | None = None,
    params: AlgorithmParams | None = None,
    validate: bool = True,
    time_limit_seconds: float | None = None,
    mem_limit_bytes: float | None = None,
    timeout_seconds: float | None = None,
    fault_plan: "FaultPlan | str | None" = None,
    max_retries: int = 0,
) -> BenchmarkSuiteResult:
    """Run the benchmark with one call.

    Parameters
    ----------
    graphs:
        Catalog names (e.g. ``["graph500-10", "patents"]``) or a
        ``{name: Graph}`` mapping of already-built graphs.
    platforms:
        Platform names; ``None`` runs every registered platform.
        Cluster platforms get ``cluster``; single-machine platforms
        use their built-in default machines.
    algorithms:
        Algorithm names or members; ``None`` runs all five.
    cluster:
        Spec for the distributed platforms (default: the paper's
        10-worker cluster).
    params:
        Algorithm parameters (BFS source, CD/EVO knobs).
    validate:
        Check every output against the reference implementations.
    time_limit_seconds:
        Simulated-runtime budget per run; exceeding it records a
        ``time-limit`` failure.
    mem_limit_bytes:
        Per-worker simulated memory cap applied to every platform in
        the fleet; too-large graphs record deterministic
        ``FAILED(out-of-memory)`` cells (the paper's Figure 4
        missing values).
    timeout_seconds:
        Typed per-run budget enforced inside the driver API
        (``timeout`` failure cells).
    fault_plan:
        A :class:`~repro.robustness.faults.FaultPlan` or its CLI spec
        string (e.g. ``"crash:worker=2,round=5"``); seeded fault
        injection per (platform, graph, algorithm) cell.
    max_retries:
        Bounded retries for transient injected faults.
    """
    if isinstance(graphs, dict):
        graph_map = dict(graphs)
    else:
        graph_map = {name: load_dataset(name) for name in graphs}
    resolved_algorithms = None
    if algorithms is not None:
        resolved_algorithms = [
            a if isinstance(a, Algorithm) else Algorithm.from_name(a)
            for a in algorithms
        ]
    fleet = create_platform_fleet(
        cluster or ClusterSpec.paper_distributed(), names=platforms
    )
    if mem_limit_bytes is not None:
        for platform in fleet:
            apply_mem_limit(platform, mem_limit_bytes)
    if isinstance(fault_plan, str):
        fault_plan = FaultPlan.parse(fault_plan)
    core = BenchmarkCore(
        fleet,
        graph_map,
        validator=OutputValidator() if validate else None,
        time_limit_seconds=time_limit_seconds,
        timeout_seconds=timeout_seconds,
        fault_plan=fault_plan,
        max_retries=max_retries,
    )
    return core.run(
        BenchmarkRunSpec(
            algorithms=resolved_algorithms,
            params=params or AlgorithmParams(),
        )
    )


def render_report(
    suite: BenchmarkSuiteResult, configuration: dict | None = None
) -> str:
    """The text report for a suite (see :class:`ReportGenerator`)."""
    return ReportGenerator(configuration=configuration).render(suite)
